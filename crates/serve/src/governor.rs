//! The resource governor: one synchronous serving loop that admits,
//! schedules, degrades, sheds, and byte-bounds everything behind the
//! front door.
//!
//! # Model
//!
//! Time is divided into *ticks* with a fixed work budget
//! ([`ServeConfig::tick_budget_ms`]). Between ticks, clients submit
//! requests through [`Governor::submit_forecast`] and
//! [`Governor::submit_ingest`]; each submission is immediately either
//! `Admitted` into its priority-class queue or `Shed` with a reason.
//! [`Governor::run_tick`] then spends the budget: **forecasts drain
//! first** (they are latency-sensitive; bulk ingest can wait), ingest
//! gets the remainder, and whatever does not fit stays queued for the
//! next tick — admitted work is never dropped.
//!
//! A forecast whose deadline passes before its full answer is computed
//! is still answered — with the engine's O(1) seasonal-naive floor,
//! explicitly marked [`ForecastOutcome::DegradedFloor`] — and its miss
//! is counted. After serving, the engine's resident bytes are checked
//! against the memory budget and cold state is evicted down to it.
//!
//! Every request lands in exactly one counter, and
//! [`ServeStats::reconciles`] proves it: offered = admitted + shed,
//! admitted = completed + still queued. The overload posture is
//! summarized per tick as a [`HealthState`].

use crate::admission::{AdmissionDecision, AdmissionQueue, ShedReason, TokenBucket};
use crate::clock::Clock;
use crate::engine::Engine;
use dbaugur_trace::HistoryRing;

/// Tunables for the serving loop.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Forecast (latency-sensitive) queue capacity.
    pub forecast_queue_cap: usize,
    /// Ingest (bulk) queue capacity.
    pub ingest_queue_cap: usize,
    /// Token-bucket burst capacity (requests).
    pub rate_capacity: f64,
    /// Token-bucket sustained refill (requests per millisecond).
    pub refill_per_ms: f64,
    /// Work budget per tick, in clock milliseconds.
    pub tick_budget_ms: u64,
    /// Relative deadline stamped on every admitted forecast.
    pub forecast_deadline_ms: u64,
    /// Byte budget for the engine's governable state.
    pub memory_budget_bytes: usize,
    /// Completed-forecast latency samples retained for percentiles.
    pub latency_window: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            forecast_queue_cap: 64,
            ingest_queue_cap: 1024,
            rate_capacity: 512.0,
            refill_per_ms: 1.0,
            tick_budget_ms: 100,
            forecast_deadline_ms: 50,
            memory_budget_bytes: 1 << 20,
            latency_window: 1024,
        }
    }
}

/// How one forecast was answered.
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastOutcome {
    /// Full-quality answer within its deadline.
    Fresh(f64),
    /// Deadline expired first: the seasonal-naive floor, explicitly
    /// marked so the caller knows it is degraded, never silently stale.
    DegradedFloor(f64),
}

impl ForecastOutcome {
    /// The served value, whatever its quality.
    pub fn value(&self) -> f64 {
        match self {
            ForecastOutcome::Fresh(v) | ForecastOutcome::DegradedFloor(v) => *v,
        }
    }

    /// True for a deadline-degraded answer.
    pub fn is_degraded(&self) -> bool {
        matches!(self, ForecastOutcome::DegradedFloor(_))
    }
}

/// The governor's overload posture, recomputed every tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum HealthState {
    /// Nothing shed, deadlines met.
    #[default]
    Healthy,
    /// Load is being refused (sheds this tick) but admitted forecasts
    /// still get full answers.
    Shedding,
    /// Deadlines are being missed: admitted forecasts are degrading to
    /// floors, or the forecast queue is full.
    Saturated,
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Shedding => write!(f, "shedding"),
            HealthState::Saturated => write!(f, "saturated"),
        }
    }
}

/// Cumulative serving counters. Every offered request is in here
/// exactly once; [`ServeStats::reconciles`] checks the books.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Forecasts offered at the front door.
    pub offered_forecasts: u64,
    /// Ingest records offered at the front door.
    pub offered_ingest: u64,
    /// Forecasts admitted into the queue.
    pub admitted_forecasts: u64,
    /// Ingest records admitted into the queue.
    pub admitted_ingest: u64,
    /// Forecasts shed: queue full.
    pub shed_forecast_queue_full: u64,
    /// Forecasts shed: rate limited.
    pub shed_forecast_rate_limited: u64,
    /// Ingest shed: queue full.
    pub shed_ingest_queue_full: u64,
    /// Ingest shed: rate limited.
    pub shed_ingest_rate_limited: u64,
    /// Ingest shed: global memory budget exhausted (the budget
    /// arbiter's last rung before quarantine — resident state must stop
    /// growing). Forecasts are never shed for this reason.
    pub shed_ingest_memory_pressure: u64,
    /// Forecasts answered fresh, within deadline.
    pub completed_fresh: u64,
    /// Forecasts answered with the degraded floor.
    pub completed_degraded: u64,
    /// Ingest records applied to the engine.
    pub ingested: u64,
    /// Memory-governance eviction passes.
    pub eviction_passes: u64,
    /// Bytes freed by eviction (cumulative).
    pub eviction_bytes: u64,
    /// Highest engine residency observed at a tick boundary.
    pub max_resident_bytes: u64,
    /// Ticks on which background maintenance actually spent budget.
    pub maintenance_runs: u64,
    /// Clock milliseconds spent on background maintenance (cumulative).
    pub maintenance_ms: u64,
    /// Corrupt snapshot generations skipped during recovery (engine's
    /// durable substrate fell back to an older good generation).
    pub snapshot_fallbacks: u64,
    /// WAL torn tails salvaged during recovery (partial final frame
    /// discarded, prefix replayed).
    pub wal_torn_salvages: u64,
    /// Transient WAL/snapshot I/O errors absorbed by retry.
    pub io_retries: u64,
    /// Durable I/O operations that failed even after retries.
    pub retry_exhausted: u64,
    /// Group-commit flushes triggered by coalescing policy (batch size
    /// or delay); zero on bulk-only engines.
    pub wal_group_flushes_coalesced: u64,
    /// Group-commit flushes forced by a barrier (checkpoint, shutdown).
    pub wal_group_flushes_forced: u64,
    /// Records made durable through group-commit batches.
    pub wal_group_records: u64,
    /// Records-per-fsync histogram: buckets 1, 2, 3–4, 5–8, 9–16,
    /// 17–32, 33–64, 65+.
    pub wal_group_batch_hist: [u64; 8],
    /// Order-sensitive FNV fold of every served forecast (value bits
    /// plus the degraded flag). Two runs served byte-identical answers
    /// in the same order iff their digests match.
    pub value_digest: u64,
}

impl ServeStats {
    /// Total sheds, all classes.
    pub fn shed_total(&self) -> u64 {
        self.shed_forecast_queue_full
            + self.shed_forecast_rate_limited
            + self.shed_ingest_queue_full
            + self.shed_ingest_rate_limited
            + self.shed_ingest_memory_pressure
    }

    /// Verify the books balance given current queue depths: every
    /// offered request is admitted or shed, and every admitted request
    /// is completed or still queued.
    pub fn reconciles(&self, forecasts_queued: usize, ingest_queued: usize) -> bool {
        let f_shed = self.shed_forecast_queue_full + self.shed_forecast_rate_limited;
        let i_shed = self.shed_ingest_queue_full
            + self.shed_ingest_rate_limited
            + self.shed_ingest_memory_pressure;
        self.offered_forecasts == self.admitted_forecasts + f_shed
            && self.offered_ingest == self.admitted_ingest + i_shed
            && self.admitted_forecasts
                == self.completed_fresh + self.completed_degraded + forecasts_queued as u64
            && self.admitted_ingest == self.ingested + ingest_queued as u64
    }
}

/// What one tick did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TickReport {
    /// Forecasts answered fresh this tick.
    pub served_fresh: u64,
    /// Forecasts answered with the degraded floor this tick.
    pub served_degraded: u64,
    /// Ingest records applied this tick.
    pub ingested: u64,
    /// Requests shed since the previous tick (submit-time decisions).
    pub shed: u64,
    /// Bytes evicted by memory governance this tick.
    pub evicted_bytes: u64,
    /// Clock milliseconds spent on background maintenance this tick.
    pub maintenance_ms: u64,
    /// Posture at the end of the tick.
    pub health: HealthState,
}

struct ForecastReq {
    sql: String,
    deadline_ms: u64,
    cost_ms: u64,
    submitted_ms: u64,
}

struct IngestReq {
    ts_secs: u64,
    sql: String,
    cost_ms: u64,
}

/// The serving loop. Generic over the [`Engine`] doing the work and
/// the [`Clock`] defining time, so production and simulation share
/// every line of governance logic.
pub struct Governor<E: Engine, C: Clock> {
    cfg: ServeConfig,
    clock: C,
    engine: E,
    bucket: TokenBucket,
    forecasts: AdmissionQueue<ForecastReq>,
    ingests: AdmissionQueue<IngestReq>,
    stats: ServeStats,
    latencies: HistoryRing,
    shed_since_tick: u64,
    health: HealthState,
    pressure_shed: bool,
}

impl<E: Engine, C: Clock> Governor<E, C> {
    /// Wrap `engine` behind the front door.
    pub fn new(cfg: ServeConfig, engine: E, clock: C) -> Self {
        let bucket = TokenBucket::new(cfg.rate_capacity, cfg.refill_per_ms, clock.now_ms());
        let forecasts = AdmissionQueue::new(cfg.forecast_queue_cap);
        let ingests = AdmissionQueue::new(cfg.ingest_queue_cap);
        let latencies = HistoryRing::new(cfg.latency_window.max(1));
        Self {
            cfg,
            clock,
            engine,
            bucket,
            forecasts,
            ingests,
            stats: ServeStats::default(),
            latencies,
            shed_since_tick: 0,
            health: HealthState::Healthy,
            pressure_shed: false,
        }
    }

    /// Replace the engine's byte budget. The budget arbiter calls this
    /// every arbitration round as it moves slack between shards; the
    /// next tick's eviction pass enforces the new bound.
    pub fn set_memory_budget(&mut self, bytes: usize) {
        self.cfg.memory_budget_bytes = bytes;
    }

    /// The engine's current byte budget.
    pub fn memory_budget(&self) -> usize {
        self.cfg.memory_budget_bytes
    }

    /// Enter or leave memory-pressure shedding. While set, every
    /// offered ingest is shed with [`ShedReason::MemoryPressure`] (no
    /// token is consumed — the request never contends); forecasts are
    /// unaffected. The arbiter sets this on its shed rung and clears it
    /// once the global budget recovers.
    pub fn set_memory_pressure_shed(&mut self, on: bool) {
        self.pressure_shed = on;
    }

    /// True while memory-pressure shedding is active.
    pub fn memory_pressure_shed(&self) -> bool {
        self.pressure_shed
    }

    /// Offer one forecast request (`cost_ms` = the full answer's
    /// simulated/estimated cost). Decided immediately; admitted
    /// requests carry a deadline of now + the configured relative
    /// deadline.
    pub fn submit_forecast(&mut self, sql: &str, cost_ms: u64) -> AdmissionDecision {
        self.stats.offered_forecasts += 1;
        let now = self.clock.now_ms();
        if !self.bucket.try_take(now) {
            self.stats.shed_forecast_rate_limited += 1;
            self.shed_since_tick += 1;
            return AdmissionDecision::Shed(ShedReason::RateLimited);
        }
        let req = ForecastReq {
            sql: sql.to_string(),
            deadline_ms: now + self.cfg.forecast_deadline_ms,
            cost_ms,
            submitted_ms: now,
        };
        match self.forecasts.push(req) {
            Ok(()) => {
                self.stats.admitted_forecasts += 1;
                AdmissionDecision::Admitted
            }
            Err(_) => {
                self.stats.shed_forecast_queue_full += 1;
                self.shed_since_tick += 1;
                AdmissionDecision::Shed(ShedReason::QueueFull)
            }
        }
    }

    /// Offer one ingest record. Bulk class: admitted records wait for
    /// forecast traffic, but are never dropped once admitted.
    pub fn submit_ingest(&mut self, ts_secs: u64, sql: &str, cost_ms: u64) -> AdmissionDecision {
        self.stats.offered_ingest += 1;
        if self.pressure_shed {
            self.stats.shed_ingest_memory_pressure += 1;
            self.shed_since_tick += 1;
            return AdmissionDecision::Shed(ShedReason::MemoryPressure);
        }
        let now = self.clock.now_ms();
        if !self.bucket.try_take(now) {
            self.stats.shed_ingest_rate_limited += 1;
            self.shed_since_tick += 1;
            return AdmissionDecision::Shed(ShedReason::RateLimited);
        }
        let req = IngestReq { ts_secs, sql: sql.to_string(), cost_ms };
        match self.ingests.push(req) {
            Ok(()) => {
                self.stats.admitted_ingest += 1;
                AdmissionDecision::Admitted
            }
            Err(_) => {
                self.stats.shed_ingest_queue_full += 1;
                self.shed_since_tick += 1;
                AdmissionDecision::Shed(ShedReason::QueueFull)
            }
        }
    }

    /// Spend one tick's budget, forecasts first. `stall_ms` models a
    /// slow consumer or injected latency eating into the budget before
    /// any request is served.
    pub fn run_tick(&mut self, stall_ms: u64) -> TickReport {
        let mut report =
            TickReport { shed: std::mem::take(&mut self.shed_since_tick), ..Default::default() };
        self.clock.advance(stall_ms);
        let budget_end = self.clock.now_ms() + self.cfg.tick_budget_ms.saturating_sub(stall_ms);

        // Priority class 1: forecasts. An expired request is answered
        // with the floor (O(1), no budget charge worth modeling); a
        // live one runs fully if the budget allows, else waits.
        //
        // Consecutive live answers are accumulated and served through
        // one `Engine::forecast_batch` call — the batched pipeline
        // underneath turns a run of N statements into one forward pass
        // per touched cluster. Only *consecutive* runs may batch: a
        // floor answer reads the floors an earlier fresh forecast in
        // the same tick wrote, so every degraded serve flushes the
        // pending run first, keeping results byte-identical to the
        // one-at-a-time loop (the served-value digest checks this).
        let mut fresh_run: Vec<(String, u64)> = Vec::new();
        while let Some(req) = self.forecasts.pop() {
            let now = self.clock.now_ms();
            if now >= req.deadline_ms {
                self.flush_fresh_run(&mut fresh_run, &mut report);
                let v = self.engine.floor(&req.sql);
                self.record_forecast(ForecastOutcome::DegradedFloor(v), now - req.submitted_ms);
                report.served_degraded += 1;
                continue;
            }
            if now + req.cost_ms > budget_end {
                self.forecasts.push_front(req);
                break;
            }
            self.clock.advance(req.cost_ms);
            let done = self.clock.now_ms();
            if done > req.deadline_ms {
                // The work ran but finished late: serve the floor and
                // say so, never a silently-late "fresh" answer.
                self.flush_fresh_run(&mut fresh_run, &mut report);
                let v = self.engine.floor(&req.sql);
                self.record_forecast(ForecastOutcome::DegradedFloor(v), done - req.submitted_ms);
                report.served_degraded += 1;
            } else {
                // The clock charge is booked now; the engine call is
                // deferred into the batch.
                fresh_run.push((req.sql, done - req.submitted_ms));
            }
        }
        self.flush_fresh_run(&mut fresh_run, &mut report);

        // Priority class 2: bulk ingest, with whatever budget remains.
        while let Some(req) = self.ingests.pop() {
            let now = self.clock.now_ms();
            if now + req.cost_ms > budget_end {
                self.ingests.push_front(req);
                break;
            }
            self.clock.advance(req.cost_ms);
            self.engine.ingest(req.ts_secs, &req.sql);
            self.stats.ingested += 1;
            report.ingested += 1;
        }

        // Memory governance: bound the engine at every tick boundary.
        let resident = self.engine.resident_bytes() as u64;
        self.stats.max_resident_bytes = self.stats.max_resident_bytes.max(resident);
        if resident > self.cfg.memory_budget_bytes as u64 {
            let freed = self.engine.evict_to(self.cfg.memory_budget_bytes) as u64;
            self.stats.eviction_passes += 1;
            self.stats.eviction_bytes += freed;
            report.evicted_bytes = freed;
        }

        // Background maintenance (model lifecycle) gets only what is
        // left of the budget after all foreground work — it can never
        // starve admission, and an overloaded tick skips it entirely.
        let now = self.clock.now_ms();
        if now < budget_end {
            let spent = self.engine.maintain(budget_end - now).min(budget_end - now);
            if spent > 0 {
                self.clock.advance(spent);
                self.stats.maintenance_runs += 1;
                self.stats.maintenance_ms += spent;
                report.maintenance_ms = spent;
            }
        }

        // Surface the engine's durability counters (cumulative values
        // maintained by the durable substrate; zeros for in-memory
        // engines) so operators see salvage/fallback/retry events in
        // the same report as serving health.
        let d = self.engine.durability();
        self.stats.snapshot_fallbacks = d.snapshot_fallbacks;
        self.stats.wal_torn_salvages = d.wal_torn_salvages;
        self.stats.io_retries = d.io_retries;
        self.stats.retry_exhausted = d.retry_exhausted;
        self.stats.wal_group_flushes_coalesced = d.wal_group_flushes_coalesced;
        self.stats.wal_group_flushes_forced = d.wal_group_flushes_forced;
        self.stats.wal_group_records = d.wal_group_records;
        self.stats.wal_group_batch_hist = d.wal_group_batch_hist;

        self.health = if report.served_degraded > 0
            || self.forecasts.len() == self.forecasts.capacity()
        {
            HealthState::Saturated
        } else if report.shed > 0 {
            HealthState::Shedding
        } else {
            HealthState::Healthy
        };
        report.health = self.health;
        report
    }

    /// Serve an accumulated run of live forecasts through one batched
    /// engine call. Every answer and side effect matches serving the
    /// run one request at a time (the [`Engine::forecast_batch`]
    /// contract); each request's latency was fixed when its clock time
    /// was charged in `run_tick`, before the batch formed.
    fn flush_fresh_run(&mut self, run: &mut Vec<(String, u64)>, report: &mut TickReport) {
        if run.is_empty() {
            return;
        }
        let values = {
            let sqls: Vec<&str> = run.iter().map(|(sql, _)| sql.as_str()).collect();
            self.engine.forecast_batch(&sqls)
        };
        for ((_, latency), v) in run.drain(..).zip(values) {
            self.record_forecast(ForecastOutcome::Fresh(v), latency);
            report.served_fresh += 1;
        }
    }

    fn record_forecast(&mut self, outcome: ForecastOutcome, latency_ms: u64) {
        match outcome {
            ForecastOutcome::Fresh(_) => self.stats.completed_fresh += 1,
            ForecastOutcome::DegradedFloor(_) => self.stats.completed_degraded += 1,
        }
        self.fold_served(&outcome);
        self.latencies.push(latency_ms as f64);
    }

    /// Fold one served answer into the order-sensitive value digest.
    /// Also used by the shard supervisor for failover floors it serves
    /// on a tripped shard's behalf, so those still land in the books.
    pub(crate) fn fold_served(&mut self, outcome: &ForecastOutcome) {
        let mut h = self.stats.value_digest ^ 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(&outcome.value().to_bits().to_le_bytes());
        eat(&[u8::from(outcome.is_degraded())]);
        self.stats.value_digest = h;
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Posture after the most recent tick.
    pub fn health(&self) -> HealthState {
        self.health
    }

    /// Current queue depths `(forecasts, ingest)`.
    pub fn queue_depths(&self) -> (usize, usize) {
        (self.forecasts.len(), self.ingests.len())
    }

    /// Check the books: every offered request admitted or shed, every
    /// admitted request completed or still queued.
    pub fn reconciles(&self) -> bool {
        self.stats.reconciles(self.forecasts.len(), self.ingests.len())
    }

    /// Completed-forecast latency percentile (`p` in `[0, 1]`) over the
    /// retained window; `None` before any forecast completed.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        let mut v = self.latencies.to_vec();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let idx = ((v.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        Some(v[idx])
    }

    /// The governed engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the governed engine (training, maintenance).
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// The governor's clock.
    pub fn clock(&self) -> &C {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::engine::SimEngine;

    fn gov(cfg: ServeConfig) -> Governor<SimEngine, VirtualClock> {
        Governor::new(cfg, SimEngine::new(32), VirtualClock::new())
    }

    fn open_cfg() -> ServeConfig {
        ServeConfig {
            rate_capacity: 1e9,
            refill_per_ms: 1e9,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn forecasts_preempt_ingest_within_a_tick() {
        let mut g = gov(ServeConfig { tick_budget_ms: 10, ..open_cfg() });
        for i in 0..5 {
            assert!(g.submit_ingest(i, "INSERT INTO t VALUES (1)", 2).is_admitted());
        }
        assert!(g.submit_forecast("SELECT a FROM t", 2).is_admitted());
        let rep = g.run_tick(0);
        assert_eq!(rep.served_fresh, 1, "the forecast is served first");
        assert_eq!(rep.ingested, 4, "ingest gets only the remaining budget");
        assert_eq!(g.queue_depths().1, 1, "unserved ingest stays queued");
        assert!(g.reconciles());
        // The leftover drains next tick: admitted work is never lost.
        let rep2 = g.run_tick(0);
        assert_eq!(rep2.ingested, 1);
        assert!(g.reconciles());
    }

    #[test]
    fn expired_forecast_degrades_to_floor_and_is_counted() {
        let mut g = gov(ServeConfig {
            forecast_deadline_ms: 5,
            tick_budget_ms: 100,
            ..open_cfg()
        });
        g.engine_mut().ingest(1, "SELECT a FROM t");
        assert!(g.submit_forecast("SELECT a FROM t", 50).is_admitted());
        let rep = g.run_tick(0);
        assert_eq!(rep.served_degraded, 1, "cost 50 > deadline 5: floor served");
        assert_eq!(rep.served_fresh, 0);
        assert_eq!(g.stats().completed_degraded, 1);
        assert_eq!(g.health(), HealthState::Saturated);
        assert!(g.reconciles());
    }

    #[test]
    fn queue_full_sheds_with_reason_and_counts() {
        let mut g = gov(ServeConfig { forecast_queue_cap: 2, ..open_cfg() });
        assert!(g.submit_forecast("SELECT 1", 1).is_admitted());
        assert!(g.submit_forecast("SELECT 2", 1).is_admitted());
        assert_eq!(
            g.submit_forecast("SELECT 3", 1),
            AdmissionDecision::Shed(ShedReason::QueueFull)
        );
        assert_eq!(g.stats().shed_forecast_queue_full, 1);
        assert!(g.reconciles());
        let rep = g.run_tick(0);
        assert_eq!(rep.shed, 1, "the shed is reported, not silently dropped");
    }

    #[test]
    fn rate_limit_sheds_and_recovers_with_refill() {
        let mut g = gov(ServeConfig {
            rate_capacity: 2.0,
            refill_per_ms: 0.001,
            ..ServeConfig::default()
        });
        assert!(g.submit_ingest(0, "SELECT 1", 1).is_admitted());
        assert!(g.submit_ingest(0, "SELECT 2", 1).is_admitted());
        assert_eq!(
            g.submit_ingest(0, "SELECT 3", 1),
            AdmissionDecision::Shed(ShedReason::RateLimited)
        );
        // A second of virtual time refills one token.
        g.clock().advance(1_000);
        assert!(g.submit_ingest(0, "SELECT 4", 1).is_admitted());
        assert!(g.reconciles());
    }

    #[test]
    fn memory_budget_triggers_eviction_at_tick_boundary() {
        let mut g = gov(ServeConfig {
            memory_budget_bytes: 2_000,
            tick_budget_ms: 1_000_000,
            ..open_cfg()
        });
        for i in 0..40 {
            assert!(g
                .submit_ingest(i, &format!("SELECT col{i} FROM table{i} WHERE x = 1"), 0)
                .is_admitted());
        }
        let rep = g.run_tick(0);
        assert_eq!(rep.ingested, 40);
        assert!(rep.evicted_bytes > 0, "over budget must evict");
        assert!(g.engine().resident_bytes() <= 2_000, "bounded after eviction");
        assert!(g.stats().eviction_passes >= 1);
        assert!(g.reconciles());
    }

    #[test]
    fn health_transitions_healthy_shedding_saturated() {
        let mut g = gov(ServeConfig {
            forecast_queue_cap: 1,
            forecast_deadline_ms: 1,
            ..open_cfg()
        });
        assert_eq!(g.run_tick(0).health, HealthState::Healthy);
        assert!(g.submit_forecast("SELECT 1", 0).is_admitted());
        g.submit_forecast("SELECT 2", 0); // shed: queue cap 1
        let rep = g.run_tick(2); // stall pushes past the 1 ms deadline
        assert_eq!(rep.served_degraded, 1);
        assert_eq!(rep.health, HealthState::Saturated);
        // No traffic: back to healthy.
        assert_eq!(g.run_tick(0).health, HealthState::Healthy);
        // Sheds alone (deadlines met) are Shedding, not Saturated.
        g.submit_forecast("SELECT 3", 0);
        g.submit_forecast("SELECT 4", 0); // shed
        let rep = g.run_tick(0);
        assert_eq!(rep.served_fresh, 1);
        assert_eq!(rep.health, HealthState::Shedding);
        assert!(g.reconciles());
    }

    #[test]
    fn latency_percentiles_come_from_the_ring() {
        let mut g = gov(ServeConfig { forecast_deadline_ms: 1_000, ..open_cfg() });
        assert_eq!(g.latency_percentile(0.5), None);
        for i in 0..10 {
            g.submit_forecast(&format!("SELECT {i}"), i);
            g.run_tick(0);
        }
        let p50 = g.latency_percentile(0.5).unwrap();
        let p99 = g.latency_percentile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(p99 <= 9.0);
    }

    /// An engine whose maintenance greedily spends every millisecond it
    /// is offered, recording each offer — the worst case for the
    /// never-starve-admission guarantee.
    struct GreedyMaintain {
        inner: SimEngine,
        offers: Vec<u64>,
    }

    impl Engine for GreedyMaintain {
        fn ingest(&mut self, ts_secs: u64, sql: &str) {
            self.inner.ingest(ts_secs, sql);
        }
        fn forecast(&mut self, sql: &str) -> f64 {
            self.inner.forecast(sql)
        }
        fn floor(&mut self, sql: &str) -> f64 {
            self.inner.floor(sql)
        }
        fn resident_bytes(&self) -> usize {
            self.inner.resident_bytes()
        }
        fn evict_to(&mut self, target_bytes: usize) -> usize {
            self.inner.evict_to(target_bytes)
        }
        fn maintain(&mut self, budget_ms: u64) -> u64 {
            self.offers.push(budget_ms);
            budget_ms
        }
    }

    #[test]
    fn maintenance_only_gets_leftover_budget() {
        let engine = GreedyMaintain { inner: SimEngine::new(32), offers: Vec::new() };
        let cfg = ServeConfig { tick_budget_ms: 10, ..open_cfg() };
        let mut g = Governor::new(cfg, engine, VirtualClock::new());

        // Idle tick: the whole budget is leftover and maintenance gets it.
        let rep = g.run_tick(0);
        assert_eq!(rep.maintenance_ms, 10);
        assert_eq!(g.engine().offers, vec![10]);
        assert_eq!(g.stats().maintenance_runs, 1);
        assert_eq!(g.stats().maintenance_ms, 10);

        // Foreground work eats most of the budget; maintenance gets
        // only the scraps, never a slice of admitted work's time.
        for i in 0..4 {
            assert!(g.submit_forecast(&format!("SELECT {i}"), 2).is_admitted());
        }
        let rep = g.run_tick(0);
        assert_eq!(rep.served_fresh, 4);
        assert_eq!(rep.maintenance_ms, 2, "10 ms budget - 8 ms forecasts");

        // A fully consumed tick skips maintenance entirely.
        for i in 0..5 {
            assert!(g.submit_forecast(&format!("SELECT b{i}"), 2).is_admitted());
        }
        let rep = g.run_tick(0);
        assert_eq!(rep.maintenance_ms, 0, "no leftover, no maintenance");
        assert_eq!(g.engine().offers.len(), 2);
        assert!(g.reconciles());
    }

    #[test]
    fn default_engine_maintenance_is_a_noop() {
        let mut g = gov(ServeConfig { tick_budget_ms: 50, ..open_cfg() });
        let rep = g.run_tick(0);
        assert_eq!(rep.maintenance_ms, 0);
        assert_eq!(g.stats().maintenance_runs, 0);
        assert_eq!(g.stats().maintenance_ms, 0);
    }

    #[test]
    fn memory_pressure_sheds_ingest_but_not_forecasts() {
        let mut g = gov(ServeConfig { tick_budget_ms: 1_000, ..open_cfg() });
        assert!(g.submit_ingest(0, "INSERT 1", 1).is_admitted());
        g.set_memory_pressure_shed(true);
        assert_eq!(
            g.submit_ingest(1, "INSERT 2", 1),
            AdmissionDecision::Shed(ShedReason::MemoryPressure)
        );
        assert!(g.submit_forecast("SELECT 1", 1).is_admitted(), "reads unaffected");
        assert_eq!(g.stats().shed_ingest_memory_pressure, 1);
        g.run_tick(0);
        assert!(g.reconciles(), "pressure sheds must balance the books");
        // Pressure lifts: ingest admits again.
        g.set_memory_pressure_shed(false);
        assert!(g.submit_ingest(2, "INSERT 3", 1).is_admitted());
        g.run_tick(0);
        assert!(g.reconciles());
    }

    #[test]
    fn budget_can_be_retargeted_between_ticks() {
        let mut g = gov(ServeConfig {
            memory_budget_bytes: 1 << 20,
            tick_budget_ms: 1_000_000,
            ..open_cfg()
        });
        for i in 0..40 {
            assert!(g
                .submit_ingest(i, &format!("SELECT col{i} FROM table{i} WHERE x = 1"), 0)
                .is_admitted());
        }
        let rep = g.run_tick(0);
        assert_eq!(rep.evicted_bytes, 0, "generous budget: nothing evicted");
        // The arbiter reclaims slack: the tighter budget bites next tick.
        g.set_memory_budget(2_000);
        assert_eq!(g.memory_budget(), 2_000);
        g.run_tick(0);
        assert!(g.engine().resident_bytes() <= 2_000);
        assert!(g.reconciles());
    }

    #[test]
    fn books_reconcile_under_mixed_load() {
        let mut g = gov(ServeConfig {
            forecast_queue_cap: 4,
            ingest_queue_cap: 8,
            rate_capacity: 16.0,
            refill_per_ms: 0.5,
            tick_budget_ms: 10,
            ..ServeConfig::default()
        });
        for round in 0..50u64 {
            for i in 0..7 {
                g.submit_ingest(round, &format!("INSERT {i}"), 1);
            }
            for i in 0..3 {
                g.submit_forecast(&format!("SELECT q{i}"), 2);
            }
            g.run_tick(if round % 5 == 0 { 3 } else { 0 });
            assert!(g.reconciles(), "books must balance every tick (round {round})");
        }
        assert!(g.stats().shed_total() > 0, "this load must overload");
        assert!(g.stats().completed_fresh + g.stats().completed_degraded > 0);
    }
}
