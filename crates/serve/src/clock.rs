//! Pluggable time for the serving loop.
//!
//! Every deadline, token refill, and latency measurement in this crate
//! goes through a [`Clock`], so the whole governor runs identically
//! against real time ([`MonotonicClock`]) and simulated time
//! ([`VirtualClock`]). The soak harness drives a `VirtualClock` — a
//! ten-minute overload scenario executes in microseconds and is exactly
//! reproducible, which real sleeps can never be.
//!
//! The implementation now lives in [`dbaugur_exec::clock`] so that
//! [`dbaugur_exec::Deadline`] expiry itself can be driven in virtual
//! time (the deterministic simulator shares one `Arc<VirtualClock>`
//! between its tick loop and the deadlines it hands out). This module
//! re-exports the same names, so serving-layer callers are unchanged.

pub use dbaugur_exec::clock::{Clock, MonotonicClock, VirtualClock};
