//! Pluggable time for the serving loop.
//!
//! Every deadline, token refill, and latency measurement in this crate
//! goes through a [`Clock`], so the whole governor runs identically
//! against real time ([`MonotonicClock`]) and simulated time
//! ([`VirtualClock`]). The soak harness drives a `VirtualClock` — a
//! ten-minute overload scenario executes in microseconds and is exactly
//! reproducible, which real sleeps can never be.

use std::cell::Cell;
use std::time::Instant;

/// A millisecond clock the governor reads and (for simulated work)
/// advances.
pub trait Clock {
    /// Milliseconds since the clock's epoch.
    fn now_ms(&self) -> u64;

    /// Account `ms` of simulated work. Real clocks ignore this — the
    /// work itself took the time; virtual clocks move forward so queued
    /// deadlines expire exactly as they would under load.
    fn advance(&self, ms: u64) {
        let _ = ms;
    }
}

/// Wall-clock time, anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        Self { epoch: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

/// Deterministic simulated time: starts at zero, moves only when
/// advanced.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ms: Cell<u64>,
}

impl VirtualClock {
    /// A virtual clock at t = 0 ms.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        self.ms.get()
    }

    fn advance(&self, ms: u64) {
        self.ms.set(self.ms.get() + ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_moves_only_when_advanced() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_ms(), 12);
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_ms();
        c.advance(1_000_000); // ignored
        let b = c.now_ms();
        assert!(b >= a);
        assert!(b < 1_000_000, "advance must not move a real clock");
    }
}
