#![warn(missing_docs)]
//! Resource-governed online serving for the DBAugur pipeline.
//!
//! A forecasting system that falls over under the very load spike it
//! exists to predict is useless. This crate is the front door that
//! keeps the pipeline standing when offered load exceeds capacity:
//!
//! * **Admission control** ([`admission`]) — bounded priority-class
//!   queues and a token bucket; every request is either `Admitted` or
//!   `Shed` with an explicit reason, never silently dropped;
//! * **Deadlines and degradation** ([`governor`]) — forecasts carry
//!   deadlines and preempt bulk ingest; a missed deadline is answered
//!   with a marked seasonal-naive floor instead of blocking (the same
//!   posture `dbaugur_exec::Deadline` enforces inside training);
//! * **Memory governance** ([`engine`]) — the governed engine is
//!   byte-accounted and evicted down to budget at every tick boundary;
//! * **Health** — the loop's posture (`Healthy`/`Shedding`/`Saturated`)
//!   is recomputed each tick and surfaced through reports and the CLI;
//! * **Chaos/soak harness** ([`soak`]) — seeded burst floods, latency
//!   spikes, slow-consumer stalls, and poison templates from
//!   [`dbaugur_trace::FaultInjector`], driven in virtual time
//!   ([`clock`]) so overload scenarios are fast and deterministic.

pub mod admission;
pub mod clock;
pub mod engine;
pub mod governor;
pub mod soak;

pub use admission::{AdmissionDecision, AdmissionQueue, ShedReason, TokenBucket};
pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use engine::{Engine, PipelineEngine, SimEngine};
pub use governor::{ForecastOutcome, Governor, HealthState, ServeConfig, ServeStats, TickReport};
pub use soak::{run_soak, SoakConfig, SoakReport};
