//! Admission control: bounded queues, token-bucket rate limiting, and
//! explicit shed decisions.
//!
//! Nothing in the serving front door is unbounded and nothing is
//! silently dropped: a request is either `Admitted` into a
//! fixed-capacity queue or returned as `Shed` with the reason, and the
//! governor counts both sides so offered load always reconciles with
//! what happened to it.

use std::collections::VecDeque;

/// Why a request was refused at the front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The request's priority-class queue was at capacity.
    QueueFull,
    /// The token bucket was empty — offered rate exceeds the configured
    /// sustained rate plus burst allowance.
    RateLimited,
    /// The submitting tenant exhausted its per-tick quota; other
    /// tenants' requests are still admitted.
    TenantQuota,
    /// The shard owning this template is quarantined and not accepting
    /// writes; forecasts are still answered (degraded) from its floor.
    ShardUnavailable,
    /// The global memory budget is exhausted and eviction/spill could
    /// not reclaim enough: lowest-priority ingest is shed so resident
    /// state stops growing. Forecast reads are unaffected.
    MemoryPressure,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "queue full"),
            ShedReason::RateLimited => write!(f, "rate limited"),
            ShedReason::TenantQuota => write!(f, "tenant quota exhausted"),
            ShedReason::ShardUnavailable => write!(f, "shard unavailable"),
            ShedReason::MemoryPressure => write!(f, "memory pressure"),
        }
    }
}

/// The front door's answer to one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Queued; it will be served (possibly degraded) and counted.
    Admitted,
    /// Refused, with the reason; the caller may retry later.
    Shed(ShedReason),
}

impl AdmissionDecision {
    /// True when the request made it into a queue.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionDecision::Admitted)
    }
}

/// A token bucket over virtual-or-real milliseconds: `capacity` bounds
/// the burst, `refill_per_ms` the sustained admission rate.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_ms: f64,
    last_ms: u64,
}

impl TokenBucket {
    /// A full bucket observed at `now_ms`.
    pub fn new(capacity: f64, refill_per_ms: f64, now_ms: u64) -> Self {
        let capacity = capacity.max(1.0);
        Self { capacity, tokens: capacity, refill_per_ms: refill_per_ms.max(0.0), last_ms: now_ms }
    }

    fn refill(&mut self, now_ms: u64) {
        let elapsed = now_ms.saturating_sub(self.last_ms);
        self.last_ms = self.last_ms.max(now_ms);
        self.tokens = (self.tokens + elapsed as f64 * self.refill_per_ms).min(self.capacity);
    }

    /// Take one token if available.
    pub fn try_take(&mut self, now_ms: u64) -> bool {
        self.refill(now_ms);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to `now_ms`).
    pub fn available(&mut self, now_ms: u64) -> f64 {
        self.refill(now_ms);
        self.tokens
    }
}

/// A bounded FIFO admission queue; rejected pushes hand the request
/// back instead of growing.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    q: VecDeque<T>,
    cap: usize,
    high_water: usize,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue holding at most `cap` requests.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "admission queue capacity must be positive");
        Self { q: VecDeque::with_capacity(cap), cap, high_water: 0 }
    }

    /// Enqueue, or return the request when full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.q.len() >= self.cap {
            return Err(item);
        }
        self.q.push_back(item);
        self.high_water = self.high_water.max(self.q.len());
        Ok(())
    }

    /// Put a request back at the head (ran out of tick budget before
    /// serving it); never sheds — the slot it came from is still free.
    pub fn push_front(&mut self, item: T) {
        self.q.push_front(item);
        self.high_water = self.high_water.max(self.q.len());
    }

    /// Dequeue the oldest request.
    pub fn pop(&mut self) -> Option<T> {
        self.q.pop_front()
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_burst_and_refills() {
        let mut b = TokenBucket::new(3.0, 0.001, 0); // 1 token per second
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0), "burst capacity exhausted");
        assert!(!b.try_take(500), "half a token is not a token");
        assert!(b.try_take(1_000), "one second refills one token");
        // Refill never exceeds capacity.
        assert!(b.available(1_000_000) <= 3.0);
    }

    #[test]
    fn bucket_time_going_backwards_is_safe() {
        let mut b = TokenBucket::new(1.0, 1.0, 100);
        assert!(b.try_take(100));
        assert!(!b.try_take(50), "no refill from the past");
        assert!(b.try_take(101));
    }

    #[test]
    fn queue_sheds_at_capacity_and_tracks_high_water() {
        let mut q = AdmissionQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3), "full queue hands the request back");
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn push_front_requeues_in_order() {
        let mut q = AdmissionQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let head = q.pop().unwrap();
        q.push_front(head);
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_queue_panics() {
        AdmissionQueue::<u32>::new(0);
    }
}
