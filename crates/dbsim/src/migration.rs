//! Partitioned-cluster data-region migration (paper Sec. VI-G).
//!
//! "Assume that the database is partitioned horizontally into
//! non-overlapping regions that [are] assigned to each server … we need
//! to dynamically balance the system load by migrating data regions from
//! the overloaded servers to slightly loaded ones."
//!
//! [`Cluster`] tracks the region → server assignment;
//! [`MigrationPlanner`] greedily moves regions from the most loaded to
//! the least loaded server, bounded by a per-period migration budget
//! (moving data is not free). [`balance_metric`] is the "load balancing
//! difference" the figure plots: the coefficient of variation of server
//! loads (0 = perfectly balanced).

/// A horizontally partitioned cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    servers: usize,
    /// `assignment[r]` = server hosting region `r`.
    assignment: Vec<usize>,
}

impl Cluster {
    /// A cluster of `servers` servers with `regions` regions assigned
    /// round-robin.
    ///
    /// # Panics
    /// Panics if `servers == 0`.
    pub fn new(servers: usize, regions: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        Self { servers, assignment: (0..regions).map(|r| r % servers).collect() }
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.assignment.len()
    }

    /// Server hosting region `r`.
    pub fn server_of(&self, r: usize) -> usize {
        self.assignment[r]
    }

    /// Move region `r` to `server`.
    ///
    /// # Panics
    /// Panics on an out-of-range server.
    pub fn migrate(&mut self, r: usize, server: usize) {
        assert!(server < self.servers, "server out of range");
        self.assignment[r] = server;
    }

    /// Per-server total load given per-region loads.
    ///
    /// # Panics
    /// Panics when `region_loads` does not match the region count.
    pub fn server_loads(&self, region_loads: &[f64]) -> Vec<f64> {
        assert_eq!(region_loads.len(), self.assignment.len(), "one load per region");
        let mut loads = vec![0.0; self.servers];
        for (r, &s) in self.assignment.iter().enumerate() {
            loads[s] += region_loads[r];
        }
        loads
    }
}

/// Load-balance difference: coefficient of variation (σ/μ) of server
/// loads; 0 when perfectly balanced. Returns 0 for zero total load.
pub fn balance_metric(server_loads: &[f64]) -> f64 {
    let n = server_loads.len() as f64;
    let mean = server_loads.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = server_loads.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// Greedy migration planner.
#[derive(Debug, Clone, Copy)]
pub struct MigrationPlanner {
    /// Maximum region moves per planning round (migration is costly).
    pub max_moves: usize,
}

impl MigrationPlanner {
    /// Planner with a per-round move budget.
    pub fn new(max_moves: usize) -> Self {
        Self { max_moves }
    }

    /// Plan and apply migrations against `expected_loads` (historical
    /// loads for the Static strategy, forecasted loads for Auto).
    /// Returns the number of regions moved.
    ///
    /// Strategy: repeatedly take the most loaded server and move its
    /// best-fitting region (the one whose load is closest to half the
    /// max-min gap) to the least loaded server, while doing so shrinks
    /// the gap.
    pub fn rebalance(&self, cluster: &mut Cluster, expected_loads: &[f64]) -> usize {
        let mut moves = 0;
        for _ in 0..self.max_moves {
            let loads = cluster.server_loads(expected_loads);
            let (max_s, max_l) = loads
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, &l)| (i, l))
                .expect("at least one server");
            let (min_s, min_l) = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, &l)| (i, l))
                .expect("at least one server");
            let gap = max_l - min_l;
            if gap <= 0.0 || max_s == min_s {
                break;
            }
            // Best region to move: load closest to gap/2 (moving more
            // than the gap would invert the imbalance).
            let target = gap / 2.0;
            let candidate = (0..cluster.num_regions())
                .filter(|&r| cluster.server_of(r) == max_s)
                .filter(|&r| expected_loads[r] > 0.0 && expected_loads[r] < gap)
                .min_by(|&a, &b| {
                    (expected_loads[a] - target)
                        .abs()
                        .total_cmp(&(expected_loads[b] - target).abs())
                });
            match candidate {
                Some(r) => {
                    cluster.migrate(r, min_s);
                    moves += 1;
                }
                None => break,
            }
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_initial_assignment() {
        let c = Cluster::new(3, 7);
        assert_eq!(c.server_of(0), 0);
        assert_eq!(c.server_of(4), 1);
        assert_eq!(c.num_regions(), 7);
    }

    #[test]
    fn server_loads_sum_regions() {
        let c = Cluster::new(2, 4);
        // regions 0,2 -> server 0; 1,3 -> server 1
        let loads = c.server_loads(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(loads, vec![4.0, 6.0]);
    }

    #[test]
    fn balance_metric_zero_when_equal() {
        assert_eq!(balance_metric(&[5.0, 5.0, 5.0]), 0.0);
        assert!(balance_metric(&[1.0, 9.0]) > 0.5);
        assert_eq!(balance_metric(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn rebalance_fixes_skew() {
        let mut c = Cluster::new(2, 6);
        // All load on server 0's regions.
        let loads = [10.0, 0.0, 10.0, 0.0, 10.0, 0.0];
        let before = balance_metric(&c.server_loads(&loads));
        let planner = MigrationPlanner::new(3);
        let moved = planner.rebalance(&mut c, &loads);
        let after = balance_metric(&c.server_loads(&loads));
        assert!(moved >= 1);
        assert!(after < before, "after {after} < before {before}");
    }

    #[test]
    fn rebalance_respects_move_budget() {
        let mut c = Cluster::new(2, 10);
        let loads: Vec<f64> = (0..10).map(|r| if r % 2 == 0 { 5.0 } else { 0.0 }).collect();
        let planner = MigrationPlanner::new(1);
        let moved = planner.rebalance(&mut c, &loads);
        assert!(moved <= 1);
    }

    #[test]
    fn balanced_cluster_is_left_alone() {
        let mut c = Cluster::new(2, 4);
        let loads = [5.0, 5.0, 5.0, 5.0];
        let planner = MigrationPlanner::new(10);
        assert_eq!(planner.rebalance(&mut c, &loads), 0);
    }

    #[test]
    fn planner_converges_toward_balance_over_rounds() {
        let mut c = Cluster::new(4, 32);
        // Skewed loads: region r carries load r.
        let loads: Vec<f64> = (0..32).map(|r| r as f64).collect();
        let planner = MigrationPlanner::new(4);
        let mut prev = balance_metric(&c.server_loads(&loads));
        for _ in 0..8 {
            planner.rebalance(&mut c, &loads);
            let now = balance_metric(&c.server_loads(&loads));
            assert!(now <= prev + 1e-9, "metric must not regress: {now} vs {prev}");
            prev = now;
        }
        assert!(prev < 0.1, "should approach balance, got {prev}");
    }

    #[test]
    fn forecast_guided_beats_stale_loads_after_shift() {
        // The essence of Fig. 9: balancing on *last* period's loads is bad
        // when the load pattern shifts; balancing on the *actual next*
        // loads (a perfect forecast) stays balanced.
        let mut static_c = Cluster::new(2, 8);
        let mut auto_c = Cluster::new(2, 8);
        let planner = MigrationPlanner::new(8);
        let old_loads: Vec<f64> = (0..8).map(|r| if r < 4 { 10.0 } else { 0.0 }).collect();
        let new_loads: Vec<f64> = (0..8).map(|r| if r >= 4 { 10.0 } else { 0.0 }).collect();
        planner.rebalance(&mut static_c, &old_loads); // stale information
        planner.rebalance(&mut auto_c, &new_loads); // forecast = truth
        let b_static = balance_metric(&static_c.server_loads(&new_loads));
        let b_auto = balance_metric(&auto_c.server_loads(&new_loads));
        assert!(b_auto <= b_static, "auto {b_auto} vs static {b_static}");
        assert!(b_auto < 0.05);
    }

    #[test]
    #[should_panic(expected = "one load per region")]
    fn load_length_mismatch_panics() {
        Cluster::new(2, 3).server_loads(&[1.0]);
    }
}
