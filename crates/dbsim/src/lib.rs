#![warn(missing_docs)]
//! Case-study substrates (paper Secs. VI-F and VI-G).
//!
//! The paper demonstrates DBAugur's value on two downstream tasks:
//!
//! * **Index selection** (Fig. 8): replaying BusTracker queries against
//!   PostgreSQL-12 with AutoAdmin choosing indexes from either the
//!   historical (Static) or forecasted (Auto) workload. Here a cost-model
//!   database simulator ([`index`]) stands in for PostgreSQL: tables with
//!   cardinalities, single-column indexes, a textbook seq-scan vs
//!   index-scan cost model, and a greedy AutoAdmin-style advisor. The
//!   case study's claim is *relational* (forecast-driven indexing
//!   overtakes static indexing once the workload shifts), which the cost
//!   model reproduces — the paper itself drives PostgreSQL through a
//!   simulator.
//! * **Data-region migration** (Fig. 9): a horizontally partitioned
//!   cluster ([`migration`]) where regions move between servers to
//!   balance load, guided by historical (Static) or forecasted (Auto)
//!   per-region loads.

pub mod index;
pub mod migration;

pub use index::{run_period, AutoAdmin, Catalog, CostModel, IndexSet, PeriodBudget, QueryTemplate, Workload};
pub use migration::{balance_metric, Cluster, MigrationPlanner};
