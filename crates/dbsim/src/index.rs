//! A cost-model database with an AutoAdmin-style greedy index advisor.
//!
//! The model is the textbook one: a query over a table either sequential
//! scans (`rows · c_row`) or, when an index exists on one of its
//! predicate columns, probes the index
//! (`log₂(rows) · c_probe + selectivity · rows · c_fetch`) — the planner
//! picks the cheapest usable plan. The advisor (after Chaudhuri &
//! Narasayya's AutoAdmin) greedily adds the index with the largest
//! expected workload-cost reduction until the index budget is exhausted.

use std::collections::BTreeSet;

/// Column identifier: `(table, column)`.
pub type ColumnId = (u32, u32);

/// A table: row count plus per-column distinct-value counts.
#[derive(Debug, Clone)]
pub struct Table {
    /// Rows in the table.
    pub rows: u64,
    /// Distinct values per column (column index = position).
    pub distinct: Vec<u64>,
}

/// The database schema and statistics.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a table, returning its id.
    ///
    /// # Panics
    /// Panics if any distinct count is 0 or exceeds the row count.
    pub fn add_table(&mut self, rows: u64, distinct: Vec<u64>) -> u32 {
        assert!(
            distinct.iter().all(|&d| d > 0 && d <= rows.max(1)),
            "distinct counts must be in [1, rows]"
        );
        self.tables.push(Table { rows, distinct });
        (self.tables.len() - 1) as u32
    }

    /// The table with id `t`.
    pub fn table(&self, t: u32) -> &Table {
        &self.tables[t as usize]
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Selectivity of an equality predicate on `col`: `1 / distinct`.
    pub fn eq_selectivity(&self, col: ColumnId) -> f64 {
        let t = self.table(col.0);
        1.0 / t.distinct[col.1 as usize] as f64
    }
}

/// Predicate kinds a template can carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// `col = $x` — selectivity `1/distinct`.
    Eq(ColumnId),
    /// `col BETWEEN …` with the given fraction of rows selected.
    Range(ColumnId, f64),
}

impl Predicate {
    /// The predicate's column.
    pub fn column(&self) -> ColumnId {
        match self {
            Predicate::Eq(c) | Predicate::Range(c, _) => *c,
        }
    }

    /// Fraction of rows surviving the predicate.
    pub fn selectivity(&self, catalog: &Catalog) -> f64 {
        match self {
            Predicate::Eq(c) => catalog.eq_selectivity(*c),
            Predicate::Range(_, f) => f.clamp(0.0, 1.0),
        }
    }
}

/// A query template: one table, a conjunction of predicates.
#[derive(Debug, Clone)]
pub struct QueryTemplate {
    /// Target table.
    pub table: u32,
    /// Conjunctive predicates.
    pub predicates: Vec<Predicate>,
}

/// A workload: expected executions per template over one period.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// `(template index, expected frequency)` pairs.
    pub frequencies: Vec<f64>,
}

impl Workload {
    /// A workload over `n` templates with the given frequencies.
    pub fn new(frequencies: Vec<f64>) -> Self {
        Self { frequencies }
    }

    /// Total query count.
    pub fn total(&self) -> f64 {
        self.frequencies.iter().sum()
    }
}

/// The set of built single-column indexes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexSet {
    cols: BTreeSet<ColumnId>,
}

impl IndexSet {
    /// No indexes.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if an index exists on `col`.
    pub fn contains(&self, col: ColumnId) -> bool {
        self.cols.contains(&col)
    }

    /// Build an index; returns false if it already existed.
    pub fn add(&mut self, col: ColumnId) -> bool {
        self.cols.insert(col)
    }

    /// Drop an index.
    pub fn remove(&mut self, col: ColumnId) -> bool {
        self.cols.remove(&col)
    }

    /// Number of indexes.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when no index exists.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Iterate the indexed columns.
    pub fn iter(&self) -> impl Iterator<Item = ColumnId> + '_ {
        self.cols.iter().copied()
    }
}

/// Cost-model constants, in abstract "work units" (1 unit ≈ reading one
/// row sequentially).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Per-row sequential scan cost.
    pub c_row: f64,
    /// Per-level index probe cost.
    pub c_probe: f64,
    /// Per-fetched-row random-access cost (random I/O ≫ sequential).
    pub c_fetch: f64,
    /// Per-row index build cost.
    pub c_build: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self { c_row: 1.0, c_probe: 5.0, c_fetch: 4.0, c_build: 2.0 }
    }
}

impl CostModel {
    /// Cost of executing one instance of `q` under `indexes`.
    pub fn query_cost(&self, catalog: &Catalog, q: &QueryTemplate, indexes: &IndexSet) -> f64 {
        let rows = catalog.table(q.table).rows as f64;
        let seq = rows * self.c_row;
        let mut best = seq;
        for p in &q.predicates {
            if indexes.contains(p.column()) {
                let sel = p.selectivity(catalog);
                let probe = rows.max(2.0).log2() * self.c_probe + sel * rows * self.c_fetch;
                if probe < best {
                    best = probe;
                }
            }
        }
        best
    }

    /// Expected cost of a whole workload.
    pub fn workload_cost(
        &self,
        catalog: &Catalog,
        templates: &[QueryTemplate],
        workload: &Workload,
        indexes: &IndexSet,
    ) -> f64 {
        templates
            .iter()
            .zip(&workload.frequencies)
            .map(|(q, &f)| f * self.query_cost(catalog, q, indexes))
            .sum()
    }

    /// Cost of building an index on `col` (charged once, at build time).
    pub fn build_cost(&self, catalog: &Catalog, col: ColumnId) -> f64 {
        catalog.table(col.0).rows as f64 * self.c_build
    }
}

/// Greedy AutoAdmin-style index advisor.
#[derive(Debug, Clone)]
pub struct AutoAdmin {
    /// Maximum number of indexes the database may hold.
    pub budget: usize,
    /// Cost model used for what-if evaluation.
    pub cost: CostModel,
}

impl AutoAdmin {
    /// Advisor with the given index budget.
    pub fn new(budget: usize) -> Self {
        Self { budget, cost: CostModel::default() }
    }

    /// Candidate columns: every predicate column in the workload's
    /// templates with non-zero frequency.
    fn candidates(templates: &[QueryTemplate], workload: &Workload) -> Vec<ColumnId> {
        let mut seen = BTreeSet::new();
        for (q, &f) in templates.iter().zip(&workload.frequencies) {
            if f <= 0.0 {
                continue;
            }
            for p in &q.predicates {
                seen.insert(p.column());
            }
        }
        seen.into_iter().collect()
    }

    /// Recommend an index set for `workload`, greedily maximizing
    /// what-if cost reduction until the budget is filled or no candidate
    /// helps.
    pub fn recommend(
        &self,
        catalog: &Catalog,
        templates: &[QueryTemplate],
        workload: &Workload,
    ) -> IndexSet {
        let mut chosen = IndexSet::new();
        let candidates = Self::candidates(templates, workload);
        let mut current = self.cost.workload_cost(catalog, templates, workload, &chosen);
        while chosen.len() < self.budget {
            let mut best: Option<(ColumnId, f64)> = None;
            for &cand in &candidates {
                if chosen.contains(cand) {
                    continue;
                }
                let mut with = chosen.clone();
                with.add(cand);
                let cost = self.cost.workload_cost(catalog, templates, workload, &with);
                let gain = current - cost;
                if gain > 1e-9 && best.is_none_or(|(_, g)| gain > g) {
                    best = Some((cand, gain));
                }
            }
            match best {
                Some((cand, gain)) => {
                    chosen.add(cand);
                    current -= gain;
                }
                None => break,
            }
        }
        chosen
    }
}

/// The resource envelope of one simulated period.
#[derive(Debug, Clone, Copy)]
pub struct PeriodBudget {
    /// Index-build work charged this period (eats into the budget first
    /// — the Fig. 8 warm-up dip).
    pub build_cost: f64,
    /// Total work units the server can spend this period.
    pub work_budget: f64,
    /// Period duration in seconds (for the qps denominator).
    pub period_secs: f64,
}

/// Execute one period of `workload`: returns `(throughput_qps,
/// avg_latency_units)` — how many queries the budget admits per second,
/// and the mean per-query cost.
pub fn run_period(
    catalog: &Catalog,
    cost: &CostModel,
    templates: &[QueryTemplate],
    workload: &Workload,
    indexes: &IndexSet,
    budget: PeriodBudget,
) -> (f64, f64) {
    let total_queries = workload.total();
    if total_queries <= 0.0 {
        return (0.0, 0.0);
    }
    let wl_cost = cost.workload_cost(catalog, templates, workload, indexes);
    let avg_cost = wl_cost / total_queries;
    let usable = (budget.work_budget - budget.build_cost).max(0.0);
    let executed = (usable / avg_cost.max(1e-9)).min(total_queries);
    (executed / budget.period_secs, avg_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Catalog, Vec<QueryTemplate>) {
        let mut cat = Catalog::new();
        // bus(10k rows): id 10k distinct, route 50 distinct
        let bus = cat.add_table(10_000, vec![10_000, 50]);
        // stop(1k rows): id 1k distinct
        let stop = cat.add_table(1_000, vec![1_000]);
        let templates = vec![
            QueryTemplate { table: bus, predicates: vec![Predicate::Eq((bus, 0))] },
            QueryTemplate { table: bus, predicates: vec![Predicate::Eq((bus, 1))] },
            QueryTemplate { table: stop, predicates: vec![Predicate::Eq((stop, 0))] },
            QueryTemplate { table: bus, predicates: vec![Predicate::Range((bus, 1), 0.5)] },
        ];
        (cat, templates)
    }

    #[test]
    fn index_beats_seqscan_when_selective() {
        let (cat, templates) = setup();
        let cost = CostModel::default();
        let mut idx = IndexSet::new();
        let seq = cost.query_cost(&cat, &templates[0], &idx);
        idx.add((0, 0));
        let probed = cost.query_cost(&cat, &templates[0], &idx);
        assert!(probed < seq / 10.0, "selective probe {probed} vs seq {seq}");
    }

    #[test]
    fn unselective_range_keeps_seqscan() {
        let (cat, templates) = setup();
        let cost = CostModel::default();
        let mut idx = IndexSet::new();
        idx.add((0, 1));
        // 50% range: probing fetches half the table at random-access cost,
        // worse than scanning it sequentially.
        let c = cost.query_cost(&cat, &templates[3], &idx);
        assert_eq!(c, 10_000.0, "planner must fall back to the seq scan");
    }

    #[test]
    fn advisor_picks_hottest_useful_columns() {
        let (cat, templates) = setup();
        let advisor = AutoAdmin::new(2);
        // Template 1 (route lookup) dominates; template 0 rare.
        let wl = Workload::new(vec![1.0, 100.0, 50.0, 0.0]);
        let rec = advisor.recommend(&cat, &templates, &wl);
        assert!(rec.contains((0, 1)), "hot route column indexed: {rec:?}");
        assert!(rec.contains((1, 0)), "stop id column indexed: {rec:?}");
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn advisor_respects_budget() {
        let (cat, templates) = setup();
        let advisor = AutoAdmin::new(1);
        let wl = Workload::new(vec![100.0, 100.0, 100.0, 0.0]);
        let rec = advisor.recommend(&cat, &templates, &wl);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn advisor_skips_useless_indexes() {
        let (cat, templates) = setup();
        let advisor = AutoAdmin::new(5);
        // Only the unselective range template runs: no index helps.
        let wl = Workload::new(vec![0.0, 0.0, 0.0, 100.0]);
        let rec = advisor.recommend(&cat, &templates, &wl);
        assert!(rec.is_empty(), "no helpful index exists: {rec:?}");
    }

    #[test]
    fn advisor_is_workload_sensitive() {
        let (cat, templates) = setup();
        let advisor = AutoAdmin::new(1);
        let wl_a = Workload::new(vec![100.0, 1.0, 0.0, 0.0]);
        let wl_b = Workload::new(vec![1.0, 100.0, 0.0, 0.0]);
        let rec_a = advisor.recommend(&cat, &templates, &wl_a);
        let rec_b = advisor.recommend(&cat, &templates, &wl_b);
        assert!(rec_a.contains((0, 0)));
        assert!(rec_b.contains((0, 1)));
    }

    #[test]
    fn run_period_throughput_improves_with_indexes() {
        let (cat, templates) = setup();
        let cost = CostModel::default();
        let wl = Workload::new(vec![50.0, 50.0, 50.0, 0.0]);
        let none = IndexSet::new();
        let (tput0, lat0) = run_period(&cat, &cost, &templates, &wl, &none, PeriodBudget { build_cost: 0.0, work_budget: 1e6, period_secs: 60.0 });
        let advisor = AutoAdmin::new(3);
        let idx = advisor.recommend(&cat, &templates, &wl);
        let (tput1, lat1) = run_period(&cat, &cost, &templates, &wl, &idx, PeriodBudget { build_cost: 0.0, work_budget: 1e6, period_secs: 60.0 });
        assert!(tput1 > tput0, "indexed throughput {tput1} > {tput0}");
        assert!(lat1 < lat0, "indexed latency {lat1} < {lat0}");
    }

    #[test]
    fn build_cost_reduces_available_throughput() {
        let (cat, templates) = setup();
        let cost = CostModel::default();
        let wl = Workload::new(vec![100.0, 0.0, 0.0, 0.0]);
        let idx = IndexSet::new();
        let (t_free, _) = run_period(&cat, &cost, &templates, &wl, &idx, PeriodBudget { build_cost: 0.0, work_budget: 5e4, period_secs: 60.0 });
        let (t_building, _) = run_period(&cat, &cost, &templates, &wl, &idx, PeriodBudget { build_cost: 4e4, work_budget: 5e4, period_secs: 60.0 });
        assert!(t_building < t_free);
    }

    #[test]
    fn empty_workload_is_zero() {
        let (cat, templates) = setup();
        let cost = CostModel::default();
        let wl = Workload::new(vec![0.0; 4]);
        let (t, l) = run_period(&cat, &cost, &templates, &wl, &IndexSet::new(), PeriodBudget { build_cost: 0.0, work_budget: 1e6, period_secs: 60.0 });
        assert_eq!((t, l), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "distinct counts")]
    fn bad_statistics_rejected() {
        Catalog::new().add_table(10, vec![100]);
    }
}
