//! MLP forecaster — "a two layer MLP, with 32 units and 16 units
//! respectively" (Sec. VI-A). The ensemble's *local view*: fast to train
//! and good at short-term, locally (non)linear patterns (Table I).

use crate::forecaster::Forecaster;
use crate::guard::{run_guarded, Checkpoint, GuardConfig, GuardedTrain, TrainHealth};
use crate::util;
use dbaugur_nn::activation::Activation;
use dbaugur_nn::dense::Mlp;
use dbaugur_nn::loss::mse_loss;
use dbaugur_nn::param::HasParams;
use dbaugur_nn::serialize::encoded_size;
use dbaugur_nn::{Adam, Mat, Optimizer};
use dbaugur_trace::{MinMaxScaler, Scaler, WindowSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// MLP forecaster configuration + fitted state.
pub struct MlpForecaster {
    /// Hidden widths (paper: `[32, 16]`).
    pub hidden: Vec<usize>,
    /// Training epochs (paper Table II uses 40).
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f64,
    /// Cap on examples per epoch (subsampled above this).
    pub max_examples: usize,
    /// RNG seed for init + shuffling.
    pub seed: u64,
    /// Divergence-guard thresholds and retry budget.
    pub guard: GuardConfig,
    net: Option<Mlp>,
    scaler: MinMaxScaler,
    history: usize,
    health: TrainHealth,
}

impl Default for MlpForecaster {
    fn default() -> Self {
        Self {
            hidden: vec![32, 16],
            epochs: 40,
            batch: 32,
            lr: 1e-3,
            max_examples: 4000,
            seed: 0,
            guard: GuardConfig::default(),
            net: None,
            scaler: MinMaxScaler::new(),
            history: 0,
            health: TrainHealth::Healthy,
        }
    }
}

/// Owns one guarded-training attempt's RNG and optimizer state.
struct MlpTrainer<'a> {
    model: &'a mut MlpForecaster,
    data: &'a util::SupervisedData,
    rng: StdRng,
    opt: Adam,
}

impl GuardedTrain for MlpTrainer<'_> {
    fn reinit(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        let mut widths = vec![self.model.history];
        widths.extend(&self.model.hidden);
        widths.push(1);
        self.model.net = Some(Mlp::new(&widths, Activation::Relu, &mut self.rng));
        self.opt = Adam::new(self.model.lr);
    }

    fn epoch(&mut self) -> f64 {
        self.model.train_epoch(self.data, &mut self.rng, &mut self.opt)
    }

    fn checkpoint(&mut self) -> Checkpoint {
        Checkpoint::of(&self.model.net_params().expect("net initialized by reinit"))
    }

    fn restore(&mut self, ck: &Checkpoint) {
        ck.restore(&mut self.model.net_params().expect("net initialized by reinit"));
    }

    fn clear(&mut self) {
        self.model.net = None;
    }
}

impl MlpForecaster {
    /// Default configuration with a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Builder: override epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Run one training epoch; returns mean batch loss. Exposed so the
    /// Table II harness can time exactly one epoch.
    pub fn train_epoch(&mut self, data: &util::SupervisedData, rng: &mut StdRng, opt: &mut Adam) -> f64 {
        let net = self.net.as_mut().expect("initialized by fit");
        let mut total = 0.0;
        let mut count = 0usize;
        for idxs in util::batches(data.windows.len(), self.batch, self.max_examples, rng) {
            let x = util::window_batch_flat(data, &idxs);
            let y = util::target_batch(data, &idxs);
            let pred = net.forward(&x);
            let (loss, grad) = mse_loss(&pred, &y);
            net.backward(&grad);
            opt.step(&mut net.params_mut());
            total += loss;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}


/// Persistence accessors (see `crate::persist`).
impl MlpForecaster {
    pub(crate) fn scaler_state(&self) -> MinMaxScaler {
        self.scaler
    }

    pub(crate) fn history_len(&self) -> usize {
        self.history
    }

    pub(crate) fn set_scaler_state(&mut self, scaler: MinMaxScaler, history: usize) {
        self.scaler = scaler;
        self.history = history;
    }

    pub(crate) fn net_params(&mut self) -> Option<Vec<&mut dbaugur_nn::Param>> {
        self.net.as_mut().map(|n| n.params_mut())
    }
}

impl Forecaster for MlpForecaster {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        self.history = spec.history;
        self.health = TrainHealth::Healthy;
        let Some(data) = util::prepare(train, spec) else {
            self.net = None;
            return;
        };
        self.scaler = data.scaler;
        let (guard, seed, epochs, lr) = (self.guard.clone(), self.seed, self.epochs, self.lr);
        let mut trainer = MlpTrainer {
            model: self,
            data: &data,
            rng: StdRng::seed_from_u64(seed),
            opt: Adam::new(lr),
        };
        let health = run_guarded(&mut trainer, &guard, seed, epochs);
        self.health = health;
    }

    fn predict(&self, window: &[f64]) -> f64 {
        assert_eq!(window.len(), self.history, "window length must match fit history");
        let Some(net) = &self.net else {
            return window.last().copied().unwrap_or(0.0);
        };
        let x = Mat::from_fn(1, window.len(), |_, c| self.scaler.transform(window[c]));
        self.scaler.inverse(net.infer(&x).get(0, 0))
    }

    fn predict_batch(&self, windows: &[&[f64]]) -> Vec<f64> {
        if windows.is_empty() {
            return Vec::new();
        }
        for w in windows {
            assert_eq!(w.len(), self.history, "window length must match fit history");
        }
        let Some(net) = &self.net else {
            return windows.iter().map(|w| w.last().copied().unwrap_or(0.0)).collect();
        };
        // One N-row forward pass instead of N row-vector passes. Row
        // independence of the blocked matmul kernels makes each output
        // row bitwise-equal to the single-window `predict`.
        let x = Mat::from_fn(windows.len(), self.history, |r, c| {
            self.scaler.transform(windows[r][c])
        });
        let y = net.infer(&x);
        (0..windows.len()).map(|r| self.scaler.inverse(y.get(r, 0))).collect()
    }

    fn storage_bytes(&self) -> usize {
        match &self.net {
            Some(net) => {
                let mut net = net.clone();
                let params = net.params_mut();
                encoded_size(&params.iter().map(|p| &**p).collect::<Vec<_>>())
            }
            None => 0,
        }
    }

    fn health(&self) -> TrainHealth {
        self.health.clone()
    }

    fn export_state(&mut self) -> Option<Vec<u8>> {
        crate::persist::Persistable::export_bytes(self).ok()
    }

    fn import_state(&mut self, bytes: &[u8]) -> bool {
        crate::persist::Persistable::import_bytes(self, bytes).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbaugur_trace::mse;

    fn sine_series(n: usize) -> Vec<f64> {
        (0..n).map(|i| 50.0 + 40.0 * (i as f64 * 0.2).sin()).collect()
    }

    #[test]
    fn learns_sine_next_step() {
        let series = sine_series(600);
        let spec = WindowSpec::new(16, 1);
        let mut mlp = MlpForecaster::new(1).with_epochs(60);
        mlp.fit(&series[..500], spec);
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for target in 520..580 {
            let end = target;
            let window = &series[end - 16..end];
            preds.push(mlp.predict(window));
            truths.push(series[target]);
        }
        let err = mse(&preds, &truths);
        let var = {
            let m: f64 = truths.iter().sum::<f64>() / truths.len() as f64;
            truths.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / truths.len() as f64
        };
        assert!(err < 0.1 * var, "mse {err} should be well below variance {var}");
    }

    #[test]
    fn unfit_model_falls_back_to_last_value() {
        let mut mlp = MlpForecaster::new(0);
        mlp.fit(&[1.0], WindowSpec::new(8, 1)); // too short
        mlp.history = 2;
        assert_eq!(mlp.predict(&[3.0, 4.0]), 4.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let series = sine_series(200);
        let spec = WindowSpec::new(8, 1);
        let mut a = MlpForecaster::new(7).with_epochs(3);
        let mut b = MlpForecaster::new(7).with_epochs(3);
        a.fit(&series, spec);
        b.fit(&series, spec);
        let w = &series[100..108];
        assert_eq!(a.predict(w), b.predict(w));
    }

    #[test]
    fn nan_training_data_fails_closed() {
        let mut series = sine_series(200);
        for v in series.iter_mut().skip(50).take(30) {
            *v = f64::NAN;
        }
        let mut mlp = MlpForecaster::new(0).with_epochs(4);
        mlp.guard.max_retries = 1;
        mlp.fit(&series, WindowSpec::new(8, 1));
        assert!(mlp.health().is_failed(), "health: {:?}", mlp.health());
        // Failed models drop their weights and serve the naive fallback.
        assert_eq!(mlp.predict(&[1.0; 8]), 1.0);
        assert_eq!(mlp.storage_bytes(), 0);
    }

    #[test]
    fn divergent_learning_rate_never_yields_non_finite_model() {
        let series = sine_series(200);
        let mut mlp = MlpForecaster::new(0).with_epochs(4);
        mlp.lr = f64::INFINITY;
        mlp.guard.max_retries = 1;
        mlp.fit(&series, WindowSpec::new(8, 1));
        assert!(mlp.health().is_degraded(), "health: {:?}", mlp.health());
        assert!(mlp.predict(&series[100..108]).is_finite());
    }

    #[test]
    fn refit_on_clean_data_restores_health() {
        let series = sine_series(200);
        let mut mlp = MlpForecaster::new(0).with_epochs(2);
        mlp.lr = f64::INFINITY;
        mlp.guard.max_retries = 0;
        mlp.fit(&series, WindowSpec::new(8, 1));
        assert!(mlp.health().is_degraded());
        mlp.lr = 1e-3;
        mlp.fit(&series, WindowSpec::new(8, 1));
        assert_eq!(mlp.health(), TrainHealth::Healthy);
    }

    #[test]
    fn storage_matches_architecture() {
        let series = sine_series(100);
        let mut mlp = MlpForecaster::new(0).with_epochs(1);
        mlp.fit(&series, WindowSpec::new(30, 1));
        // 6 parameter tensors: 3 weights + 3 biases.
        let params = 30 * 32 + 32 + 32 * 16 + 16 + 16 + 1;
        assert_eq!(mlp.storage_bytes(), 12 + 6 * 8 + params * 8);
    }
}
