//! Ensembles: QB5000 (equal-weight LR+LSTM+KR) and DBAugur's
//! time-sensitive ensemble of WFGAN, TCN and MLP (paper Sec. V-C).
//!
//! The time-sensitive ensemble maintains, per member `i`, the
//! *forecasting distance* of Eqn. 7 — `Γ(e(i), t) = Σ_j δ^{t−j} e_j(i)`,
//! an exponentially attenuated sum of squared errors — updated
//! incrementally as `Γ ← δ·Γ + e_t`. Ensemble weights follow Eqn. 8:
//! `w_t(i) = (Σ_j Γ(j) − Γ(i)) / (2 Σ_j Γ(j))`, which sum to 1 and give
//! recently accurate members more say. Members train in parallel ("the
//! three models can be trained in parallel", Sec. III).

use crate::forecaster::Forecaster;
use crate::kr::KernelRegression;
use crate::lr::LinearRegression;
use crate::lstm::LstmForecaster;
use crate::mlp::MlpForecaster;
use crate::tcn::TcnForecaster;
use crate::wfgan::Wfgan;
use dbaugur_trace::WindowSpec;

/// Fit every member, in parallel when there is more than one.
fn fit_members(members: &mut [Box<dyn Forecaster>], train: &[f64], spec: WindowSpec) {
    if members.len() <= 1 {
        for m in members.iter_mut() {
            m.fit(train, spec);
        }
        return;
    }
    crossbeam::thread::scope(|s| {
        for m in members.iter_mut() {
            s.spawn(move |_| m.fit(train, spec));
        }
    })
    .expect("ensemble fit thread panicked");
}

/// A fixed-weight ensemble (the Fig. 7 baseline, and QB5000's mechanism).
pub struct FixedEnsemble {
    name: &'static str,
    members: Vec<Box<dyn Forecaster>>,
    weights: Vec<f64>,
}

impl FixedEnsemble {
    /// Equal-weight ensemble over `members`.
    ///
    /// # Panics
    /// Panics on an empty member list.
    pub fn equal(name: &'static str, members: Vec<Box<dyn Forecaster>>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let w = 1.0 / members.len() as f64;
        let weights = vec![w; members.len()];
        Self { name, members, weights }
    }

    /// Explicit weights (normalized by the caller).
    ///
    /// # Panics
    /// Panics when lengths mismatch or the list is empty.
    pub fn weighted(
        name: &'static str,
        members: Vec<Box<dyn Forecaster>>,
        weights: Vec<f64>,
    ) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        assert_eq!(members.len(), weights.len(), "one weight per member");
        Self { name, members, weights }
    }

    /// Member names (for reports).
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }
}

impl Forecaster for FixedEnsemble {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        fit_members(&mut self.members, train, spec);
    }

    fn predict(&self, window: &[f64]) -> f64 {
        self.members
            .iter()
            .zip(&self.weights)
            .map(|(m, w)| w * m.predict(window))
            .sum()
    }

    fn storage_bytes(&self) -> usize {
        self.members.iter().map(|m| m.storage_bytes()).sum()
    }
}

/// QB5000 (Ma et al., SIGMOD'18): "QB5000 makes the forecast by equally
/// averaging the results of LR, LSTM and KR."
pub struct Qb5000 {
    inner: FixedEnsemble,
}

impl Qb5000 {
    /// The paper's QB5000 configuration.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: FixedEnsemble::equal(
                "QB5000",
                vec![
                    Box::new(LinearRegression::default()),
                    Box::new(LstmForecaster::new(seed)),
                    Box::new(KernelRegression::default()),
                ],
            ),
        }
    }
}

impl Forecaster for Qb5000 {
    fn name(&self) -> &'static str {
        "QB5000"
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        self.inner.fit(train, spec);
    }

    fn predict(&self, window: &[f64]) -> f64 {
        self.inner.predict(window)
    }

    fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }
}

/// DBAugur's time-sensitive ensemble (Eqns. 7–8).
pub struct TimeSensitiveEnsemble {
    name: &'static str,
    members: Vec<Box<dyn Forecaster>>,
    /// Attenuation factor δ (paper: 0.9).
    pub delta: f64,
    /// Incrementally maintained forecasting distances Γ(e(i), t).
    gamma: Vec<f64>,
}

impl TimeSensitiveEnsemble {
    /// The DBAugur configuration: WFGAN + TCN + MLP, δ = 0.9.
    pub fn dbaugur(seed: u64) -> Self {
        Self::new(
            "DBAugur",
            vec![
                Box::new(Wfgan::new(seed)),
                Box::new(TcnForecaster::new(seed.wrapping_add(1))),
                Box::new(MlpForecaster::new(seed.wrapping_add(2))),
            ],
            0.9,
        )
    }

    /// A time-sensitive ensemble over arbitrary members.
    ///
    /// # Panics
    /// Panics on an empty member list or δ outside `(0, 1]`.
    pub fn new(name: &'static str, members: Vec<Box<dyn Forecaster>>, delta: f64) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        assert!(delta > 0.0 && delta <= 1.0, "attenuation must be in (0, 1]");
        let gamma = vec![0.0; members.len()];
        Self { name, members, delta, gamma }
    }

    /// Current ensemble weights (Eqn. 8); uniform while no error has been
    /// observed.
    pub fn weights(&self) -> Vec<f64> {
        let total: f64 = self.gamma.iter().sum();
        let k = self.members.len() as f64;
        if total <= 0.0 {
            return vec![1.0 / k; self.members.len()];
        }
        // For k members the normalization is (k−1)·ΣΓ so weights sum to
        // 1; the paper's 2·ΣΓ is the k = 3 case.
        self.gamma.iter().map(|g| (total - g) / ((k - 1.0) * total)).collect()
    }

    /// Current forecasting distances Γ (for inspection).
    pub fn forecasting_distances(&self) -> &[f64] {
        &self.gamma
    }

    /// Member names (for reports).
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }

    /// Per-member predictions (for the harness's diagnostics).
    pub fn member_predictions(&self, window: &[f64]) -> Vec<f64> {
        self.members.iter().map(|m| m.predict(window)).collect()
    }
}

impl Forecaster for TimeSensitiveEnsemble {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        fit_members(&mut self.members, train, spec);
        self.gamma.iter_mut().for_each(|g| *g = 0.0);
    }

    fn predict(&self, window: &[f64]) -> f64 {
        let weights = self.weights();
        self.members
            .iter()
            .zip(&weights)
            .map(|(m, w)| w * m.predict(window))
            .sum()
    }

    fn observe(&mut self, window: &[f64], actual: f64) {
        for (m, g) in self.members.iter().zip(&mut self.gamma) {
            let e = {
                let p = m.predict(window);
                (actual - p) * (actual - p)
            };
            *g = self.delta * *g + e;
        }
    }

    fn storage_bytes(&self) -> usize {
        self.members.iter().map(|m| m.storage_bytes()).sum()
    }
}

/// Combine pre-recorded member prediction series with the time-sensitive
/// weighting (Eqns. 7–8), causally: the weights used at step `t` depend
/// only on errors at steps `< t`. Returns the ensemble prediction series.
///
/// This mirrors [`TimeSensitiveEnsemble`]'s online behaviour but operates
/// on recorded series, which lets the Fig. 7 harness compare dynamic and
/// fixed weighting over *identical* fitted members without refitting.
///
/// # Panics
/// Panics when series lengths disagree or `member_preds` is empty.
pub fn combine_time_sensitive(member_preds: &[Vec<f64>], targets: &[f64], delta: f64) -> Vec<f64> {
    assert!(!member_preds.is_empty(), "need at least one member series");
    assert!(
        member_preds.iter().all(|p| p.len() == targets.len()),
        "member series must align with targets"
    );
    let k = member_preds.len();
    let mut gamma = vec![0.0f64; k];
    let mut out = Vec::with_capacity(targets.len());
    for t in 0..targets.len() {
        let total: f64 = gamma.iter().sum();
        let weights: Vec<f64> = if total <= 0.0 {
            vec![1.0 / k as f64; k]
        } else {
            gamma.iter().map(|g| (total - g) / ((k as f64 - 1.0) * total)).collect()
        };
        let pred: f64 = member_preds.iter().zip(&weights).map(|(p, w)| w * p[t]).sum();
        out.push(pred);
        for (i, g) in gamma.iter_mut().enumerate() {
            let e = targets[t] - member_preds[i][t];
            *g = delta * *g + e * e;
        }
    }
    out
}

/// Equal-weight combination of recorded member prediction series (the
/// fixed-weight baseline of Fig. 7).
///
/// # Panics
/// Panics when series lengths disagree or `member_preds` is empty.
pub fn combine_fixed(member_preds: &[Vec<f64>]) -> Vec<f64> {
    assert!(!member_preds.is_empty(), "need at least one member series");
    let k = member_preds.len() as f64;
    let n = member_preds[0].len();
    assert!(member_preds.iter().all(|p| p.len() == n), "member series must align");
    (0..n).map(|t| member_preds.iter().map(|p| p[t]).sum::<f64>() / k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Naive;

    /// A stub with a fixed prediction, for weight arithmetic tests.
    struct Constant(f64);

    impl Forecaster for Constant {
        fn name(&self) -> &'static str {
            "const"
        }
        fn fit(&mut self, _: &[f64], _: WindowSpec) {}
        fn predict(&self, _: &[f64]) -> f64 {
            self.0
        }
    }

    #[test]
    fn equal_ensemble_averages() {
        let e = FixedEnsemble::equal(
            "avg",
            vec![Box::new(Constant(1.0)), Box::new(Constant(3.0))],
        );
        assert_eq!(e.predict(&[0.0]), 2.0);
    }

    #[test]
    fn weighted_ensemble_respects_weights() {
        let e = FixedEnsemble::weighted(
            "w",
            vec![Box::new(Constant(10.0)), Box::new(Constant(0.0))],
            vec![0.9, 0.1],
        );
        assert!((e.predict(&[0.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn initial_weights_are_uniform() {
        let e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Constant(0.0)), Box::new(Constant(0.0)), Box::new(Constant(0.0))],
            0.9,
        );
        assert_eq!(e.weights(), vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn weights_sum_to_one_and_favor_accurate_member() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![
                Box::new(Constant(10.0)), // perfect (actual will be 10)
                Box::new(Constant(0.0)),  // bad
                Box::new(Constant(5.0)),  // mediocre
            ],
            0.9,
        );
        for _ in 0..5 {
            e.observe(&[0.0], 10.0);
        }
        let w = e.weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[2] && w[2] > w[1], "weights {w:?} should order by accuracy");
        // The perfect member has Γ = 0 ⇒ maximal weight 1/(k−1).
        assert!((w[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn attenuation_forgets_old_errors() {
        let mut fast = TimeSensitiveEnsemble::new(
            "f",
            vec![Box::new(Constant(0.0)), Box::new(Constant(1.0))],
            0.5,
        );
        let mut slow = TimeSensitiveEnsemble::new(
            "s",
            vec![Box::new(Constant(0.0)), Box::new(Constant(1.0))],
            0.99,
        );
        // Phase 1: member 0 is right (actual 0).
        for _ in 0..20 {
            fast.observe(&[0.0], 0.0);
            slow.observe(&[0.0], 0.0);
        }
        // Phase 2: regime change, member 1 is right (actual 1).
        for _ in 0..5 {
            fast.observe(&[0.0], 1.0);
            slow.observe(&[0.0], 1.0);
        }
        let wf = fast.weights();
        let ws = slow.weights();
        assert!(
            wf[1] > ws[1],
            "fast attenuation {wf:?} should adapt to the regime change faster than {ws:?}"
        );
    }

    #[test]
    fn predict_uses_dynamic_weights() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Constant(10.0)), Box::new(Constant(0.0))],
            0.9,
        );
        // Before observations: (10 + 0) / 2 = 5.
        assert_eq!(e.predict(&[0.0]), 5.0);
        // Teach it member 0 is right.
        for _ in 0..10 {
            e.observe(&[0.0], 10.0);
        }
        // Member 0's Γ is 0 ⇒ weight 1 ⇒ prediction 10.
        assert!((e.predict(&[0.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fit_resets_error_history() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Naive), Box::new(Constant(0.0))],
            0.9,
        );
        e.observe(&[1.0], 100.0);
        assert!(e.forecasting_distances().iter().any(|&g| g > 0.0));
        e.fit(&[1.0, 2.0, 3.0, 4.0, 5.0], WindowSpec::new(2, 1));
        assert!(e.forecasting_distances().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn qb5000_builds_and_predicts() {
        let series: Vec<f64> = (0..120).map(|i| (i % 10) as f64).collect();
        let mut q = Qb5000::new(0);
        // Keep the LSTM cheap in tests.
        q.inner = FixedEnsemble::equal(
            "QB5000",
            vec![
                Box::new(LinearRegression::default()),
                Box::new(LstmForecaster::new(0).with_epochs(2)),
                Box::new(KernelRegression::default()),
            ],
        );
        q.fit(&series, WindowSpec::new(10, 1));
        let p = q.predict(&series[100..110]);
        assert!(p.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_panics() {
        FixedEnsemble::equal("x", vec![]);
    }

    #[test]
    fn combine_fixed_averages_series() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        assert_eq!(combine_fixed(&[a, b]), vec![2.0, 3.0]);
    }

    #[test]
    fn combine_time_sensitive_matches_online_ensemble() {
        // The offline combiner must reproduce the online ensemble's
        // predictions for the same member outputs and targets.
        let preds = vec![vec![10.0; 6], vec![0.0; 6], vec![5.0; 6]];
        let targets = vec![10.0, 10.0, 9.0, 10.0, 11.0, 10.0];
        let offline = combine_time_sensitive(&preds, &targets, 0.9);

        let mut online = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Constant(10.0)), Box::new(Constant(0.0)), Box::new(Constant(5.0))],
            0.9,
        );
        let mut online_preds = Vec::new();
        for &target in &targets {
            online_preds.push(online.predict(&[0.0]));
            online.observe(&[0.0], target);
        }
        for (a, b) in offline.iter().zip(&online_preds) {
            assert!((a - b).abs() < 1e-12, "offline {a} vs online {b}");
        }
    }

    #[test]
    fn combine_time_sensitive_is_causal_first_step_uniform() {
        let preds = vec![vec![4.0, 4.0], vec![0.0, 0.0]];
        let out = combine_time_sensitive(&preds, &[4.0, 4.0], 0.9);
        assert_eq!(out[0], 2.0, "no information at step 0 -> uniform");
        assert!(out[1] > 3.9, "step 1 should lean on the accurate member");
    }

    #[test]
    #[should_panic(expected = "attenuation")]
    fn bad_delta_panics() {
        TimeSensitiveEnsemble::new("x", vec![Box::new(Naive)], 0.0);
    }
}
