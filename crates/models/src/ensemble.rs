//! Ensembles: QB5000 (equal-weight LR+LSTM+KR) and DBAugur's
//! time-sensitive ensemble of WFGAN, TCN and MLP (paper Sec. V-C).
//!
//! The time-sensitive ensemble maintains, per member `i`, the
//! *forecasting distance* of Eqn. 7 — `Γ(e(i), t) = Σ_j δ^{t−j} e_j(i)`,
//! an exponentially attenuated sum of squared errors — updated
//! incrementally as `Γ ← δ·Γ + e_t`. Ensemble weights follow Eqn. 8:
//! `w_t(i) = (Σ_j Γ(j) − Γ(i)) / (2 Σ_j Γ(j))`, which sum to 1 and give
//! recently accurate members more say. Members train in parallel ("the
//! three models can be trained in parallel", Sec. III).
//!
//! # Degradation policy
//!
//! The time-sensitive ensemble tolerates member failure instead of
//! propagating it:
//!
//! * a member whose `fit` panics, or whose [`Forecaster::health`]
//!   reports a failed guarded-training run, is **quarantined** — its
//!   dynamic weight is zeroed and redistributed over the active members;
//! * a member that produces a non-finite prediction during `observe` is
//!   quarantined at runtime (non-finite predictions during `predict`
//!   are skipped per call without permanent quarantine);
//! * when every member is out, the ensemble serves its always-fitted
//!   fallback floor (a [`SeasonalNaive`] by default).
//!
//! Quarantine state resets on the next `fit`.

use crate::forecaster::Forecaster;
use crate::guard::TrainHealth;
use crate::kr::KernelRegression;
use crate::lr::LinearRegression;
use crate::lstm::LstmForecaster;
use crate::mlp::MlpForecaster;
use crate::seasonal::SeasonalNaive;
use crate::tcn::TcnForecaster;
use crate::wfgan::Wfgan;
use dbaugur_exec::{Deadline, Executor, TaskError};
use dbaugur_trace::WindowSpec;
use std::borrow::Cow;
use std::sync::Arc;

/// Fit every member through the bounded executor ("the three models
/// can be trained in parallel", Sec. III) instead of spawning one OS
/// thread per member. Panics are caught per member; the returned
/// vector holds the panic message for each member whose `fit` did not
/// complete (`None` = fitted cleanly). Each member trains with its own
/// pre-seeded RNG state, so results do not depend on the worker count.
fn fit_members(
    members: &mut [Box<dyn Forecaster>],
    train: &[f64],
    spec: WindowSpec,
    exec: &Executor,
) -> Vec<Option<String>> {
    exec.try_map_mut(members, |_, m| m.fit(train, spec))
        .into_iter()
        .map(|outcome| outcome.err())
        .collect()
}

/// Deadline-governed variant of [`fit_members`]: members whose task was
/// still queued at expiry are skipped (left unfitted) and report
/// [`TaskError::Expired`]; members already training finish normally.
fn fit_members_governed(
    members: &mut [Box<dyn Forecaster>],
    train: &[f64],
    spec: WindowSpec,
    exec: &Executor,
    deadline: &Deadline,
) -> Vec<Option<TaskError>> {
    exec.try_map_mut_deadline(members, deadline, |_, m| m.fit(train, spec))
        .into_iter()
        .map(|outcome| outcome.err())
        .collect()
}

/// A fixed-weight ensemble (the Fig. 7 baseline, and QB5000's mechanism).
pub struct FixedEnsemble {
    name: &'static str,
    members: Vec<Box<dyn Forecaster>>,
    weights: Vec<f64>,
    exec: Arc<Executor>,
}

impl FixedEnsemble {
    /// Equal-weight ensemble over `members`.
    ///
    /// # Panics
    /// Panics on an empty member list.
    pub fn equal(name: &'static str, members: Vec<Box<dyn Forecaster>>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let w = 1.0 / members.len() as f64;
        let weights = vec![w; members.len()];
        Self { name, members, weights, exec: Executor::global() }
    }

    /// Explicit weights (normalized by the caller).
    ///
    /// # Panics
    /// Panics when lengths mismatch or the list is empty.
    pub fn weighted(
        name: &'static str,
        members: Vec<Box<dyn Forecaster>>,
        weights: Vec<f64>,
    ) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        assert_eq!(members.len(), weights.len(), "one weight per member");
        Self { name, members, weights, exec: Executor::global() }
    }

    /// Route member training through `exec` instead of the process-wide
    /// shared pool.
    pub fn set_executor(&mut self, exec: Arc<Executor>) {
        self.exec = exec;
    }

    /// Member names (for reports).
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }
}

impl Forecaster for FixedEnsemble {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        // Fixed-weight baselines keep fail-fast semantics: with static
        // weights there is no principled way to reassign a dead member's
        // share, so a member panic propagates (with a better message).
        let outcomes = fit_members(&mut self.members, train, spec, &self.exec);
        for (m, outcome) in self.members.iter().zip(outcomes) {
            if let Some(msg) = outcome {
                panic!("{} member {} panicked during fit: {msg}", self.name, m.name());
            }
        }
    }

    fn predict(&self, window: &[f64]) -> f64 {
        self.members
            .iter()
            .zip(&self.weights)
            .map(|(m, w)| w * m.predict(window))
            .sum()
    }

    fn storage_bytes(&self) -> usize {
        self.members.iter().map(|m| m.storage_bytes()).sum()
    }
}

/// QB5000 (Ma et al., SIGMOD'18): "QB5000 makes the forecast by equally
/// averaging the results of LR, LSTM and KR."
pub struct Qb5000 {
    inner: FixedEnsemble,
}

impl Qb5000 {
    /// The paper's QB5000 configuration.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: FixedEnsemble::equal(
                "QB5000",
                vec![
                    Box::new(LinearRegression::default()),
                    Box::new(LstmForecaster::new(seed)),
                    Box::new(KernelRegression::default()),
                ],
            ),
        }
    }
}

impl Forecaster for Qb5000 {
    fn name(&self) -> &'static str {
        "QB5000"
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        self.inner.fit(train, spec);
    }

    fn predict(&self, window: &[f64]) -> f64 {
        self.inner.predict(window)
    }

    fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }
}

/// One member's status in a [`TimeSensitiveEnsemble`] report.
#[derive(Debug, Clone)]
pub struct MemberState {
    /// Member display name.
    pub name: &'static str,
    /// Guarded-training outcome of the last fit.
    pub health: TrainHealth,
    /// Whether the member is excluded from weighting.
    pub quarantined: bool,
    /// Human-readable quarantine cause, when quarantined.
    pub reason: Option<String>,
}

/// The dynamic state of a [`TimeSensitiveEnsemble`] captured for a
/// durable checkpoint (see [`TimeSensitiveEnsemble::export_snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleSnapshot {
    /// Attenuation factor δ at capture time.
    pub delta: f64,
    /// Fitted history length (0 = never fitted).
    pub history: usize,
    /// Forecasting distances Γ, aligned with the member roster.
    pub gamma: Vec<f64>,
    /// Quarantine flags, aligned with the member roster.
    pub quarantined: Vec<bool>,
    /// Quarantine causes, aligned with the member roster.
    pub reasons: Vec<Option<String>>,
    /// Per-member weight blobs (`None` for classical members).
    pub member_blobs: Vec<Option<Vec<u8>>>,
}

/// DBAugur's time-sensitive ensemble (Eqns. 7–8).
pub struct TimeSensitiveEnsemble {
    name: &'static str,
    members: Vec<Box<dyn Forecaster>>,
    /// Attenuation factor δ (paper: 0.9).
    pub delta: f64,
    /// Incrementally maintained forecasting distances Γ(e(i), t).
    gamma: Vec<f64>,
    /// Quarantine flags, aligned with `members`.
    quarantined: Vec<bool>,
    /// Quarantine causes, aligned with `members`.
    reasons: Vec<Option<String>>,
    /// Served when every member is quarantined (always fitted).
    fallback: Box<dyn Forecaster>,
    /// `spec.history` of the last fit; predict/observe windows are
    /// normalized to this length (0 until first fit = pass-through).
    history: usize,
    /// Pool member training fans out through (shared, bounded).
    exec: Arc<Executor>,
}

impl TimeSensitiveEnsemble {
    /// The DBAugur configuration: WFGAN + TCN + MLP, δ = 0.9.
    pub fn dbaugur(seed: u64) -> Self {
        Self::new(
            "DBAugur",
            vec![
                Box::new(Wfgan::new(seed)),
                Box::new(TcnForecaster::new(seed.wrapping_add(1))),
                Box::new(MlpForecaster::new(seed.wrapping_add(2))),
            ],
            0.9,
        )
    }

    /// A time-sensitive ensemble over arbitrary members.
    ///
    /// # Panics
    /// Panics on an empty member list or δ outside `(0, 1]`.
    pub fn new(name: &'static str, members: Vec<Box<dyn Forecaster>>, delta: f64) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        assert!(delta > 0.0 && delta <= 1.0, "attenuation must be in (0, 1]");
        let n = members.len();
        Self {
            name,
            members,
            delta,
            gamma: vec![0.0; n],
            quarantined: vec![false; n],
            reasons: vec![None; n],
            // Season 1 degrades to last-value until a caller supplies a
            // real seasonality (see `set_fallback`).
            fallback: Box::new(SeasonalNaive::new(1)),
            history: 0,
            exec: Executor::global(),
        }
    }

    /// Route member training through `exec` instead of the process-wide
    /// shared pool (the pipeline passes its own bounded pool down).
    pub fn set_executor(&mut self, exec: Arc<Executor>) {
        self.exec = exec;
    }

    /// Replace the all-members-down fallback floor (e.g. a
    /// [`SeasonalNaive`] with the trace's daily season). The fallback is
    /// (re)fitted on the next `fit`.
    pub fn set_fallback(&mut self, fallback: Box<dyn Forecaster>) {
        self.fallback = fallback;
    }

    /// Name of the fallback floor model.
    pub fn fallback_name(&self) -> &'static str {
        self.fallback.name()
    }

    /// Current ensemble weights (Eqn. 8) over the *active* members;
    /// quarantined members get weight 0, uniform while no error has been
    /// observed.
    pub fn weights(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.members.len()];
        let active: Vec<usize> = (0..self.members.len())
            .filter(|&i| !self.quarantined[i])
            .collect();
        match active.len() {
            0 => out,
            1 => {
                out[active[0]] = 1.0;
                out
            }
            k => {
                let total: f64 = active.iter().map(|&i| self.gamma[i]).sum();
                if total <= 0.0 {
                    for &i in &active {
                        out[i] = 1.0 / k as f64;
                    }
                } else {
                    // For k members the normalization is (k−1)·ΣΓ so
                    // weights sum to 1; the paper's 2·ΣΓ is the k = 3
                    // case.
                    for &i in &active {
                        out[i] = (total - self.gamma[i]) / ((k as f64 - 1.0) * total);
                    }
                }
                out
            }
        }
    }

    /// Current forecasting distances Γ (for inspection).
    pub fn forecasting_distances(&self) -> &[f64] {
        &self.gamma
    }

    /// Member names (for reports).
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }

    /// Per-member predictions (for the harness's diagnostics).
    pub fn member_predictions(&self, window: &[f64]) -> Vec<f64> {
        let w = self.adapt_window(window);
        self.members.iter().map(|m| m.predict(&w)).collect()
    }

    /// Per-member health/quarantine snapshot.
    pub fn member_states(&self) -> Vec<MemberState> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, m)| MemberState {
                name: m.name(),
                health: m.health(),
                quarantined: self.quarantined[i],
                reason: self.reasons[i].clone(),
            })
            .collect()
    }

    /// Members still contributing to the forecast.
    pub fn active_count(&self) -> usize {
        self.quarantined.iter().filter(|&&q| !q).count()
    }

    /// Members excluded from the forecast.
    pub fn quarantined_count(&self) -> usize {
        self.members.len() - self.active_count()
    }

    /// True when any member is quarantined or reported degraded training.
    pub fn is_degraded(&self) -> bool {
        self.quarantined.iter().any(|&q| q)
            || self.members.iter().any(|m| m.health().is_degraded())
    }

    /// Exclude member `idx` from weighting until the next `fit`.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds.
    pub fn quarantine_member(&mut self, idx: usize, reason: impl Into<String>) {
        self.quarantined[idx] = true;
        if self.reasons[idx].is_none() {
            self.reasons[idx] = Some(reason.into());
        }
    }

    /// Capture the ensemble's dynamic state — member weights (for
    /// neural members), forecasting distances, quarantine flags and the
    /// fitted history length — for a durable checkpoint.
    ///
    /// Classical members (no persistable parameters) export `None` and
    /// are expected to be refitted deterministically before
    /// [`import_snapshot`] restores the dynamic state on top.
    ///
    /// [`import_snapshot`]: TimeSensitiveEnsemble::import_snapshot
    pub fn export_snapshot(&mut self) -> EnsembleSnapshot {
        EnsembleSnapshot {
            delta: self.delta,
            history: self.history,
            gamma: self.gamma.clone(),
            quarantined: self.quarantined.clone(),
            reasons: self.reasons.clone(),
            member_blobs: self.members.iter_mut().map(|m| m.export_state()).collect(),
        }
    }

    /// Restore a snapshot into an ensemble with the same member roster
    /// that has been fitted once (so member networks exist with the
    /// right shapes). Members whose saved weights fail to import are
    /// quarantined rather than left silently wrong. Returns the number
    /// of members whose weights were restored from bytes.
    ///
    /// # Errors
    /// Fails fast when the member count differs — that is a different
    /// ensemble, not a restorable one.
    pub fn import_snapshot(&mut self, snap: &EnsembleSnapshot) -> Result<usize, String> {
        let n = self.members.len();
        if snap.member_blobs.len() != n
            || snap.gamma.len() != n
            || snap.quarantined.len() != n
            || snap.reasons.len() != n
        {
            return Err(format!(
                "snapshot shape mismatch: {} members saved, {} present",
                snap.member_blobs.len(),
                n
            ));
        }
        self.delta = snap.delta;
        self.history = snap.history;
        self.gamma = snap.gamma.clone();
        self.quarantined = snap.quarantined.clone();
        self.reasons = snap.reasons.clone();
        let mut restored = 0;
        for (i, blob) in snap.member_blobs.iter().enumerate() {
            if let Some(bytes) = blob {
                if self.members[i].import_state(bytes) {
                    restored += 1;
                } else {
                    self.quarantine_member(i, "saved weights failed to import");
                }
            }
        }
        Ok(restored)
    }

    /// Deadline-governed fit: members whose training has not started by
    /// expiry are skipped and quarantined ("deadline expired"), so the
    /// ensemble degrades to whatever subset did train — or, with every
    /// member out, to the fallback floor, which is fitted *before* the
    /// member fan-out precisely so it survives a total expiry. Returns
    /// the number of members skipped at the deadline.
    ///
    /// A skipped member keeps its previous parameters (it was never
    /// touched); the quarantine flag is what keeps those stale weights
    /// out of the forecast until the next successful fit.
    pub fn fit_governed(&mut self, train: &[f64], spec: WindowSpec, deadline: &Deadline) -> usize {
        self.history = spec.history;
        self.fallback.fit(train, spec);
        let outcomes = fit_members_governed(&mut self.members, train, spec, &self.exec, deadline);
        self.gamma.iter_mut().for_each(|g| *g = 0.0);
        self.quarantined.iter_mut().for_each(|q| *q = false);
        self.reasons.iter_mut().for_each(|r| *r = None);
        let mut expired = 0;
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Some(TaskError::Expired) => {
                    expired += 1;
                    self.quarantine_member(i, "deadline expired before training");
                }
                Some(TaskError::Panicked(msg)) => {
                    self.quarantine_member(i, format!("training panicked: {msg}"));
                }
                None => {
                    if self.members[i].health().is_failed() {
                        let health = self.members[i].health();
                        self.quarantine_member(i, format!("training {health}"));
                    }
                }
            }
        }
        expired
    }

    /// Feed a batch of `(window, actual)` feedback pairs through the
    /// recursive Eqn. 7 update in one member-major pass.
    ///
    /// Weights (Eqn. 8) are derived from γ on demand, so after this call
    /// [`weights`] already reflects every observation — no refit needed.
    /// Streaming ingest uses this to absorb a group-committed batch with
    /// one [`Forecaster::predict_batch`] forward pass per member instead
    /// of `batch × members` single-window calls. The resulting γ are
    /// bitwise-identical to a loop of [`Forecaster::observe`] calls: γᵢ
    /// depends only on member `i`'s own predictions, members are frozen
    /// between fits, and quarantine decisions replay in the same order.
    ///
    /// [`weights`]: TimeSensitiveEnsemble::weights
    pub fn observe_batch(&mut self, windows: &[&[f64]], actuals: &[f64]) {
        assert_eq!(windows.len(), actuals.len(), "one actual per window");
        if windows.is_empty() {
            return;
        }
        let adapted: Vec<Cow<'_, [f64]>> =
            windows.iter().map(|w| self.adapt_window(w)).collect();
        let refs: Vec<&[f64]> = adapted.iter().map(|w| w.as_ref()).collect();
        for i in 0..self.members.len() {
            if self.quarantined[i] {
                continue;
            }
            let preds = self.members[i].predict_batch(&refs);
            for (t, &p) in preds.iter().enumerate() {
                if !actuals[t].is_finite() {
                    // Poisoned feedback must not corrupt the error
                    // histories (same rule as `observe`).
                    continue;
                }
                if !p.is_finite() {
                    self.quarantine_member(i, format!("non-finite prediction {p}"));
                    break;
                }
                let e = (actuals[t] - p) * (actuals[t] - p);
                let g = self.delta * self.gamma[i] + e;
                if g.is_finite() {
                    self.gamma[i] = g;
                } else {
                    self.quarantine_member(i, format!("non-finite forecasting distance {g}"));
                    break;
                }
            }
        }
    }

    /// Normalize a window to the fitted history length so member models
    /// (which assert exact window length) never see a mismatched slice:
    /// longer windows keep their most recent values, shorter ones are
    /// left-padded with their first value.
    fn adapt_window<'a>(&self, window: &'a [f64]) -> Cow<'a, [f64]> {
        if self.history == 0 || window.len() == self.history {
            Cow::Borrowed(window)
        } else if window.len() > self.history {
            Cow::Borrowed(&window[window.len() - self.history..])
        } else {
            let pad = window.first().copied().unwrap_or(0.0);
            let mut w = vec![pad; self.history - window.len()];
            w.extend_from_slice(window);
            Cow::Owned(w)
        }
    }
}

impl Forecaster for TimeSensitiveEnsemble {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        // An untimed deadline never expires, so this is the historical
        // unconditional fit.
        let skipped = self.fit_governed(train, spec, &Deadline::none());
        debug_assert_eq!(skipped, 0);
    }

    fn predict(&self, window: &[f64]) -> f64 {
        let window = self.adapt_window(window);
        let weights = self.weights();
        let mut acc = 0.0;
        let mut wsum = 0.0;
        for (i, m) in self.members.iter().enumerate() {
            if self.quarantined[i] {
                continue;
            }
            let p = m.predict(&window);
            // A transiently non-finite member is skipped for this call;
            // `observe` is where it gets quarantined for good.
            if p.is_finite() {
                acc += weights[i] * p;
                wsum += weights[i];
            }
        }
        if wsum > 0.0 {
            return acc / wsum;
        }
        // Every member is out: serve the seasonal-naive floor. Before
        // the first fit the fallback has no spec, so skip straight to
        // the last-value floor.
        let p = if self.history == 0 { f64::NAN } else { self.fallback.predict(&window) };
        if p.is_finite() {
            p
        } else {
            window.last().copied().unwrap_or(0.0)
        }
    }

    fn predict_batch(&self, windows: &[&[f64]]) -> Vec<f64> {
        if windows.is_empty() {
            return Vec::new();
        }
        let adapted: Vec<Cow<[f64]>> = windows.iter().map(|w| self.adapt_window(w)).collect();
        let refs: Vec<&[f64]> = adapted.iter().map(|w| w.as_ref()).collect();
        let weights = self.weights();
        // Each live member answers the whole batch in one forward pass;
        // the per-window mixing then walks members in the same order as
        // `predict`, so every output is bitwise-identical to a loop of
        // single-window calls.
        let member_preds: Vec<Option<Vec<f64>>> = self
            .members
            .iter()
            .enumerate()
            .map(|(i, m)| (!self.quarantined[i]).then(|| m.predict_batch(&refs)))
            .collect();
        (0..windows.len())
            .map(|t| {
                let mut acc = 0.0;
                let mut wsum = 0.0;
                for (i, preds) in member_preds.iter().enumerate() {
                    if let Some(preds) = preds {
                        let p = preds[t];
                        if p.is_finite() {
                            acc += weights[i] * p;
                            wsum += weights[i];
                        }
                    }
                }
                if wsum > 0.0 {
                    return acc / wsum;
                }
                let p = if self.history == 0 {
                    f64::NAN
                } else {
                    self.fallback.predict(refs[t])
                };
                if p.is_finite() {
                    p
                } else {
                    refs[t].last().copied().unwrap_or(0.0)
                }
            })
            .collect()
    }

    fn observe(&mut self, window: &[f64], actual: f64) {
        if !actual.is_finite() {
            // Poisoned feedback must not corrupt the error histories.
            return;
        }
        let window = self.adapt_window(window).into_owned();
        for i in 0..self.members.len() {
            if self.quarantined[i] {
                continue;
            }
            let p = self.members[i].predict(&window);
            if !p.is_finite() {
                self.quarantine_member(i, format!("non-finite prediction {p}"));
                continue;
            }
            let e = (actual - p) * (actual - p);
            let g = self.delta * self.gamma[i] + e;
            if g.is_finite() {
                self.gamma[i] = g;
            } else {
                self.quarantine_member(i, format!("non-finite forecasting distance {g}"));
            }
        }
    }

    fn storage_bytes(&self) -> usize {
        self.members.iter().map(|m| m.storage_bytes()).sum()
    }
}

/// Combine pre-recorded member prediction series with the time-sensitive
/// weighting (Eqns. 7–8), causally: the weights used at step `t` depend
/// only on errors at steps `< t`. Returns the ensemble prediction series.
///
/// This mirrors [`TimeSensitiveEnsemble`]'s online behaviour but operates
/// on recorded series, which lets the Fig. 7 harness compare dynamic and
/// fixed weighting over *identical* fitted members without refitting.
///
/// # Panics
/// Panics when series lengths disagree or `member_preds` is empty.
pub fn combine_time_sensitive(member_preds: &[Vec<f64>], targets: &[f64], delta: f64) -> Vec<f64> {
    assert!(!member_preds.is_empty(), "need at least one member series");
    assert!(
        member_preds.iter().all(|p| p.len() == targets.len()),
        "member series must align with targets"
    );
    let k = member_preds.len();
    let mut gamma = vec![0.0f64; k];
    let mut out = Vec::with_capacity(targets.len());
    for t in 0..targets.len() {
        let total: f64 = gamma.iter().sum();
        let weights: Vec<f64> = if total <= 0.0 {
            vec![1.0 / k as f64; k]
        } else {
            gamma.iter().map(|g| (total - g) / ((k as f64 - 1.0) * total)).collect()
        };
        let pred: f64 = member_preds.iter().zip(&weights).map(|(p, w)| w * p[t]).sum();
        out.push(pred);
        for (i, g) in gamma.iter_mut().enumerate() {
            let e = targets[t] - member_preds[i][t];
            *g = delta * *g + e * e;
        }
    }
    out
}

/// Equal-weight combination of recorded member prediction series (the
/// fixed-weight baseline of Fig. 7).
///
/// # Panics
/// Panics when series lengths disagree or `member_preds` is empty.
pub fn combine_fixed(member_preds: &[Vec<f64>]) -> Vec<f64> {
    assert!(!member_preds.is_empty(), "need at least one member series");
    let k = member_preds.len() as f64;
    let n = member_preds[0].len();
    assert!(member_preds.iter().all(|p| p.len() == n), "member series must align");
    (0..n).map(|t| member_preds.iter().map(|p| p[t]).sum::<f64>() / k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Naive;

    /// A stub with a fixed prediction, for weight arithmetic tests.
    struct Constant(f64);

    impl Forecaster for Constant {
        fn name(&self) -> &'static str {
            "const"
        }
        fn fit(&mut self, _: &[f64], _: WindowSpec) {}
        fn predict(&self, _: &[f64]) -> f64 {
            self.0
        }
    }

    #[test]
    fn equal_ensemble_averages() {
        let e = FixedEnsemble::equal(
            "avg",
            vec![Box::new(Constant(1.0)), Box::new(Constant(3.0))],
        );
        assert_eq!(e.predict(&[0.0]), 2.0);
    }

    #[test]
    fn weighted_ensemble_respects_weights() {
        let e = FixedEnsemble::weighted(
            "w",
            vec![Box::new(Constant(10.0)), Box::new(Constant(0.0))],
            vec![0.9, 0.1],
        );
        assert!((e.predict(&[0.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn initial_weights_are_uniform() {
        let e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Constant(0.0)), Box::new(Constant(0.0)), Box::new(Constant(0.0))],
            0.9,
        );
        assert_eq!(e.weights(), vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn weights_sum_to_one_and_favor_accurate_member() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![
                Box::new(Constant(10.0)), // perfect (actual will be 10)
                Box::new(Constant(0.0)),  // bad
                Box::new(Constant(5.0)),  // mediocre
            ],
            0.9,
        );
        for _ in 0..5 {
            e.observe(&[0.0], 10.0);
        }
        let w = e.weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[2] && w[2] > w[1], "weights {w:?} should order by accuracy");
        // The perfect member has Γ = 0 ⇒ maximal weight 1/(k−1).
        assert!((w[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn attenuation_forgets_old_errors() {
        let mut fast = TimeSensitiveEnsemble::new(
            "f",
            vec![Box::new(Constant(0.0)), Box::new(Constant(1.0))],
            0.5,
        );
        let mut slow = TimeSensitiveEnsemble::new(
            "s",
            vec![Box::new(Constant(0.0)), Box::new(Constant(1.0))],
            0.99,
        );
        // Phase 1: member 0 is right (actual 0).
        for _ in 0..20 {
            fast.observe(&[0.0], 0.0);
            slow.observe(&[0.0], 0.0);
        }
        // Phase 2: regime change, member 1 is right (actual 1).
        for _ in 0..5 {
            fast.observe(&[0.0], 1.0);
            slow.observe(&[0.0], 1.0);
        }
        let wf = fast.weights();
        let ws = slow.weights();
        assert!(
            wf[1] > ws[1],
            "fast attenuation {wf:?} should adapt to the regime change faster than {ws:?}"
        );
    }

    #[test]
    fn predict_uses_dynamic_weights() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Constant(10.0)), Box::new(Constant(0.0))],
            0.9,
        );
        // Before observations: (10 + 0) / 2 = 5.
        assert_eq!(e.predict(&[0.0]), 5.0);
        // Teach it member 0 is right.
        for _ in 0..10 {
            e.observe(&[0.0], 10.0);
        }
        // Member 0's Γ is 0 ⇒ weight 1 ⇒ prediction 10.
        assert!((e.predict(&[0.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fit_resets_error_history() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Naive), Box::new(Constant(0.0))],
            0.9,
        );
        e.observe(&[1.0], 100.0);
        assert!(e.forecasting_distances().iter().any(|&g| g > 0.0));
        e.fit(&[1.0, 2.0, 3.0, 4.0, 5.0], WindowSpec::new(2, 1));
        assert!(e.forecasting_distances().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn qb5000_builds_and_predicts() {
        let series: Vec<f64> = (0..120).map(|i| (i % 10) as f64).collect();
        let mut q = Qb5000::new(0);
        // Keep the LSTM cheap in tests.
        q.inner = FixedEnsemble::equal(
            "QB5000",
            vec![
                Box::new(LinearRegression::default()),
                Box::new(LstmForecaster::new(0).with_epochs(2)),
                Box::new(KernelRegression::default()),
            ],
        );
        q.fit(&series, WindowSpec::new(10, 1));
        let p = q.predict(&series[100..110]);
        assert!(p.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_panics() {
        FixedEnsemble::equal("x", vec![]);
    }

    #[test]
    fn combine_fixed_averages_series() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        assert_eq!(combine_fixed(&[a, b]), vec![2.0, 3.0]);
    }

    #[test]
    fn combine_time_sensitive_matches_online_ensemble() {
        // The offline combiner must reproduce the online ensemble's
        // predictions for the same member outputs and targets.
        let preds = vec![vec![10.0; 6], vec![0.0; 6], vec![5.0; 6]];
        let targets = vec![10.0, 10.0, 9.0, 10.0, 11.0, 10.0];
        let offline = combine_time_sensitive(&preds, &targets, 0.9);

        let mut online = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Constant(10.0)), Box::new(Constant(0.0)), Box::new(Constant(5.0))],
            0.9,
        );
        let mut online_preds = Vec::new();
        for &target in &targets {
            online_preds.push(online.predict(&[0.0]));
            online.observe(&[0.0], target);
        }
        for (a, b) in offline.iter().zip(&online_preds) {
            assert!((a - b).abs() < 1e-12, "offline {a} vs online {b}");
        }
    }

    #[test]
    fn combine_time_sensitive_is_causal_first_step_uniform() {
        let preds = vec![vec![4.0, 4.0], vec![0.0, 0.0]];
        let out = combine_time_sensitive(&preds, &[4.0, 4.0], 0.9);
        assert_eq!(out[0], 2.0, "no information at step 0 -> uniform");
        assert!(out[1] > 3.9, "step 1 should lean on the accurate member");
    }

    #[test]
    #[should_panic(expected = "attenuation")]
    fn bad_delta_panics() {
        TimeSensitiveEnsemble::new("x", vec![Box::new(Naive)], 0.0);
    }

    #[test]
    fn predict_batch_is_bitwise_identical_to_predict_loop() {
        // Real neural member (batched matmul path) + classical members,
        // with uneven error-history weights: batching must be invisible.
        let series: Vec<f64> =
            (0..240).map(|i| 50.0 + 30.0 * (i as f64 * 0.25).sin()).collect();
        let spec = WindowSpec::new(12, 1);
        let mut e = TimeSensitiveEnsemble::new(
            "batch",
            vec![
                Box::new(crate::mlp::MlpForecaster::new(3).with_epochs(4)),
                Box::new(Naive),
                Box::new(Constant(40.0)),
            ],
            0.9,
        );
        e.fit(&series[..200], spec);
        for t in 200..210 {
            e.observe(&series[t - 12..t], series[t]);
        }
        // Mixed lengths exercise the adapt_window paths too.
        let windows: Vec<&[f64]> = vec![
            &series[100..112],
            &series[50..62],
            &series[0..6],   // short: left-padded
            &series[0..40],  // long: truncated
        ];
        let batched = e.predict_batch(&windows);
        for (w, b) in windows.iter().zip(&batched) {
            assert_eq!(e.predict(w).to_bits(), b.to_bits());
        }
    }

    /// A stub whose `fit` always panics (simulated member crash).
    struct PanicOnFit;

    impl Forecaster for PanicOnFit {
        fn name(&self) -> &'static str {
            "panicker"
        }
        fn fit(&mut self, _: &[f64], _: WindowSpec) {
            panic!("injected fit failure");
        }
        fn predict(&self, _: &[f64]) -> f64 {
            999.0
        }
    }

    /// A stub that fits fine but always predicts NaN.
    struct NanPredictor;

    impl Forecaster for NanPredictor {
        fn name(&self) -> &'static str {
            "nan"
        }
        fn fit(&mut self, _: &[f64], _: WindowSpec) {}
        fn predict(&self, _: &[f64]) -> f64 {
            f64::NAN
        }
    }

    /// A stub whose guarded training always reports `Failed`.
    struct AlwaysFailed;

    impl Forecaster for AlwaysFailed {
        fn name(&self) -> &'static str {
            "failed"
        }
        fn fit(&mut self, _: &[f64], _: WindowSpec) {}
        fn predict(&self, _: &[f64]) -> f64 {
            0.0
        }
        fn health(&self) -> TrainHealth {
            TrainHealth::Failed {
                retries: 0,
                cause: crate::guard::DivergenceCause::NonFinite { epoch: 0 },
            }
        }
    }

    const TRAIN: [f64; 6] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
    const SPEC: WindowSpec = WindowSpec { history: 2, horizon: 1 };

    #[test]
    fn member_fit_panic_is_quarantined_not_propagated() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(PanicOnFit), Box::new(Constant(3.0))],
            0.9,
        );
        e.fit(&TRAIN, SPEC);
        assert_eq!(e.quarantined_count(), 1);
        assert_eq!(e.active_count(), 1);
        assert!(e.is_degraded());
        let states = e.member_states();
        assert!(states[0].quarantined);
        assert!(states[0].reason.as_deref().unwrap().contains("injected fit failure"));
        assert!(!states[1].quarantined);
        // The surviving member carries the full weight.
        assert_eq!(e.weights(), vec![0.0, 1.0]);
        assert_eq!(e.predict(&[5.0, 6.0]), 3.0);
    }

    #[test]
    fn failed_training_health_is_quarantined() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(AlwaysFailed), Box::new(Constant(7.0))],
            0.9,
        );
        e.fit(&TRAIN, SPEC);
        let states = e.member_states();
        assert!(states[0].quarantined, "states: {states:?}");
        assert_eq!(e.predict(&[5.0, 6.0]), 7.0);
    }

    #[test]
    fn all_members_out_falls_back_to_seasonal_floor() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(PanicOnFit), Box::new(AlwaysFailed)],
            0.9,
        );
        e.fit(&TRAIN, SPEC);
        assert_eq!(e.active_count(), 0);
        assert_eq!(e.fallback_name(), "SeasonalNaive");
        // Season-1 fallback degrades to last-value.
        assert_eq!(e.predict(&[5.0, 6.0]), 6.0);
        assert!(e.predict(&[5.0, 6.0]).is_finite());
    }

    #[test]
    fn non_finite_prediction_is_skipped_per_call() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(NanPredictor), Box::new(Constant(4.0))],
            0.9,
        );
        e.fit(&TRAIN, SPEC);
        // NaN member not quarantined by predict, but its share is
        // renormalized away.
        assert_eq!(e.predict(&[5.0, 6.0]), 4.0);
        assert_eq!(e.quarantined_count(), 0);
    }

    #[test]
    fn observe_quarantines_non_finite_member_for_good() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(NanPredictor), Box::new(Constant(4.0))],
            0.9,
        );
        e.fit(&TRAIN, SPEC);
        e.observe(&[5.0, 6.0], 4.0);
        assert_eq!(e.quarantined_count(), 1);
        let states = e.member_states();
        assert!(states[0].quarantined);
        assert!(states[0].reason.as_deref().unwrap().contains("non-finite prediction"));
        // Γ of the healthy member stays finite.
        assert!(e.forecasting_distances().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn non_finite_actual_does_not_corrupt_gamma() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Constant(1.0)), Box::new(Constant(2.0))],
            0.9,
        );
        e.fit(&TRAIN, SPEC);
        e.observe(&[5.0, 6.0], f64::NAN);
        assert_eq!(e.forecasting_distances(), &[0.0, 0.0]);
        assert_eq!(e.quarantined_count(), 0);
    }

    #[test]
    fn refit_clears_quarantine() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(NanPredictor), Box::new(Constant(4.0))],
            0.9,
        );
        e.fit(&TRAIN, SPEC);
        e.observe(&[5.0, 6.0], 4.0);
        assert_eq!(e.quarantined_count(), 1);
        e.fit(&TRAIN, SPEC);
        assert_eq!(e.quarantined_count(), 0);
    }

    #[test]
    fn observe_batch_is_bitwise_identical_to_sequential_observe() {
        let build = || {
            let mut e = TimeSensitiveEnsemble::new(
                "t",
                vec![Box::new(Naive) as Box<dyn Forecaster>, Box::new(Constant(3.0))],
                0.9,
            );
            e.fit(&TRAIN, SPEC);
            e
        };
        let mut seq = build();
        let mut batch = build();
        let windows: Vec<Vec<f64>> =
            (0..12).map(|t| vec![t as f64, (t as f64 * 0.7).sin() * 5.0]).collect();
        let actuals: Vec<f64> =
            (0..12).map(|t| if t == 7 { f64::NAN } else { 2.0 + (t % 3) as f64 }).collect();
        for (w, &a) in windows.iter().zip(&actuals) {
            seq.observe(w, a);
        }
        let refs: Vec<&[f64]> = windows.iter().map(|w| w.as_slice()).collect();
        batch.observe_batch(&refs, &actuals);
        assert_eq!(seq.forecasting_distances(), batch.forecasting_distances());
        assert_eq!(seq.weights(), batch.weights());
        assert_eq!(seq.quarantined_count(), batch.quarantined_count());
    }

    #[test]
    fn observe_batch_quarantines_like_the_sequential_path() {
        let build = || {
            let mut e = TimeSensitiveEnsemble::new(
                "t",
                vec![Box::new(NanPredictor) as Box<dyn Forecaster>, Box::new(Constant(4.0))],
                0.9,
            );
            e.fit(&TRAIN, SPEC);
            e
        };
        let mut seq = build();
        let mut batch = build();
        let windows = [[5.0, 6.0], [6.0, 7.0], [7.0, 8.0]];
        for w in &windows {
            seq.observe(w, 4.0);
        }
        let refs: Vec<&[f64]> = windows.iter().map(|w| w.as_slice()).collect();
        batch.observe_batch(&refs, &[4.0, 4.0, 4.0]);
        assert_eq!(seq.quarantined_count(), 1);
        assert_eq!(batch.quarantined_count(), 1);
        assert_eq!(seq.forecasting_distances(), batch.forecasting_distances());
        // An empty batch is a no-op.
        batch.observe_batch(&[], &[]);
        assert_eq!(seq.forecasting_distances(), batch.forecasting_distances());
    }

    #[test]
    fn single_active_member_gets_full_weight_without_nan() {
        // Regression: the Eqn. 8 normalization divides by (k−1)·ΣΓ,
        // which is 0/0 for a single active member with history.
        let mut e = TimeSensitiveEnsemble::new("t", vec![Box::new(Constant(2.0))], 0.9);
        e.fit(&TRAIN, SPEC);
        e.observe(&[5.0, 6.0], 4.0); // Γ > 0
        assert_eq!(e.weights(), vec![1.0]);
        assert_eq!(e.predict(&[5.0, 6.0]), 2.0);
    }

    #[test]
    fn windows_are_adapted_to_fit_history() {
        let mut e = TimeSensitiveEnsemble::new("t", vec![Box::new(Naive)], 0.9);
        e.fit(&TRAIN, SPEC);
        // Longer window: most recent values kept.
        assert_eq!(e.predict(&[1.0, 2.0, 3.0, 9.0]), 9.0);
        // Shorter window: left-padded, last value intact.
        assert_eq!(e.predict(&[7.0]), 7.0);
    }

    #[test]
    fn snapshot_roundtrip_restores_dynamic_state() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Constant(10.0)), Box::new(Constant(0.0))],
            0.9,
        );
        e.fit(&TRAIN, SPEC);
        for _ in 0..5 {
            e.observe(&[5.0, 6.0], 10.0);
        }
        let weights_before = e.weights();
        let snap = e.export_snapshot();
        // Constants carry no parameters: all blobs are None.
        assert!(snap.member_blobs.iter().all(|b| b.is_none()));

        let mut fresh = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Constant(10.0)), Box::new(Constant(0.0))],
            0.9,
        );
        fresh.fit(&TRAIN, SPEC);
        let restored = fresh.import_snapshot(&snap).expect("shape matches");
        assert_eq!(restored, 0);
        assert_eq!(fresh.weights(), weights_before);
        assert_eq!(fresh.forecasting_distances(), e.forecasting_distances());
    }

    #[test]
    fn snapshot_restores_neural_member_weights() {
        let series: Vec<f64> =
            (0..220).map(|i| 40.0 + 30.0 * ((i % 12) as f64 / 12.0 * std::f64::consts::TAU).sin()).collect();
        let spec = WindowSpec::new(12, 1);
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(MlpForecaster::new(3).with_epochs(4)), Box::new(Constant(1.0))],
            0.9,
        );
        e.fit(&series[..180], spec);
        let window = &series[180..192];
        let expected = e.member_predictions(window)[0];
        let snap = e.export_snapshot();
        assert!(snap.member_blobs[0].is_some() && snap.member_blobs[1].is_none());

        // Fresh process: same roster, cheap shape-establishing fit, then
        // the snapshot overwrites the weights.
        let mut fresh = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(MlpForecaster::new(41).with_epochs(1)), Box::new(Constant(1.0))],
            0.9,
        );
        fresh.fit(&series[..60], spec);
        let restored = fresh.import_snapshot(&snap).expect("shape matches");
        assert_eq!(restored, 1);
        assert!((fresh.member_predictions(window)[0] - expected).abs() < 1e-12);
        assert_eq!(fresh.quarantined_count(), 0);
    }

    #[test]
    fn snapshot_mismatched_roster_is_rejected() {
        let mut e = TimeSensitiveEnsemble::new("t", vec![Box::new(Constant(1.0))], 0.9);
        e.fit(&TRAIN, SPEC);
        let snap = e.export_snapshot();
        let mut other = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Constant(1.0)), Box::new(Constant(2.0))],
            0.9,
        );
        other.fit(&TRAIN, SPEC);
        assert!(other.import_snapshot(&snap).is_err());
    }

    #[test]
    fn snapshot_with_corrupt_member_blob_quarantines_that_member() {
        let series: Vec<f64> =
            (0..220).map(|i| 40.0 + 30.0 * ((i % 12) as f64 / 12.0 * std::f64::consts::TAU).sin()).collect();
        let spec = WindowSpec::new(12, 1);
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(MlpForecaster::new(3).with_epochs(2)), Box::new(Constant(1.0))],
            0.9,
        );
        e.fit(&series[..120], spec);
        let mut snap = e.export_snapshot();
        snap.member_blobs[0] = Some(b"rotten weight file".to_vec());

        let mut fresh = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(MlpForecaster::new(9).with_epochs(1)), Box::new(Constant(1.0))],
            0.9,
        );
        fresh.fit(&series[..60], spec);
        let restored = fresh.import_snapshot(&snap).expect("shape matches");
        assert_eq!(restored, 0);
        let states = fresh.member_states();
        assert!(states[0].quarantined, "corrupt member quarantined: {states:?}");
        assert!(!states[1].quarantined);
        assert!(fresh.predict(window_of(&series, spec)).is_finite());
    }

    fn window_of(series: &[f64], spec: WindowSpec) -> &[f64] {
        &series[series.len() - spec.history..]
    }

    #[test]
    fn fit_governed_expired_deadline_quarantines_members_and_serves_floor() {
        let mut e = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Constant(10.0)), Box::new(Constant(0.0))],
            0.9,
        );
        let dl = Deadline::none();
        dl.cancel();
        let skipped = e.fit_governed(&TRAIN, SPEC, &dl);
        assert_eq!(skipped, 2);
        assert_eq!(e.active_count(), 0);
        assert!(e.is_degraded());
        let states = e.member_states();
        assert!(states.iter().all(|s| s.quarantined));
        assert!(states[0].reason.as_deref().unwrap().contains("deadline expired"));
        // The fallback floor was fitted before the member fan-out, so a
        // total expiry still serves a finite seasonal-naive forecast.
        assert_eq!(e.predict(&[5.0, 6.0]), 6.0);
    }

    #[test]
    fn fit_governed_untimed_deadline_matches_fit() {
        let mut governed = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Constant(10.0)), Box::new(Constant(0.0))],
            0.9,
        );
        let skipped = governed.fit_governed(&TRAIN, SPEC, &Deadline::none());
        assert_eq!(skipped, 0);
        assert_eq!(governed.quarantined_count(), 0);
        let mut plain = TimeSensitiveEnsemble::new(
            "t",
            vec![Box::new(Constant(10.0)), Box::new(Constant(0.0))],
            0.9,
        );
        plain.fit(&TRAIN, SPEC);
        assert_eq!(governed.predict(&[5.0, 6.0]), plain.predict(&[5.0, 6.0]));
    }

    #[test]
    fn fixed_ensemble_still_propagates_member_panics() {
        let mut e = FixedEnsemble::equal(
            "f",
            vec![Box::new(PanicOnFit), Box::new(Constant(0.0))],
        );
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.fit(&TRAIN, SPEC);
        }));
        let msg = dbaugur_exec::panic_message(&r.expect_err("fixed ensembles fail fast"));
        assert!(msg.contains("panicker"), "message: {msg}");
    }
}
