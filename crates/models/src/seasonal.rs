//! Seasonal-naive baseline: `x̂_{t+H} = x_{t+H−m}` for season length `m`.
//!
//! Not in the paper's lineup, but the canonical sanity floor for cyclic
//! workloads — a learned model that cannot beat "same time yesterday"
//! has learned nothing. Used by the extended evaluation and tests.

use crate::forecaster::Forecaster;
use dbaugur_trace::WindowSpec;

/// Seasonal-naive forecaster.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    /// Season length in intervals (e.g. 144 for daily at 10 min).
    pub season: usize,
    horizon: usize,
    history: usize,
}

impl SeasonalNaive {
    /// A seasonal-naive model with the given season length.
    ///
    /// # Panics
    /// Panics if `season == 0`.
    pub fn new(season: usize) -> Self {
        assert!(season > 0, "season must be positive");
        Self { season, horizon: 1, history: 0 }
    }
}

impl Forecaster for SeasonalNaive {
    fn name(&self) -> &'static str {
        "SeasonalNaive"
    }

    fn fit(&mut self, _train: &[f64], spec: WindowSpec) {
        self.horizon = spec.horizon;
        self.history = spec.history;
    }

    fn predict(&self, window: &[f64]) -> f64 {
        assert_eq!(window.len(), self.history, "window length must match fit history");
        if window.is_empty() {
            return 0.0;
        }
        // The window ends at x_t and the target is x_{t+H}; one season
        // before the target is x_{t+H−m}, which sits `m − H` positions
        // before the window's last element. If the window is too short
        // (or the season no longer than the horizon), fall back to the
        // last value.
        if self.season > self.horizon {
            let back = self.season - self.horizon;
            if back < window.len() {
                return window[window.len() - 1 - back];
            }
        }
        window[window.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_one_season_back() {
        let mut m = SeasonalNaive::new(4);
        m.fit(&[], WindowSpec::new(8, 1));
        // Window of an exact period-4 signal x_{t-7..t} = 0,1,2,3,…; the
        // target x_{t+1} is 0.0 and one season before it is window[4].
        let window = [0.0, 1.0, 2.0, 3.0, 0.0, 1.0, 2.0, 3.0];
        let p = m.predict(&window);
        assert_eq!(p, 0.0, "period-4 signal: prediction must equal the target");
    }

    #[test]
    fn exact_on_periodic_series_any_horizon() {
        let season = 6;
        let series: Vec<f64> = (0..60).map(|i| (i % season) as f64 * 10.0).collect();
        for horizon in 1..=4 {
            let mut m = SeasonalNaive::new(season);
            let spec = WindowSpec::new(12, horizon);
            m.fit(&series, spec);
            for target in 30..48 {
                let end = target + 1 - horizon;
                let window = &series[end - 12..end];
                assert_eq!(
                    m.predict(window),
                    series[target],
                    "horizon {horizon} target {target}"
                );
            }
        }
    }

    #[test]
    fn short_window_falls_back_to_last() {
        let mut m = SeasonalNaive::new(100);
        m.fit(&[], WindowSpec::new(3, 1));
        assert_eq!(m.predict(&[1.0, 2.0, 7.0]), 7.0);
    }

    #[test]
    fn season_not_longer_than_horizon_falls_back() {
        let mut m = SeasonalNaive::new(2);
        m.fit(&[], WindowSpec::new(4, 5));
        assert_eq!(m.predict(&[1.0, 2.0, 3.0, 9.0]), 9.0);
    }

    #[test]
    #[should_panic(expected = "season")]
    fn zero_season_panics() {
        SeasonalNaive::new(0);
    }
}
