//! Training divergence guards.
//!
//! GAN training (and, at high learning rates, any gradient training) can
//! diverge: losses go NaN/∞ or explode by orders of magnitude. A diverged
//! member must not poison the ensemble, so every neural forecaster runs
//! its epoch loop under a [`TrainGuard`]:
//!
//! * each epoch reports a scalar health metric (mean train loss, or a
//!   supervised proxy for the GAN generator),
//! * a non-finite metric aborts the run immediately,
//! * a metric that stays above `explosion_factor ×` the best seen for
//!   more than `patience` consecutive epochs aborts the run,
//! * an aborted run is retried with a reseeded init and a geometrically
//!   backed-off epoch budget ([`RetrySchedule`]), up to `max_retries`
//!   times,
//! * the weights that produced the best metric are checkpointed
//!   ([`Checkpoint`]) and restored at the end, so a late-run divergence
//!   rolls back instead of shipping garbage.
//!
//! The outcome is summarized as a [`TrainHealth`], surfaced through
//! [`crate::Forecaster::health`] and consumed by the ensemble's
//! quarantine logic.

use dbaugur_nn::{Mat, Param};

/// Thresholds and retry budget for guarded training.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardConfig {
    /// Abort when the epoch metric exceeds `explosion_factor ×` the best
    /// metric seen this attempt for more than `patience` epochs in a row.
    pub explosion_factor: f64,
    /// Consecutive exploded epochs tolerated before aborting.
    pub patience: usize,
    /// Reseeded retries after an aborted attempt (0 = no retries).
    pub max_retries: usize,
    /// Epoch budget multiplier per retry, in `(0, 1]`. Retries are
    /// cheaper than the first attempt: a config that diverges once tends
    /// to diverge again, so we probe rather than commit.
    pub epoch_backoff: f64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self { explosion_factor: 1e3, patience: 2, max_retries: 2, epoch_backoff: 0.5 }
    }
}

impl GuardConfig {
    /// Validate thresholds; returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        // NaN must fail too, so compare in the accepting direction only.
        let factor_ok = self.explosion_factor > 1.0;
        if !factor_ok {
            return Err(format!("explosion_factor must be > 1, got {}", self.explosion_factor));
        }
        if !(self.epoch_backoff > 0.0 && self.epoch_backoff <= 1.0) {
            return Err(format!("epoch_backoff must be in (0, 1], got {}", self.epoch_backoff));
        }
        Ok(())
    }
}

/// Why a training attempt was aborted.
#[derive(Debug, Clone, PartialEq)]
pub enum DivergenceCause {
    /// The epoch metric (or a member loss feeding it) went NaN or ±∞.
    NonFinite {
        /// Epoch (within the attempt) at which the metric went non-finite.
        epoch: usize,
    },
    /// The metric stayed above `explosion_factor × best` past patience.
    Exploded {
        /// Epoch at which patience ran out.
        epoch: usize,
        /// The exploded metric value.
        metric: f64,
        /// Best metric seen before the explosion.
        best: f64,
    },
}

impl std::fmt::Display for DivergenceCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFinite { epoch } => write!(f, "non-finite loss at epoch {epoch}"),
            Self::Exploded { epoch, metric, best } => {
                write!(f, "loss explosion at epoch {epoch} ({metric:.3e} vs best {best:.3e})")
            }
        }
    }
}

/// Per-epoch verdict from [`TrainGuard::observe_epoch`].
#[derive(Debug, Clone, PartialEq)]
pub enum GuardVerdict {
    /// Keep training. `improved` means this epoch set a new best metric
    /// and callers should checkpoint the current weights.
    Continue {
        /// Whether this epoch set a new best metric.
        improved: bool,
    },
    /// Stop this attempt now.
    Abort(DivergenceCause),
}

/// Watches one training attempt's per-epoch metrics for divergence.
#[derive(Debug, Clone)]
pub struct TrainGuard {
    cfg: GuardConfig,
    best: f64,
    best_epoch: Option<usize>,
    bad_streak: usize,
}

impl TrainGuard {
    /// Fresh guard for one training attempt.
    pub fn new(cfg: &GuardConfig) -> Self {
        Self { cfg: cfg.clone(), best: f64::INFINITY, best_epoch: None, bad_streak: 0 }
    }

    /// Best (lowest) metric seen so far, if any epoch was finite.
    pub fn best(&self) -> Option<(usize, f64)> {
        self.best_epoch.map(|e| (e, self.best))
    }

    /// Feed one epoch's health metric; decides whether training goes on.
    pub fn observe_epoch(&mut self, epoch: usize, metric: f64) -> GuardVerdict {
        if !metric.is_finite() {
            return GuardVerdict::Abort(DivergenceCause::NonFinite { epoch });
        }
        if metric < self.best {
            self.best = metric;
            self.best_epoch = Some(epoch);
            self.bad_streak = 0;
            return GuardVerdict::Continue { improved: true };
        }
        // `max(1e-9)` keeps a perfect-fit best of 0.0 from flagging every
        // subsequent epoch as an explosion.
        if metric > self.cfg.explosion_factor * self.best.max(1e-9) {
            self.bad_streak += 1;
            if self.bad_streak > self.cfg.patience {
                return GuardVerdict::Abort(DivergenceCause::Exploded {
                    epoch,
                    metric,
                    best: self.best,
                });
            }
        } else {
            self.bad_streak = 0;
        }
        GuardVerdict::Continue { improved: false }
    }
}

/// One entry of a [`RetrySchedule`]: which seed and epoch budget to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// 0 = first try, 1.. = retries.
    pub index: usize,
    /// Seed for this attempt's init + shuffling RNG.
    pub seed: u64,
    /// Epoch budget (backed off geometrically for retries, floor 1).
    pub epochs: usize,
}

/// Derives the (seed, epochs) sequence for guarded training attempts.
#[derive(Debug, Clone)]
pub struct RetrySchedule {
    base_seed: u64,
    base_epochs: usize,
    max_retries: usize,
    backoff: f64,
}

impl RetrySchedule {
    /// Schedule derived from the guard's retry budget and backoff.
    pub fn new(cfg: &GuardConfig, base_seed: u64, base_epochs: usize) -> Self {
        Self {
            base_seed,
            base_epochs,
            max_retries: cfg.max_retries,
            backoff: cfg.epoch_backoff,
        }
    }

    /// Attempt 0 uses the configured seed/epochs (so healthy runs are
    /// byte-identical to unguarded training); retries derive a fresh seed
    /// by mixing the attempt index with a 64-bit odd constant.
    pub fn attempts(&self) -> impl Iterator<Item = Attempt> + '_ {
        (0..=self.max_retries).map(move |i| Attempt {
            index: i,
            seed: if i == 0 {
                self.base_seed
            } else {
                self.base_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            },
            epochs: ((self.base_epochs as f64 * self.backoff.powi(i as i32)).floor() as usize)
                .max(1),
        })
    }
}

/// Snapshot of a model's weight matrices, for best-epoch rollback.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    mats: Vec<Mat>,
}

impl Checkpoint {
    /// Clone the current weights out of a parameter list (the same
    /// `params_mut()` ordering used by the optimizer and serializer).
    pub fn of(params: &[&mut Param]) -> Self {
        Self { mats: params.iter().map(|p| p.w.clone()).collect() }
    }

    /// Write the snapshot back into a parameter list of the same shape.
    pub fn restore(&self, params: &mut [&mut Param]) {
        assert_eq!(params.len(), self.mats.len(), "checkpoint/model tensor count mismatch");
        for (p, m) in params.iter_mut().zip(&self.mats) {
            p.w = m.clone();
        }
    }
}

/// What a model must expose for [`run_guarded`] to drive its training.
/// Implemented by small per-model wrapper structs that own the attempt's
/// RNG and optimizer state.
pub(crate) trait GuardedTrain {
    /// Rebuild weights + optimizer + RNG from `seed` for a fresh attempt.
    fn reinit(&mut self, seed: u64);
    /// Run one epoch; return the health metric (lower is better).
    fn epoch(&mut self) -> f64;
    /// Snapshot current weights.
    fn checkpoint(&mut self) -> Checkpoint;
    /// Restore a snapshot taken on this architecture.
    fn restore(&mut self, ck: &Checkpoint);
    /// Drop the weights entirely (model falls back to naive predictions).
    fn clear(&mut self);
}

/// Run the guarded attempt/retry/rollback loop and classify the outcome.
///
/// Healthy first attempts restore their best-metric checkpoint, so a
/// run that drifts late still ships its best epoch; a run aborted by
/// the guard is retried on a fresh seed with a backed-off epoch budget;
/// if every attempt aborts, the best finite checkpoint seen anywhere is
/// restored (`RolledBack`) or, failing that, the weights are cleared
/// (`Failed`).
pub(crate) fn run_guarded<T: GuardedTrain>(
    t: &mut T,
    cfg: &GuardConfig,
    base_seed: u64,
    base_epochs: usize,
) -> TrainHealth {
    let sched = RetrySchedule::new(cfg, base_seed, base_epochs);
    let mut overall_best: Option<(f64, Checkpoint)> = None;
    let mut last_cause = None;
    let mut retries = 0;
    for attempt in sched.attempts() {
        retries = attempt.index;
        t.reinit(attempt.seed);
        let mut guard = TrainGuard::new(cfg);
        let mut aborted = None;
        for epoch in 0..attempt.epochs {
            let metric = t.epoch();
            match guard.observe_epoch(epoch, metric) {
                GuardVerdict::Continue { improved } => {
                    let beats_overall =
                        overall_best.as_ref().is_none_or(|(m, _)| metric < *m);
                    if improved && beats_overall {
                        overall_best = Some((metric, t.checkpoint()));
                    }
                }
                GuardVerdict::Abort(cause) => {
                    aborted = Some(cause);
                    break;
                }
            }
        }
        match aborted {
            None => {
                if let Some((_, ck)) = &overall_best {
                    t.restore(ck);
                }
                return if attempt.index == 0 {
                    TrainHealth::Healthy
                } else {
                    TrainHealth::Recovered { retries: attempt.index }
                };
            }
            Some(cause) => last_cause = Some(cause),
        }
    }
    let cause = last_cause.expect("loop aborts record a cause");
    match overall_best {
        Some((_, ck)) => {
            t.restore(&ck);
            TrainHealth::RolledBack { retries, cause }
        }
        None => {
            t.clear();
            TrainHealth::Failed { retries, cause }
        }
    }
}

/// Outcome of guarded training, surfaced per member via
/// [`crate::Forecaster::health`].
#[derive(Debug, Clone, PartialEq, Default)]
pub enum TrainHealth {
    /// First attempt ran to completion.
    #[default]
    Healthy,
    /// At least one attempt diverged, but a reseeded retry completed.
    Recovered {
        /// Retries consumed before the completing attempt.
        retries: usize,
    },
    /// Every attempt diverged; serving the best pre-divergence
    /// checkpoint. Usable, but degraded.
    RolledBack {
        /// Retries consumed (the full budget).
        retries: usize,
        /// The last attempt's divergence cause.
        cause: DivergenceCause,
    },
    /// Every attempt diverged before a single finite epoch; the model
    /// has no trained weights and serves its naive fallback.
    Failed {
        /// Retries consumed (the full budget).
        retries: usize,
        /// The last attempt's divergence cause.
        cause: DivergenceCause,
    },
}

impl TrainHealth {
    /// True when the model has no trained weights at all.
    pub fn is_failed(&self) -> bool {
        matches!(self, Self::Failed { .. })
    }

    /// True when training did not finish cleanly on some attempt.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Self::RolledBack { .. } | Self::Failed { .. })
    }
}

impl std::fmt::Display for TrainHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Healthy => write!(f, "healthy"),
            Self::Recovered { retries } => write!(f, "recovered after {retries} retr{}", if *retries == 1 { "y" } else { "ies" }),
            Self::RolledBack { retries, cause } => {
                write!(f, "rolled back to best checkpoint after {retries} retries ({cause})")
            }
            Self::Failed { retries, cause } => {
                write!(f, "failed after {retries} retries ({cause})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_run_never_aborts() {
        let mut g = TrainGuard::new(&GuardConfig::default());
        for (e, loss) in [0.9, 0.5, 0.6, 0.3, 0.31].into_iter().enumerate() {
            assert!(matches!(g.observe_epoch(e, loss), GuardVerdict::Continue { .. }));
        }
        assert_eq!(g.best(), Some((3, 0.3)));
    }

    #[test]
    fn improved_flag_tracks_new_best() {
        let mut g = TrainGuard::new(&GuardConfig::default());
        assert_eq!(g.observe_epoch(0, 1.0), GuardVerdict::Continue { improved: true });
        assert_eq!(g.observe_epoch(1, 2.0), GuardVerdict::Continue { improved: false });
        assert_eq!(g.observe_epoch(2, 0.5), GuardVerdict::Continue { improved: true });
    }

    #[test]
    fn nan_aborts_immediately() {
        let mut g = TrainGuard::new(&GuardConfig::default());
        g.observe_epoch(0, 1.0);
        assert_eq!(
            g.observe_epoch(1, f64::NAN),
            GuardVerdict::Abort(DivergenceCause::NonFinite { epoch: 1 })
        );
    }

    #[test]
    fn infinity_aborts_immediately() {
        let mut g = TrainGuard::new(&GuardConfig::default());
        assert_eq!(
            g.observe_epoch(0, f64::INFINITY),
            GuardVerdict::Abort(DivergenceCause::NonFinite { epoch: 0 })
        );
    }

    #[test]
    fn explosion_needs_patience_epochs() {
        let cfg = GuardConfig { explosion_factor: 10.0, patience: 2, ..Default::default() };
        let mut g = TrainGuard::new(&cfg);
        g.observe_epoch(0, 1.0);
        assert!(matches!(g.observe_epoch(1, 100.0), GuardVerdict::Continue { .. }));
        assert!(matches!(g.observe_epoch(2, 100.0), GuardVerdict::Continue { .. }));
        match g.observe_epoch(3, 100.0) {
            GuardVerdict::Abort(DivergenceCause::Exploded { epoch: 3, .. }) => {}
            v => panic!("expected explosion abort, got {v:?}"),
        }
    }

    #[test]
    fn recovery_resets_bad_streak() {
        let cfg = GuardConfig { explosion_factor: 10.0, patience: 1, ..Default::default() };
        let mut g = TrainGuard::new(&cfg);
        g.observe_epoch(0, 1.0);
        assert!(matches!(g.observe_epoch(1, 100.0), GuardVerdict::Continue { .. }));
        assert!(matches!(g.observe_epoch(2, 2.0), GuardVerdict::Continue { .. }));
        assert!(matches!(g.observe_epoch(3, 100.0), GuardVerdict::Continue { .. }));
    }

    #[test]
    fn zero_best_does_not_flag_tiny_metrics() {
        let mut g = TrainGuard::new(&GuardConfig::default());
        g.observe_epoch(0, 0.0);
        assert!(matches!(g.observe_epoch(1, 1e-8), GuardVerdict::Continue { .. }));
    }

    #[test]
    fn schedule_backs_off_epochs_and_reseeds() {
        let cfg = GuardConfig { max_retries: 2, epoch_backoff: 0.5, ..Default::default() };
        let attempts: Vec<_> = RetrySchedule::new(&cfg, 42, 8).attempts().collect();
        assert_eq!(attempts.len(), 3);
        assert_eq!(attempts[0], Attempt { index: 0, seed: 42, epochs: 8 });
        assert_eq!(attempts[1].epochs, 4);
        assert_eq!(attempts[2].epochs, 2);
        assert_ne!(attempts[1].seed, 42);
        assert_ne!(attempts[2].seed, attempts[1].seed);
    }

    #[test]
    fn schedule_epoch_floor_is_one() {
        let cfg = GuardConfig { max_retries: 3, epoch_backoff: 0.1, ..Default::default() };
        let attempts: Vec<_> = RetrySchedule::new(&cfg, 0, 2).attempts().collect();
        assert!(attempts.iter().all(|a| a.epochs >= 1));
    }

    #[test]
    fn config_validation() {
        assert!(GuardConfig::default().validate().is_ok());
        assert!(GuardConfig { explosion_factor: 1.0, ..Default::default() }.validate().is_err());
        assert!(GuardConfig { epoch_backoff: 0.0, ..Default::default() }.validate().is_err());
        assert!(GuardConfig { epoch_backoff: 1.5, ..Default::default() }.validate().is_err());
    }

    /// Scripted [`GuardedTrain`] impl: attempt `i` replays `script[i]`.
    struct Scripted {
        script: Vec<Vec<f64>>,
        attempt: usize,
        epoch: usize,
        cleared: bool,
        restores: usize,
    }

    impl Scripted {
        fn new(script: Vec<Vec<f64>>) -> Self {
            Self { script, attempt: usize::MAX, epoch: 0, cleared: false, restores: 0 }
        }
    }

    impl GuardedTrain for Scripted {
        fn reinit(&mut self, _seed: u64) {
            self.attempt = self.attempt.wrapping_add(1);
            self.epoch = 0;
        }
        fn epoch(&mut self) -> f64 {
            let m = self.script[self.attempt][self.epoch];
            self.epoch += 1;
            m
        }
        fn checkpoint(&mut self) -> Checkpoint {
            Checkpoint { mats: Vec::new() }
        }
        fn restore(&mut self, _ck: &Checkpoint) {
            self.restores += 1;
        }
        fn clear(&mut self) {
            self.cleared = true;
        }
    }

    fn guarded(script: Vec<Vec<f64>>, epochs: usize) -> (TrainHealth, Scripted) {
        let cfg = GuardConfig { max_retries: 2, epoch_backoff: 1.0, ..Default::default() };
        let mut t = Scripted::new(script);
        let health = run_guarded(&mut t, &cfg, 0, epochs);
        (health, t)
    }

    #[test]
    fn driver_clean_run_is_healthy_and_restores_best() {
        let (health, t) = guarded(vec![vec![0.9, 0.5, 0.7]], 3);
        assert_eq!(health, TrainHealth::Healthy);
        assert_eq!(t.restores, 1);
        assert!(!t.cleared);
    }

    #[test]
    fn driver_retry_recovers_after_nan_attempt() {
        let (health, t) =
            guarded(vec![vec![f64::NAN, 0.0, 0.0], vec![0.5, 0.4, 0.3]], 3);
        assert_eq!(health, TrainHealth::Recovered { retries: 1 });
        assert!(!t.cleared);
    }

    #[test]
    fn driver_all_nan_attempts_fail_and_clear() {
        let nan = vec![f64::NAN];
        let (health, t) = guarded(vec![nan.clone(), nan.clone(), nan], 1);
        match health {
            TrainHealth::Failed { retries: 2, cause: DivergenceCause::NonFinite { epoch: 0 } } => {}
            h => panic!("expected Failed, got {h:?}"),
        }
        assert!(t.cleared);
        assert_eq!(t.restores, 0);
    }

    #[test]
    fn driver_late_divergence_rolls_back_to_checkpoint() {
        let diverge_late = vec![0.5, f64::NAN, 0.0];
        let (health, t) = guarded(
            vec![diverge_late.clone(), diverge_late.clone(), diverge_late],
            3,
        );
        match health {
            TrainHealth::RolledBack { retries: 2, .. } => {}
            h => panic!("expected RolledBack, got {h:?}"),
        }
        assert_eq!(t.restores, 1);
        assert!(!t.cleared);
    }

    #[test]
    fn health_predicates() {
        assert!(!TrainHealth::Healthy.is_degraded());
        assert!(!TrainHealth::Recovered { retries: 1 }.is_degraded());
        let cause = DivergenceCause::NonFinite { epoch: 0 };
        let rolled = TrainHealth::RolledBack { retries: 2, cause: cause.clone() };
        assert!(rolled.is_degraded() && !rolled.is_failed());
        let failed = TrainHealth::Failed { retries: 2, cause };
        assert!(failed.is_degraded() && failed.is_failed());
    }
}
