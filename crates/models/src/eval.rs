//! Chronological rolling evaluation — the protocol behind every figure.
//!
//! A model fit on the training prefix is asked, for every test index `i`,
//! to predict `x_i` from the window ending `H` intervals earlier. After
//! each target is revealed the model's [`Forecaster::observe`] hook fires
//! (a no-op for static models; the error-history update for the
//! time-sensitive ensemble), which keeps the whole protocol causal: the
//! weights used to predict `x_i` depend only on targets `< i`.

use crate::forecaster::Forecaster;
use dbaugur_trace::{mae, mse, WindowSpec};

/// The outcome of a rolling evaluation.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Model display name.
    pub model: String,
    /// Horizon-`H` predictions, aligned with `targets`.
    pub predictions: Vec<f64>,
    /// Ground-truth values.
    pub targets: Vec<f64>,
    /// Absolute series indices of the targets.
    pub indices: Vec<usize>,
    /// Mean squared error (the paper's headline metric).
    pub mse: f64,
    /// Mean absolute error.
    pub mae: f64,
}

/// Fit `model` on `series[..split]` and roll it across the remainder.
///
/// Targets start at `max(split, history + horizon − 1)` so every window
/// fits inside the observed past. Returns `None` when the test region
/// admits no valid target.
pub fn rolling_forecast(
    model: &mut dyn Forecaster,
    series: &[f64],
    split: usize,
    spec: WindowSpec,
) -> Option<EvalReport> {
    model.fit(&series[..split], spec);
    rolling_forecast_prefit(model, series, split, spec)
}

/// Roll an already-fitted model across `series[split..]` (used when one
/// expensive fit is reused by several analyses).
pub fn rolling_forecast_prefit(
    model: &mut dyn Forecaster,
    series: &[f64],
    split: usize,
    spec: WindowSpec,
) -> Option<EvalReport> {
    let first = split.max(spec.history + spec.horizon - 1);
    if first >= series.len() {
        return None;
    }
    let n = series.len() - first;
    let mut predictions = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    let mut indices = Vec::with_capacity(n);
    for target in first..series.len() {
        let end = target + 1 - spec.horizon;
        let window = &series[end - spec.history..end];
        predictions.push(model.predict(window));
        targets.push(series[target]);
        indices.push(target);
        model.observe(window, series[target]);
    }
    Some(EvalReport {
        model: model.name().to_string(),
        mse: mse(&predictions, &targets),
        mae: mae(&predictions, &targets),
        predictions,
        targets,
        indices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Naive;
    use crate::lr::LinearRegression;

    #[test]
    fn windows_are_causal() {
        // A "model" that asserts its window never contains the target's
        // own or later values (values equal their index here).
        struct CausalCheck {
            horizon: usize,
        }
        impl Forecaster for CausalCheck {
            fn name(&self) -> &'static str {
                "check"
            }
            fn fit(&mut self, _: &[f64], _: WindowSpec) {}
            fn predict(&self, window: &[f64]) -> f64 {
                window.last().expect("non-empty") + self.horizon as f64
            }
        }
        let series: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let spec = WindowSpec::new(5, 3);
        let mut m = CausalCheck { horizon: 3 };
        let rep = rolling_forecast(&mut m, &series, 30, spec).expect("non-empty test");
        // last + horizon equals the target exactly on a ramp.
        assert_eq!(rep.mse, 0.0);
        assert_eq!(rep.indices.first(), Some(&30));
        assert_eq!(rep.indices.last(), Some(&49));
    }

    #[test]
    fn lr_beats_naive_on_linear_series_long_horizon() {
        let series: Vec<f64> = (0..200).map(|i| 3.0 * i as f64 + 1.0).collect();
        let spec = WindowSpec::new(6, 10);
        let mut lr = LinearRegression::default();
        let mut naive = Naive;
        let r_lr = rolling_forecast(&mut lr, &series, 150, spec).expect("test region");
        let r_naive = rolling_forecast(&mut naive, &series, 150, spec).expect("test region");
        assert!(r_lr.mse < 1e-6);
        assert!(r_naive.mse > 100.0);
    }

    #[test]
    fn empty_test_region_is_none() {
        let series = vec![1.0; 10];
        let spec = WindowSpec::new(4, 1);
        let mut m = Naive;
        assert!(rolling_forecast(&mut m, &series, 10, spec).is_none());
    }

    #[test]
    fn split_shorter_than_span_starts_late() {
        let series: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let spec = WindowSpec::new(8, 4);
        let mut m = Naive;
        let rep = rolling_forecast(&mut m, &series, 2, spec).expect("test region");
        // First target must leave room for history+horizon.
        assert_eq!(rep.indices[0], 11);
    }

    #[test]
    fn observe_is_called_in_order() {
        struct Recorder {
            seen: Vec<f64>,
        }
        impl Forecaster for Recorder {
            fn name(&self) -> &'static str {
                "rec"
            }
            fn fit(&mut self, _: &[f64], _: WindowSpec) {}
            fn predict(&self, _: &[f64]) -> f64 {
                0.0
            }
            fn observe(&mut self, _: &[f64], actual: f64) {
                self.seen.push(actual);
            }
        }
        let series: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mut m = Recorder { seen: Vec::new() };
        rolling_forecast(&mut m, &series, 20, WindowSpec::new(5, 1)).expect("test region");
        assert_eq!(m.seen, (20..30).map(|i| i as f64).collect::<Vec<_>>());
    }
}
