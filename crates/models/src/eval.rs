//! Chronological rolling evaluation — the protocol behind every figure.
//!
//! A model fit on the training prefix is asked, for every test index `i`,
//! to predict `x_i` from the window ending `H` intervals earlier. After
//! each target is revealed the model's [`Forecaster::observe`] hook fires
//! (a no-op for static models; the error-history update for the
//! time-sensitive ensemble), which keeps the whole protocol causal: the
//! weights used to predict `x_i` depend only on targets `< i`.

use crate::forecaster::Forecaster;
use dbaugur_trace::{mae, mse, smape, WindowSpec};

/// One rolling-origin evaluation fold: the model may fit on
/// `series[..train_len]` only and is scored on predicting
/// `series[target]` from the window ending `horizon` intervals before
/// it. By construction `target = train_len + horizon - 1`, so the
/// training prefix never overlaps the truth being predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OriginSplit {
    /// Length of the training prefix this fold may see.
    pub train_len: usize,
    /// Absolute index of the truth value this fold predicts.
    pub target: usize,
}

/// The last `folds` rolling origins of a length-`len` series — one
/// shared split definition for shadow backtests and EXPERIMENTS, fully
/// determined by its arguments (no hidden randomness). Folds are
/// returned in chronological order; fewer than `folds` come back when
/// the series is too short, and none when no valid fold exists.
pub fn rolling_origin_splits(len: usize, folds: usize, horizon: usize) -> Vec<OriginSplit> {
    if horizon == 0 || folds == 0 || len < horizon + 1 {
        return Vec::new();
    }
    // Valid targets leave at least one training sample: target >= horizon.
    let take = folds.min(len - horizon);
    (len - take..len)
        .map(|target| OriginSplit { train_len: target + 1 - horizon, target })
        .collect()
}

/// A predict-only model's score over rolling-origin splits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowScore {
    /// Symmetric MAPE over the valid folds.
    pub smape: f64,
    /// Folds that produced a finite prediction from a full window.
    pub windows: usize,
}

/// Score a predict-only model over `splits` without ever calling
/// `observe` — the shadow-backtest primitive: an incumbent champion can
/// be evaluated against held-out history while it keeps serving,
/// because nothing here mutates it. Folds whose training prefix is
/// shorter than `spec.history` (no full window) or whose prediction is
/// non-finite are skipped; `None` when no fold survives.
pub fn shadow_backtest(
    predict: impl Fn(&[f64]) -> f64,
    series: &[f64],
    splits: &[OriginSplit],
    spec: WindowSpec,
) -> Option<ShadowScore> {
    let mut preds = Vec::with_capacity(splits.len());
    let mut truths = Vec::with_capacity(splits.len());
    for s in splits {
        if s.train_len < spec.history || s.target >= series.len() {
            continue;
        }
        let window = &series[s.train_len - spec.history..s.train_len];
        let p = predict(window);
        if p.is_finite() {
            preds.push(p);
            truths.push(series[s.target]);
        }
    }
    if preds.is_empty() {
        return None;
    }
    Some(ShadowScore { smape: smape(&preds, &truths), windows: preds.len() })
}

/// The outcome of a rolling evaluation.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Model display name.
    pub model: String,
    /// Horizon-`H` predictions, aligned with `targets`.
    pub predictions: Vec<f64>,
    /// Ground-truth values.
    pub targets: Vec<f64>,
    /// Absolute series indices of the targets.
    pub indices: Vec<usize>,
    /// Mean squared error (the paper's headline metric).
    pub mse: f64,
    /// Mean absolute error.
    pub mae: f64,
}

/// Fit `model` on `series[..split]` and roll it across the remainder.
///
/// Targets start at `max(split, history + horizon − 1)` so every window
/// fits inside the observed past. Returns `None` when the test region
/// admits no valid target.
pub fn rolling_forecast(
    model: &mut dyn Forecaster,
    series: &[f64],
    split: usize,
    spec: WindowSpec,
) -> Option<EvalReport> {
    model.fit(&series[..split], spec);
    rolling_forecast_prefit(model, series, split, spec)
}

/// Roll an already-fitted model across `series[split..]` (used when one
/// expensive fit is reused by several analyses).
pub fn rolling_forecast_prefit(
    model: &mut dyn Forecaster,
    series: &[f64],
    split: usize,
    spec: WindowSpec,
) -> Option<EvalReport> {
    let first = split.max(spec.history + spec.horizon - 1);
    if first >= series.len() {
        return None;
    }
    let n = series.len() - first;
    let mut predictions = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    let mut indices = Vec::with_capacity(n);
    for target in first..series.len() {
        let end = target + 1 - spec.horizon;
        let window = &series[end - spec.history..end];
        predictions.push(model.predict(window));
        targets.push(series[target]);
        indices.push(target);
        model.observe(window, series[target]);
    }
    Some(EvalReport {
        model: model.name().to_string(),
        mse: mse(&predictions, &targets),
        mae: mae(&predictions, &targets),
        predictions,
        targets,
        indices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Naive;
    use crate::lr::LinearRegression;

    #[test]
    fn windows_are_causal() {
        // A "model" that asserts its window never contains the target's
        // own or later values (values equal their index here).
        struct CausalCheck {
            horizon: usize,
        }
        impl Forecaster for CausalCheck {
            fn name(&self) -> &'static str {
                "check"
            }
            fn fit(&mut self, _: &[f64], _: WindowSpec) {}
            fn predict(&self, window: &[f64]) -> f64 {
                window.last().expect("non-empty") + self.horizon as f64
            }
        }
        let series: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let spec = WindowSpec::new(5, 3);
        let mut m = CausalCheck { horizon: 3 };
        let rep = rolling_forecast(&mut m, &series, 30, spec).expect("non-empty test");
        // last + horizon equals the target exactly on a ramp.
        assert_eq!(rep.mse, 0.0);
        assert_eq!(rep.indices.first(), Some(&30));
        assert_eq!(rep.indices.last(), Some(&49));
    }

    #[test]
    fn lr_beats_naive_on_linear_series_long_horizon() {
        let series: Vec<f64> = (0..200).map(|i| 3.0 * i as f64 + 1.0).collect();
        let spec = WindowSpec::new(6, 10);
        let mut lr = LinearRegression::default();
        let mut naive = Naive;
        let r_lr = rolling_forecast(&mut lr, &series, 150, spec).expect("test region");
        let r_naive = rolling_forecast(&mut naive, &series, 150, spec).expect("test region");
        assert!(r_lr.mse < 1e-6);
        assert!(r_naive.mse > 100.0);
    }

    #[test]
    fn empty_test_region_is_none() {
        let series = vec![1.0; 10];
        let spec = WindowSpec::new(4, 1);
        let mut m = Naive;
        assert!(rolling_forecast(&mut m, &series, 10, spec).is_none());
    }

    #[test]
    fn split_shorter_than_span_starts_late() {
        let series: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let spec = WindowSpec::new(8, 4);
        let mut m = Naive;
        let rep = rolling_forecast(&mut m, &series, 2, spec).expect("test region");
        // First target must leave room for history+horizon.
        assert_eq!(rep.indices[0], 11);
    }

    #[test]
    fn rolling_origin_splits_hand_computed_small_cases() {
        // len 10, 3 folds, horizon 1: the last three targets.
        assert_eq!(
            rolling_origin_splits(10, 3, 1),
            vec![
                OriginSplit { train_len: 7, target: 7 },
                OriginSplit { train_len: 8, target: 8 },
                OriginSplit { train_len: 9, target: 9 },
            ]
        );
        // Horizon 3 leaves a 2-sample gap between prefix and truth.
        assert_eq!(
            rolling_origin_splits(10, 2, 3),
            vec![
                OriginSplit { train_len: 6, target: 8 },
                OriginSplit { train_len: 7, target: 9 },
            ]
        );
        // Short series: folds clamp to what exists.
        assert_eq!(
            rolling_origin_splits(3, 10, 2),
            vec![OriginSplit { train_len: 1, target: 2 }]
        );
        // Degenerate inputs produce no folds, never panic.
        assert!(rolling_origin_splits(0, 3, 1).is_empty());
        assert!(rolling_origin_splits(5, 0, 1).is_empty());
        assert!(rolling_origin_splits(5, 3, 0).is_empty());
        assert!(rolling_origin_splits(1, 3, 1).is_empty());
    }

    #[test]
    fn rolling_origin_splits_never_overlap_truth() {
        // Exhaustive sweep standing in for a property test: for every
        // small (len, folds, horizon), each fold's training prefix must
        // exclude its target, folds must be chronological and unique,
        // and the declared horizon relation must hold exactly.
        for len in 0..40 {
            for folds in 0..8 {
                for horizon in 0..5 {
                    let splits = rolling_origin_splits(len, folds, horizon);
                    assert!(splits.len() <= folds);
                    for w in splits.windows(2) {
                        assert!(w[0].target < w[1].target, "chronological, unique");
                    }
                    for s in &splits {
                        assert!(s.target < len, "target in range");
                        assert!(s.train_len >= 1, "non-empty training prefix");
                        assert!(s.train_len <= s.target, "prefix excludes truth");
                        assert_eq!(s.target, s.train_len + horizon - 1);
                    }
                }
            }
        }
    }

    #[test]
    fn shadow_backtest_never_mutates_and_scores_known_series() {
        // Perfect model on a ramp: sMAPE 0 over every fold.
        let series: Vec<f64> = (1..=30).map(|i| i as f64).collect();
        let spec = WindowSpec::new(4, 1);
        let splits = rolling_origin_splits(series.len(), 5, spec.horizon);
        let perfect = shadow_backtest(
            |w: &[f64]| w.last().unwrap() + 1.0,
            &series,
            &splits,
            spec,
        )
        .expect("folds survive");
        assert_eq!(perfect.windows, 5);
        assert!(perfect.smape < 1e-12);
        // A worse model scores worse — the promotion gate's ordering.
        let biased = shadow_backtest(|w: &[f64]| w.last().unwrap() * 2.0, &series, &splits, spec)
            .expect("folds survive");
        assert!(biased.smape > perfect.smape);
    }

    #[test]
    fn shadow_backtest_skips_short_prefixes_and_non_finite() {
        let series: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let spec = WindowSpec::new(8, 1);
        // All twelve origins requested: those with prefix < 8 are skipped.
        let splits = rolling_origin_splits(series.len(), 12, 1);
        let score =
            shadow_backtest(|w: &[f64]| *w.last().unwrap(), &series, &splits, spec).unwrap();
        assert_eq!(score.windows, 4, "only train_len 8..=11 have a full window");
        // A model that always returns NaN yields no score at all.
        assert!(shadow_backtest(|_: &[f64]| f64::NAN, &series, &splits, spec).is_none());
    }

    #[test]
    fn observe_is_called_in_order() {
        struct Recorder {
            seen: Vec<f64>,
        }
        impl Forecaster for Recorder {
            fn name(&self) -> &'static str {
                "rec"
            }
            fn fit(&mut self, _: &[f64], _: WindowSpec) {}
            fn predict(&self, _: &[f64]) -> f64 {
                0.0
            }
            fn observe(&mut self, _: &[f64], actual: f64) {
                self.seen.push(actual);
            }
        }
        let series: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mut m = Recorder { seen: Vec::new() };
        rolling_forecast(&mut m, &series, 20, WindowSpec::new(5, 1)).expect("test region");
        assert_eq!(m.seen, (20..30).map(|i| i as f64).collect::<Vec<_>>());
    }
}
