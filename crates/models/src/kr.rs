//! Nadaraya–Watson kernel regression over history windows — the KR
//! component of QB5000 ("QB5000 makes the forecast by equally averaging
//! the results of LR, LSTM and KR").
//!
//! Prediction: `x̂ = Σ K(‖w − w_i‖ / h) y_i / Σ K(…)` with a Gaussian
//! kernel over the training windows. The bandwidth defaults to the median
//! pairwise window distance (a standard heuristic). Training windows are
//! subsampled to a cap so inference stays O(cap · T).

use crate::forecaster::Forecaster;
use dbaugur_trace::{WindowDataset, WindowSpec};

/// Kernel regression forecaster.
#[derive(Debug, Clone)]
pub struct KernelRegression {
    /// Bandwidth; `None` selects the median-distance heuristic at fit.
    pub bandwidth: Option<f64>,
    /// Maximum retained training windows (evenly strided subsample).
    pub max_windows: usize,
    windows: Vec<Vec<f64>>,
    targets: Vec<f64>,
    fitted_bandwidth: f64,
    history: usize,
}

impl Default for KernelRegression {
    fn default() -> Self {
        Self {
            bandwidth: None,
            max_windows: 800,
            windows: Vec::new(),
            targets: Vec::new(),
            fitted_bandwidth: 1.0,
            history: 0,
        }
    }
}

impl KernelRegression {
    /// KR with an explicit bandwidth.
    pub fn with_bandwidth(bandwidth: f64) -> Self {
        Self { bandwidth: Some(bandwidth), ..Self::default() }
    }

    /// The bandwidth in effect after fitting.
    pub fn fitted_bandwidth(&self) -> f64 {
        self.fitted_bandwidth
    }

    fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    fn median_distance(&self) -> f64 {
        // Median over a strided sample of pairs; cheap and stable.
        let n = self.windows.len();
        if n < 2 {
            return 1.0;
        }
        let mut ds = Vec::new();
        let stride = (n / 64).max(1);
        for i in (0..n).step_by(stride) {
            for j in ((i + 1)..n).step_by(stride * 3 + 1) {
                ds.push(Self::sq_dist(&self.windows[i], &self.windows[j]).sqrt());
            }
        }
        if ds.is_empty() {
            return 1.0;
        }
        ds.sort_by(f64::total_cmp);
        // A low quantile keeps the kernel local: the median over random
        // window pairs badly over-smooths periodic traces.
        let m = ds[ds.len() / 10];
        if m > 0.0 {
            m
        } else {
            1.0
        }
    }
}

impl Forecaster for KernelRegression {
    fn name(&self) -> &'static str {
        "KR"
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        self.history = spec.history;
        let ds = WindowDataset::from_values(train, spec);
        self.windows.clear();
        self.targets.clear();
        let stride = ds.len().div_ceil(self.max_windows.max(1)).max(1);
        for i in (0..ds.len()).step_by(stride) {
            self.windows.push(ds.window(i).to_vec());
            self.targets.push(ds.target(i));
        }
        self.fitted_bandwidth = self.bandwidth.unwrap_or_else(|| self.median_distance());
    }

    fn predict(&self, window: &[f64]) -> f64 {
        assert_eq!(window.len(), self.history, "window length must match fit history");
        if self.windows.is_empty() {
            return window.last().copied().unwrap_or(0.0);
        }
        let h2 = self.fitted_bandwidth * self.fitted_bandwidth;
        let mut num = 0.0;
        let mut den = 0.0;
        let mut best = f64::INFINITY;
        let mut best_y = 0.0;
        for (w, &y) in self.windows.iter().zip(&self.targets) {
            let d2 = Self::sq_dist(window, w);
            if d2 < best {
                best = d2;
                best_y = y;
            }
            let k = (-d2 / (2.0 * h2)).exp();
            num += k * y;
            den += k;
        }
        if den > 1e-300 {
            num / den
        } else {
            // Query far outside the kernel mass: nearest neighbour.
            best_y
        }
    }

    fn storage_bytes(&self) -> usize {
        // KR is memory-based: it stores its training windows.
        self.windows.len() * (self.history + 1) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_smooth_function() {
        // y = sin over windows of a sine -> KR should predict well.
        let series: Vec<f64> = (0..500).map(|i| (i as f64 * 0.1).sin()).collect();
        let spec = WindowSpec::new(8, 1);
        let mut kr = KernelRegression::default();
        kr.fit(&series[..400], spec);
        let window: Vec<f64> = (392..400).map(|i| (i as f64 * 0.1).sin()).collect();
        let pred = kr.predict(&window);
        let truth = (400.0f64 * 0.1).sin();
        assert!((pred - truth).abs() < 0.12, "pred {pred} truth {truth} (amplitude 1)");
    }

    #[test]
    fn exact_repetition_is_memorized() {
        let series: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let spec = WindowSpec::new(5, 1);
        let mut kr = KernelRegression::with_bandwidth(0.1);
        kr.fit(&series, spec);
        let pred = kr.predict(&[3.0, 4.0, 5.0, 6.0, 7.0]);
        assert!((pred - 8.0).abs() < 1e-6, "got {pred}");
    }

    #[test]
    fn far_query_falls_back_to_nearest_neighbour() {
        let series: Vec<f64> = (0..60).map(|i| (i % 6) as f64).collect();
        let mut kr = KernelRegression::with_bandwidth(0.01);
        kr.fit(&series, WindowSpec::new(3, 1));
        let pred = kr.predict(&[1e6, 1e6, 1e6]);
        assert!(pred.is_finite());
    }

    #[test]
    fn bandwidth_heuristic_is_positive() {
        let series: Vec<f64> = (0..200).map(|i| (i as f64 * 0.7).cos() * 5.0).collect();
        let mut kr = KernelRegression::default();
        kr.fit(&series, WindowSpec::new(6, 1));
        assert!(kr.fitted_bandwidth() > 0.0);
    }

    #[test]
    fn subsampling_caps_memory() {
        let series: Vec<f64> = (0..5000).map(|i| i as f64).collect();
        let mut kr = KernelRegression { max_windows: 100, ..Default::default() };
        kr.fit(&series, WindowSpec::new(4, 1));
        assert!(kr.storage_bytes() <= 101 * 5 * 8);
    }

    #[test]
    fn empty_training_predicts_last_value() {
        let mut kr = KernelRegression::default();
        kr.fit(&[1.0], WindowSpec::new(4, 1));
        assert_eq!(kr.predict(&[1.0, 2.0, 3.0, 9.0]), 9.0);
    }
}
