//! Shared training plumbing for the neural forecasters: window
//! normalization, seeded shuffled minibatches, and batch assembly in
//! both flat (`batch × T`, for the MLP) and time-major sequence
//! (`T` of `batch × 1`, for LSTM/TCN/WFGAN) layouts.

use dbaugur_nn::Mat;
use dbaugur_trace::{MinMaxScaler, Scaler, WindowDataset, WindowSpec};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Normalized supervised windows plus the scaler to undo it.
pub struct SupervisedData {
    /// Normalized history windows, one `Vec` per example.
    pub windows: Vec<Vec<f64>>,
    /// Normalized targets, aligned with `windows`.
    pub targets: Vec<f64>,
    /// The scaler fitted on the training series.
    pub scaler: MinMaxScaler,
}

/// Build min–max-normalized windows from a training series; `None` when
/// the series is too short to yield a single example.
pub fn prepare(train: &[f64], spec: WindowSpec) -> Option<SupervisedData> {
    let ds = WindowDataset::from_values(train, spec);
    if ds.is_empty() {
        return None;
    }
    let scaler = MinMaxScaler::fitted(train);
    let mut windows = Vec::with_capacity(ds.len());
    let mut targets = Vec::with_capacity(ds.len());
    for (w, t) in ds.iter() {
        windows.push(w.iter().map(|&v| scaler.transform(v)).collect());
        targets.push(scaler.transform(t));
    }
    Some(SupervisedData { windows, targets, scaler })
}

/// Shuffled minibatch index lists covering `0..n`, capped at
/// `max_examples` (strided subsample) to bound per-epoch cost.
pub(crate) fn batches(
    n: usize,
    batch: usize,
    max_examples: usize,
    rng: &mut StdRng,
) -> Vec<Vec<usize>> {
    let stride = (n / max_examples.max(1)).max(1);
    let mut idx: Vec<usize> = (0..n).step_by(stride).collect();
    idx.shuffle(rng);
    idx.chunks(batch.max(1)).map(|c| c.to_vec()).collect()
}

/// Assemble a flat `B × T` window batch.
pub(crate) fn window_batch_flat(data: &SupervisedData, idxs: &[usize]) -> Mat {
    let t = data.windows[idxs[0]].len();
    Mat::from_fn(idxs.len(), t, |r, c| data.windows[idxs[r]][c])
}

/// Assemble a time-major sequence batch: `T` matrices of `B × 1`.
pub(crate) fn window_batch_seq(data: &SupervisedData, idxs: &[usize]) -> Vec<Mat> {
    let t = data.windows[idxs[0]].len();
    (0..t)
        .map(|ti| Mat::from_fn(idxs.len(), 1, |r, _| data.windows[idxs[r]][ti]))
        .collect()
}

/// Assemble the matching `B × 1` target batch.
pub(crate) fn target_batch(data: &SupervisedData, idxs: &[usize]) -> Mat {
    Mat::from_fn(idxs.len(), 1, |r, _| data.targets[idxs[r]])
}

/// A normalized window as a 1-step sequence batch (`T` of `1 × 1`),
/// for inference.
pub(crate) fn window_to_seq(window: &[f64], scaler: &MinMaxScaler) -> Vec<Mat> {
    window.iter().map(|&v| Mat::from_vec(1, 1, vec![scaler.transform(v)])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn prepare_normalizes_into_unit_range() {
        let train: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let d = prepare(&train, WindowSpec::new(4, 1)).expect("long enough");
        for w in &d.windows {
            assert!(w.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        assert_eq!(d.windows.len(), d.targets.len());
    }

    #[test]
    fn prepare_short_series_is_none() {
        assert!(prepare(&[1.0, 2.0], WindowSpec::new(5, 1)).is_none());
    }

    #[test]
    fn batches_cover_strided_range_without_duplicates() {
        let mut rng = StdRng::seed_from_u64(1);
        let bs = batches(100, 16, 1000, &mut rng);
        let mut all: Vec<usize> = bs.concat();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn batches_cap_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let bs = batches(1000, 32, 100, &mut rng);
        let total: usize = bs.iter().map(|b| b.len()).sum();
        assert!(total <= 101);
    }

    #[test]
    fn layouts_agree() {
        let train: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let d = prepare(&train, WindowSpec::new(3, 1)).expect("long enough");
        let idxs = vec![0, 2];
        let flat = window_batch_flat(&d, &idxs);
        let seq = window_batch_seq(&d, &idxs);
        assert_eq!(flat.shape(), (2, 3));
        assert_eq!(seq.len(), 3);
        for (ti, step) in seq.iter().enumerate() {
            for r in 0..2 {
                assert_eq!(flat.get(r, ti), step.get(r, 0));
            }
        }
        let tb = target_batch(&d, &idxs);
        assert_eq!(tb.shape(), (2, 1));
    }
}
