//! Autoregressive linear regression (the paper's LR baseline): the target
//! is a linear function of the history window, fit by ridge-regularized
//! least squares on the normal equations.

use crate::forecaster::Forecaster;
use dbaugur_trace::{WindowDataset, WindowSpec};

/// Solve `A x = b` for symmetric positive-definite `A` (n×n, row-major)
/// by Gaussian elimination with partial pivoting. Returns `None` when
/// singular beyond rescue.
pub(crate) fn solve(mut a: Vec<f64>, mut b: Vec<f64>, n: usize) -> Option<Vec<f64>> {
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[piv * n + col].abs() {
                piv = r;
            }
        }
        if a[piv * n + col].abs() < 1e-12 {
            return None;
        }
        if piv != col {
            for c in 0..n {
                a.swap(col * n + c, piv * n + c);
            }
            b.swap(col, piv);
        }
        let d = a[col * n + col];
        for r in col + 1..n {
            let f = a[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in col + 1..n {
            acc -= a[col * n + c] * x[c];
        }
        x[col] = acc / a[col * n + col];
    }
    Some(x)
}

/// Ridge-regularized autoregressive linear model
/// `x̂_{t+H} = w · window + b`.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// L2 penalty; a small default keeps the normal equations stable on
    /// near-collinear workload windows.
    pub lambda: f64,
    weights: Vec<f64>, // history coefficients followed by the intercept
    history: usize,
}

impl Default for LinearRegression {
    fn default() -> Self {
        Self::new(1e-3)
    }
}

impl LinearRegression {
    /// LR with the given ridge penalty.
    pub fn new(lambda: f64) -> Self {
        Self { lambda, weights: Vec::new(), history: 0 }
    }

    /// Fitted coefficients (history weights then intercept); empty before
    /// `fit`.
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }
}

impl Forecaster for LinearRegression {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        self.history = spec.history;
        let ds = WindowDataset::from_values(train, spec);
        let d = spec.history + 1; // + intercept
        if ds.is_empty() {
            self.weights = vec![0.0; d];
            return;
        }
        // Normal equations: (XᵀX + λI) w = Xᵀy with X rows [window, 1].
        let mut xtx = vec![0.0f64; d * d];
        let mut xty = vec![0.0f64; d];
        for (w, y) in ds.iter() {
            for i in 0..d {
                let xi = if i < spec.history { w[i] } else { 1.0 };
                xty[i] += xi * y;
                for j in i..d {
                    let xj = if j < spec.history { w[j] } else { 1.0 };
                    xtx[i * d + j] += xi * xj;
                }
            }
        }
        // Mirror the upper triangle and add the ridge (not on the intercept).
        for i in 0..d {
            for j in 0..i {
                xtx[i * d + j] = xtx[j * d + i];
            }
            if i < spec.history {
                xtx[i * d + i] += self.lambda * ds.len() as f64;
            }
        }
        self.weights = solve(xtx, xty, d).unwrap_or_else(|| vec![0.0; d]);
    }

    fn predict(&self, window: &[f64]) -> f64 {
        assert_eq!(window.len(), self.history, "window length must match fit history");
        let mut acc = *self.weights.last().unwrap_or(&0.0);
        for (w, x) in self.weights.iter().zip(window) {
            acc += w * x;
        }
        acc
    }

    fn storage_bytes(&self) -> usize {
        self.weights.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_known_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let x = solve(vec![2.0, 1.0, 1.0, 3.0], vec![3.0, 5.0], 2).expect("solvable");
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solver_detects_singular() {
        assert!(solve(vec![1.0, 2.0, 2.0, 4.0], vec![1.0, 2.0], 2).is_none());
    }

    #[test]
    fn recovers_exact_linear_recurrence() {
        // x_t = 0.5 x_{t-1} + 0.3 x_{t-2} + 2
        let mut series = vec![1.0, 2.0];
        for t in 2..200 {
            let v = 0.5 * series[t - 1] + 0.3 * series[t - 2] + 2.0;
            series.push(v);
        }
        let mut lr = LinearRegression::new(1e-9);
        lr.fit(&series, WindowSpec::new(2, 1));
        // Coefficients: window[0] is x_{t-2}, window[1] is x_{t-1}.
        let c = lr.coefficients();
        assert!((c[0] - 0.3).abs() < 1e-3, "got {c:?}");
        assert!((c[1] - 0.5).abs() < 1e-3);
        let pred = lr.predict(&series[198..200]);
        let truth = 0.5 * series[199] + 0.3 * series[198] + 2.0;
        assert!((pred - truth).abs() < 1e-6);
    }

    #[test]
    fn fits_trend_at_longer_horizon() {
        // Pure ramp: x_t = t. With horizon 3 the model should learn
        // x̂ = last + 3.
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut lr = LinearRegression::new(1e-9);
        lr.fit(&series, WindowSpec::new(4, 3));
        let pred = lr.predict(&[50.0, 51.0, 52.0, 53.0]);
        assert!((pred - 56.0).abs() < 1e-6, "got {pred}");
    }

    #[test]
    fn constant_series_predicts_constant() {
        let series = vec![7.0; 50];
        let mut lr = LinearRegression::default();
        lr.fit(&series, WindowSpec::new(3, 1));
        assert!((lr.predict(&[7.0, 7.0, 7.0]) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn too_short_training_yields_zero_model() {
        let mut lr = LinearRegression::default();
        lr.fit(&[1.0, 2.0], WindowSpec::new(5, 1));
        assert_eq!(lr.predict(&[0.0; 5]), 0.0);
    }

    #[test]
    fn storage_is_reported() {
        let mut lr = LinearRegression::default();
        lr.fit(&(0..50).map(|i| i as f64).collect::<Vec<_>>(), WindowSpec::new(10, 1));
        assert_eq!(lr.storage_bytes(), 11 * 8);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn wrong_window_length_panics() {
        let mut lr = LinearRegression::default();
        lr.fit(&(0..50).map(|i| i as f64).collect::<Vec<_>>(), WindowSpec::new(4, 1));
        lr.predict(&[1.0, 2.0]);
    }
}
