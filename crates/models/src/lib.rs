#![warn(missing_docs)]
//! The DBAugur model zoo (paper Secs. V and VI-A).
//!
//! Everything the evaluation compares lives here behind one
//! [`forecaster::Forecaster`] trait:
//!
//! | model | module | paper role |
//! |-------|--------|------------|
//! | LR (autoregressive ridge) | [`lr`] | classical baseline |
//! | ARIMA(2,1,2) | [`arima`] | classical baseline |
//! | Kernel Regression | [`kr`] | QB5000 component |
//! | MLP (32, 16) | [`mlp`] | baseline + ensemble member (local/short-term view) |
//! | LSTM (30 cells → 16 → 1) | [`lstm`] | baseline + QB5000 component |
//! | TCN (5 layers, dilations 1,2,4,8,16) | [`tcn`] | baseline + ensemble member (global/long-term view) |
//! | WFGAN | [`wfgan`] | the adversarial forecaster (Secs. V-A/V-B, Alg. 2) |
//! | QB5000 | [`ensemble`] | equal-weight LR+LSTM+KR (Ma et al.) |
//! | DBAugur | [`ensemble`] | time-sensitive WFGAN+TCN+MLP (Eqns. 7–8) |
//!
//! [`eval`] provides the chronological rolling evaluation used by every
//! figure: models are fit on the first 70% of a trace and asked for
//! horizon-`H` predictions across the remainder, with the dynamic
//! ensembles updating their error histories causally as targets are
//! observed.

pub mod arima;
pub mod ensemble;
pub mod eval;
pub mod forecaster;
pub mod gru;
pub mod guard;
pub mod kr;
pub mod lr;
pub mod lstm;
pub mod mlp;
pub mod persist;
pub mod seasonal;
pub mod tcn;
pub mod util;
pub mod wfgan;

pub use arima::Arima;
pub use ensemble::{
    combine_fixed, combine_time_sensitive, EnsembleSnapshot, FixedEnsemble, MemberState, Qb5000,
    TimeSensitiveEnsemble,
};
pub use eval::{
    rolling_forecast, rolling_origin_splits, shadow_backtest, EvalReport, OriginSplit, ShadowScore,
};
pub use forecaster::Forecaster;
pub use gru::GruForecaster;
pub use guard::{DivergenceCause, GuardConfig, GuardVerdict, TrainGuard, TrainHealth};
pub use kr::KernelRegression;
pub use lr::LinearRegression;
pub use lstm::LstmForecaster;
pub use mlp::MlpForecaster;
pub use persist::{load_model, save_model, Persistable, PersistError};
pub use seasonal::SeasonalNaive;
pub use tcn::TcnForecaster;
pub use wfgan::{MultiTaskWfgan, Wfgan, WfganConfig};
