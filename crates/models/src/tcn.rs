//! TCN forecaster — "a five-layer TCN, where the dilated convolution
//! factors are 1, 2, 4, 8, 16 respectively" (Sec. VI-A). The ensemble's
//! *global view*: the stacked dilations give a receptive field covering
//! the whole 30-step window, capturing long-term patterns without the
//! RNN gradient-explosion problem (Table I).

use crate::forecaster::Forecaster;
use crate::guard::{run_guarded, Checkpoint, GuardConfig, GuardedTrain, TrainHealth};
use crate::util;
use dbaugur_nn::activation::Activation;
use dbaugur_nn::loss::mse_loss;
use dbaugur_nn::param::HasParams;
use dbaugur_nn::serialize::encoded_size;
use dbaugur_nn::{Adam, Dense, Mat, Optimizer, TcnBlock};
use dbaugur_trace::{MinMaxScaler, Scaler, WindowSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// TCN forecaster configuration + fitted state.
pub struct TcnForecaster {
    /// Channel width of every block (the paper fixes the layer count and
    /// dilations; width is an implementation knob).
    pub channels: usize,
    /// Dilation factor per block (paper: `[1, 2, 4, 8, 16]`).
    pub dilations: Vec<usize>,
    /// Convolution kernel size.
    pub kernel: usize,
    /// Training epochs (paper Table II uses 50).
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Cap on examples per epoch.
    pub max_examples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Divergence-guard thresholds and retry budget.
    pub guard: GuardConfig,
    blocks: Vec<TcnBlock>,
    head: Option<Dense>,
    scaler: MinMaxScaler,
    history: usize,
    health: TrainHealth,
}

impl Default for TcnForecaster {
    fn default() -> Self {
        Self {
            channels: 16,
            dilations: vec![1, 2, 4, 8, 16],
            kernel: 2,
            epochs: 50,
            batch: 32,
            lr: 1e-3,
            max_examples: 2000,
            seed: 0,
            guard: GuardConfig::default(),
            blocks: Vec::new(),
            head: None,
            scaler: MinMaxScaler::new(),
            history: 0,
            health: TrainHealth::Healthy,
        }
    }
}

/// Owns one guarded-training attempt's RNG and optimizer state.
struct TcnTrainer<'a> {
    model: &'a mut TcnForecaster,
    data: &'a util::SupervisedData,
    rng: StdRng,
    opt: Adam,
}

impl GuardedTrain for TcnTrainer<'_> {
    fn reinit(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        let channels = self.model.channels;
        let kernel = self.model.kernel;
        let dilations = self.model.dilations.clone();
        self.model.blocks = dilations
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let input = if i == 0 { 1 } else { channels };
                TcnBlock::new(input, channels, kernel, d, &mut self.rng)
            })
            .collect();
        self.model.head = Some(Dense::new(channels, 1, Activation::Linear, &mut self.rng));
        self.opt = Adam::new(self.model.lr);
    }

    fn epoch(&mut self) -> f64 {
        self.model.train_epoch(self.data, &mut self.rng, &mut self.opt)
    }

    fn checkpoint(&mut self) -> Checkpoint {
        Checkpoint::of(&self.model.net_params().expect("nets initialized by reinit"))
    }

    fn restore(&mut self, ck: &Checkpoint) {
        ck.restore(&mut self.model.net_params().expect("nets initialized by reinit"));
    }

    fn clear(&mut self) {
        self.model.blocks.clear();
        self.model.head = None;
    }
}

impl TcnForecaster {
    /// Default (paper) configuration with a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Builder: override epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Total receptive field of the stack (in time steps).
    pub fn receptive_field(&self) -> usize {
        1 + self
            .dilations
            .iter()
            .map(|d| 2 * (self.kernel - 1) * d)
            .sum::<usize>()
    }

    fn forward_train(&mut self, xs: &[Mat]) -> Mat {
        let mut h = xs.to_vec();
        for b in &mut self.blocks {
            h = b.forward_seq(&h);
        }
        let last = h.last().expect("non-empty sequence").clone();
        self.head.as_mut().expect("initialized by fit").forward(&last)
    }

    fn backward_train(&mut self, grad: &Mat, t_len: usize) {
        let dlast = self.head.as_mut().expect("initialized by fit").backward(grad);
        let mut grads = vec![Mat::zeros(dlast.rows(), dlast.cols()); t_len];
        *grads.last_mut().expect("non-empty") = dlast;
        for b in self.blocks.iter_mut().rev() {
            grads = b.backward_seq(&grads);
        }
    }

    fn all_params(&mut self) -> Vec<&mut dbaugur_nn::Param> {
        let mut params: Vec<&mut dbaugur_nn::Param> =
            self.blocks.iter_mut().flat_map(|b| b.params_mut()).collect();
        if let Some(h) = &mut self.head {
            params.extend(h.params_mut());
        }
        params
    }

    /// One training epoch; mean batch loss. Exposed for Table II timing.
    pub fn train_epoch(
        &mut self,
        data: &util::SupervisedData,
        rng: &mut StdRng,
        opt: &mut Adam,
    ) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for idxs in util::batches(data.windows.len(), self.batch, self.max_examples, rng) {
            let xs = util::window_batch_seq(data, &idxs);
            let y = util::target_batch(data, &idxs);
            let pred = self.forward_train(&xs);
            let (loss, grad) = mse_loss(&pred, &y);
            self.backward_train(&grad, xs.len());
            opt.step(&mut self.all_params());
            total += loss;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}


/// Persistence accessors (see `crate::persist`).
impl TcnForecaster {
    pub(crate) fn scaler_state(&self) -> MinMaxScaler {
        self.scaler
    }

    pub(crate) fn history_len(&self) -> usize {
        self.history
    }

    pub(crate) fn set_scaler_state(&mut self, scaler: MinMaxScaler, history: usize) {
        self.scaler = scaler;
        self.history = history;
    }

    pub(crate) fn net_params(&mut self) -> Option<Vec<&mut dbaugur_nn::Param>> {
        self.head.as_ref()?;
        Some(self.all_params())
    }
}

impl Forecaster for TcnForecaster {
    fn name(&self) -> &'static str {
        "TCN"
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        self.history = spec.history;
        self.health = TrainHealth::Healthy;
        let Some(data) = util::prepare(train, spec) else {
            self.blocks.clear();
            self.head = None;
            return;
        };
        self.scaler = data.scaler;
        let (guard, seed, epochs, lr) = (self.guard.clone(), self.seed, self.epochs, self.lr);
        let mut trainer = TcnTrainer {
            model: self,
            data: &data,
            rng: StdRng::seed_from_u64(seed),
            opt: Adam::new(lr),
        };
        let health = run_guarded(&mut trainer, &guard, seed, epochs);
        self.health = health;
    }

    fn predict(&self, window: &[f64]) -> f64 {
        assert_eq!(window.len(), self.history, "window length must match fit history");
        let Some(head) = &self.head else {
            return window.last().copied().unwrap_or(0.0);
        };
        let mut h = util::window_to_seq(window, &self.scaler);
        for b in &self.blocks {
            h = b.infer_seq(&h);
        }
        let out = head.infer(h.last().expect("non-empty sequence"));
        self.scaler.inverse(out.get(0, 0))
    }

    fn storage_bytes(&self) -> usize {
        if self.head.is_none() {
            return 0;
        }
        let mut me = Self {
            blocks: self.blocks.clone(),
            head: self.head.clone(),
            ..Self::new(self.seed)
        };
        let params = me.all_params();
        encoded_size(&params.iter().map(|p| &**p).collect::<Vec<_>>())
    }

    fn health(&self) -> TrainHealth {
        self.health.clone()
    }

    fn export_state(&mut self) -> Option<Vec<u8>> {
        crate::persist::Persistable::export_bytes(self).ok()
    }

    fn import_state(&mut self, bytes: &[u8]) -> bool {
        crate::persist::Persistable::import_bytes(self, bytes).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbaugur_trace::mse;

    #[test]
    fn receptive_field_covers_thirty_steps() {
        let t = TcnForecaster::new(0);
        assert!(t.receptive_field() >= 30, "rf {} must cover the window", t.receptive_field());
    }

    #[test]
    fn learns_long_period_pattern() {
        // Period-24 pattern: needs a global view beyond a few lags.
        let series: Vec<f64> =
            (0..600).map(|i| 10.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin()).collect();
        let spec = WindowSpec::new(30, 1);
        let mut m = TcnForecaster::new(5).with_epochs(40);
        m.fit(&series[..480], spec);
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for target in 500..560 {
            preds.push(m.predict(&series[target - 30..target]));
            truths.push(series[target]);
        }
        let err = mse(&preds, &truths);
        assert!(err < 20.0, "tcn mse {err} should be far below amplitude^2 (100)");
    }

    #[test]
    fn unfit_model_falls_back() {
        let mut m = TcnForecaster::new(0);
        m.fit(&[1.0], WindowSpec::new(8, 1));
        m.history = 2;
        assert_eq!(m.predict(&[1.0, 7.0]), 7.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let series: Vec<f64> = (0..150).map(|i| (i as f64 * 0.2).cos()).collect();
        let spec = WindowSpec::new(12, 1);
        let mut a = TcnForecaster::new(9).with_epochs(2);
        let mut b = TcnForecaster::new(9).with_epochs(2);
        a.fit(&series, spec);
        b.fit(&series, spec);
        let w = &series[120..132];
        assert_eq!(a.predict(w), b.predict(w));
    }

    #[test]
    fn divergent_training_is_guarded() {
        let series: Vec<f64> = (0..200).map(|i| (i as f64 * 0.2).cos()).collect();
        let mut m = TcnForecaster::new(0).with_epochs(3);
        m.lr = f64::INFINITY;
        m.guard.max_retries = 1;
        m.fit(&series, WindowSpec::new(12, 1));
        assert!(m.health().is_degraded(), "health: {:?}", m.health());
        assert!(m.predict(&series[120..132]).is_finite());
    }

    #[test]
    fn tcn_storage_is_largest_of_the_zoo() {
        // Table II: "Since the TCN model is deep and complex, it takes up
        // a bigger space than other models."
        let series: Vec<f64> = (0..120).map(|i| i as f64).collect();
        let spec = WindowSpec::new(30, 1);
        let mut tcn = TcnForecaster::new(0).with_epochs(1);
        tcn.fit(&series, spec);
        let mut lstm = crate::lstm::LstmForecaster::new(0).with_epochs(1);
        lstm.fit(&series, spec);
        let mut mlp = crate::mlp::MlpForecaster::new(0).with_epochs(1);
        mlp.fit(&series, spec);
        assert!(tcn.storage_bytes() > lstm.storage_bytes());
        assert!(tcn.storage_bytes() > mlp.storage_bytes());
    }
}
