//! Persistence for fitted forecasters.
//!
//! A deployed DBAugur retrains periodically but must serve forecasts
//! from saved models in between (and Table II's storage numbers assume
//! models are serializable). Each neural forecaster here can export its
//! weights + normalization state to the `dbaugur-nn` binary format and
//! re-import them into a freshly configured instance.
//!
//! Layout: the first tensor is a `1 × 3` meta row `[scaler_min,
//! scaler_max, history]`; the remaining tensors are the network
//! parameters in `params_mut` order.

use crate::lstm::LstmForecaster;
use crate::mlp::MlpForecaster;
use crate::tcn::TcnForecaster;
use crate::wfgan::Wfgan;
use dbaugur_nn::param::Param;
use dbaugur_nn::serialize::{decode_params, encode_params, load_into, DecodeError};
use dbaugur_nn::Mat;
use dbaugur_trace::MinMaxScaler;
use std::path::Path;

/// Persistence error.
#[derive(Debug, PartialEq, Eq)]
pub enum PersistError {
    /// The model has not been fitted (nothing to export / no shape to
    /// import into).
    NotFitted,
    /// The byte buffer failed to decode or mismatched the architecture.
    Decode(DecodeError),
    /// The decoded buffer contains NaN or infinite weights — a corrupted
    /// file must not poison a healthy in-memory model.
    NonFinite,
    /// A filesystem operation failed (message of the underlying error).
    Io(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::NotFitted => write!(f, "model is not fitted"),
            PersistError::Decode(e) => write!(f, "decode failed: {e}"),
            PersistError::NonFinite => write!(f, "decoded weights contain non-finite values"),
            PersistError::Io(e) => write!(f, "i/o failed: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<DecodeError> for PersistError {
    fn from(e: DecodeError) -> Self {
        PersistError::Decode(e)
    }
}

/// A forecaster whose fitted state can round-trip through bytes.
///
/// Contract: `import_bytes` requires `self` to be configured with the
/// same architecture hyper-parameters and **fitted at least once** with
/// the same window spec (so the networks exist with matching shapes);
/// the training data itself need not match.
pub trait Persistable {
    /// Serialize scaler + weights. `Err(NotFitted)` before `fit`.
    fn export_bytes(&mut self) -> Result<Vec<u8>, PersistError>;
    /// Restore scaler + weights exported from an equal architecture.
    fn import_bytes(&mut self, bytes: &[u8]) -> Result<(), PersistError>;
}

fn meta_mat(scaler: &MinMaxScaler, history: usize) -> Param {
    let (min, max) = scaler.range();
    Param::new(Mat::row_vector(vec![min, max, history as f64]))
}

/// Reject blobs whose decoded tensors (meta row included) contain
/// NaN/∞ — bit rot in a weight file would otherwise propagate straight
/// into every subsequent forecast.
fn validate_finite(mats: &[Mat]) -> Result<(), PersistError> {
    for m in mats {
        if m.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(PersistError::NonFinite);
        }
    }
    Ok(())
}

fn split_meta(mats: &[Mat]) -> Result<(MinMaxScaler, usize, &[Mat]), PersistError> {
    let meta = mats.first().ok_or(PersistError::Decode(DecodeError::Truncated))?;
    if meta.shape() != (1, 3) {
        return Err(PersistError::Decode(DecodeError::ShapeMismatch));
    }
    let mut scaler = MinMaxScaler::new();
    // Reconstruct via fit on the two extremes (exact for min–max).
    dbaugur_trace::Scaler::fit(&mut scaler, &[meta.get(0, 0), meta.get(0, 1)]);
    let history = meta.get(0, 2) as usize;
    Ok((scaler, history, &mats[1..]))
}

/// Shared implementation: export `params` with a meta header.
fn export_with_meta(scaler: &MinMaxScaler, history: usize, params: Vec<&mut Param>) -> Vec<u8> {
    let meta = meta_mat(scaler, history);
    let mut all: Vec<&Param> = vec![&meta];
    // Reborrow as shared references.
    let shared: Vec<&Param> = params.iter().map(|p| &**p).collect();
    all.extend(shared);
    encode_params(&all)
}

macro_rules! impl_persistable {
    ($ty:ty) => {
        impl Persistable for $ty {
            fn export_bytes(&mut self) -> Result<Vec<u8>, PersistError> {
                let (scaler, history) = (self.scaler_state(), self.history_len());
                let params = self.net_params().ok_or(PersistError::NotFitted)?;
                Ok(export_with_meta(&scaler, history, params))
            }

            fn import_bytes(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
                let mats = decode_params(bytes)?;
                validate_finite(&mats)?;
                let (scaler, history, weights) = split_meta(&mats)?;
                {
                    let mut params = self.net_params().ok_or(PersistError::NotFitted)?;
                    load_into(&mut params, weights)?;
                }
                self.set_scaler_state(scaler, history);
                Ok(())
            }
        }
    };
}

impl_persistable!(MlpForecaster);
impl_persistable!(LstmForecaster);
impl_persistable!(TcnForecaster);
impl_persistable!(Wfgan);

/// Save a fitted model to `path` atomically: the bytes land in a
/// sibling temp file, are fsynced, and replace `path` via rename — a
/// crash mid-write can never destroy the previous copy (which a plain
/// truncate-then-write would).
pub fn save_model<M: Persistable + ?Sized>(model: &mut M, path: &Path) -> Result<(), PersistError> {
    let bytes = model.export_bytes()?;
    dbaugur_trace::wire::atomic_write(path, &bytes).map_err(|e| PersistError::Io(e.to_string()))
}

/// Load weights from `path` into an identically configured, fitted
/// model (see the [`Persistable`] contract). The model is untouched on
/// any error.
pub fn load_model<M: Persistable + ?Sized>(model: &mut M, path: &Path) -> Result<(), PersistError> {
    let bytes = std::fs::read(path).map_err(|e| PersistError::Io(e.to_string()))?;
    model.import_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Forecaster;
    use dbaugur_trace::WindowSpec;

    fn series() -> Vec<f64> {
        (0..220).map(|i| 40.0 + 30.0 * ((i % 12) as f64 / 12.0 * std::f64::consts::TAU).sin()).collect()
    }

    fn roundtrip<M: Persistable + Forecaster>(mut fitted: M, mut fresh: M) {
        let s = series();
        let spec = WindowSpec::new(12, 1);
        fitted.fit(&s[..180], spec);
        let window = &s[180..192];
        let expected = fitted.predict(window);

        let bytes = fitted.export_bytes().expect("fitted exports");
        // The fresh instance must be fitted once (any data) so its nets
        // have the right shapes, then imports the saved weights.
        fresh.fit(&s[..60], spec);
        fresh.import_bytes(&bytes).expect("import succeeds");
        let restored = fresh.predict(window);
        assert!(
            (expected - restored).abs() < 1e-12,
            "restored prediction {restored} != original {expected}"
        );
    }

    #[test]
    fn mlp_roundtrip() {
        roundtrip(
            MlpForecaster::new(1).with_epochs(5),
            MlpForecaster::new(99).with_epochs(1),
        );
    }

    #[test]
    fn lstm_roundtrip() {
        roundtrip(
            LstmForecaster::new(2).with_epochs(3),
            LstmForecaster::new(98).with_epochs(1),
        );
    }

    #[test]
    fn tcn_roundtrip() {
        roundtrip(
            TcnForecaster::new(3).with_epochs(3),
            TcnForecaster::new(97).with_epochs(1),
        );
    }

    #[test]
    fn wfgan_roundtrip() {
        let mut a = Wfgan::new(4).with_epochs(2);
        a.cfg.max_examples = 100;
        let mut b = Wfgan::new(96).with_epochs(1);
        b.cfg.max_examples = 50;
        roundtrip(a, b);
    }

    #[test]
    fn unfitted_export_fails() {
        let mut m = MlpForecaster::new(0);
        assert_eq!(m.export_bytes(), Err(PersistError::NotFitted));
    }

    #[test]
    fn architecture_mismatch_is_rejected() {
        let s = series();
        let spec = WindowSpec::new(12, 1);
        let mut lstm_small = LstmForecaster::new(1).with_epochs(1);
        lstm_small.hidden = 4;
        lstm_small.fit(&s, spec);
        let bytes = lstm_small.export_bytes().expect("exports");

        let mut lstm_big = LstmForecaster::new(1).with_epochs(1);
        lstm_big.hidden = 16;
        lstm_big.fit(&s, spec);
        assert!(matches!(
            lstm_big.import_bytes(&bytes),
            Err(PersistError::Decode(DecodeError::ShapeMismatch))
        ));
    }

    #[test]
    fn garbage_bytes_are_rejected() {
        let s = series();
        let mut m = MlpForecaster::new(0).with_epochs(1);
        m.fit(&s, WindowSpec::new(12, 1));
        assert!(m.import_bytes(b"not a model").is_err());
    }

    #[test]
    fn nan_weights_are_rejected() {
        let s = series();
        let mut m = MlpForecaster::new(0).with_epochs(1);
        m.fit(&s, WindowSpec::new(12, 1));
        let mut bytes = m.export_bytes().expect("exports");
        // Overwrite the last f64 payload (a tail weight) with NaN bits.
        let tail = bytes.len() - 8;
        bytes[tail..].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(m.import_bytes(&bytes), Err(PersistError::NonFinite));
    }

    #[test]
    fn rejected_import_leaves_model_untouched() {
        let s = series();
        let spec = WindowSpec::new(12, 1);
        let mut m = MlpForecaster::new(0).with_epochs(2);
        m.fit(&s[..180], spec);
        let window = &s[180..192];
        let before = m.predict(window);
        let clean = m.export_bytes().expect("exports");

        // NaN payload: rejected before any weight is written.
        let mut nan = clean.clone();
        let tail = nan.len() - 8;
        nan[tail..].copy_from_slice(&f64::INFINITY.to_le_bytes());
        assert_eq!(m.import_bytes(&nan), Err(PersistError::NonFinite));
        assert_eq!(m.predict(window), before);

        // Truncated file: rejected at decode.
        assert!(matches!(
            m.import_bytes(&clean[..clean.len() - 5]),
            Err(PersistError::Decode(DecodeError::Truncated))
        ));
        assert_eq!(m.predict(window), before);
    }

    #[test]
    fn save_load_file_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join(format!("dbag-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("mlp.dbaw");

        let s = series();
        let spec = WindowSpec::new(12, 1);
        let mut m = MlpForecaster::new(1).with_epochs(3);
        m.fit(&s[..180], spec);
        let window = &s[180..192];
        let expected = m.predict(window);
        save_model(&mut m, &path).expect("save succeeds");
        // No temp residue after a clean save.
        assert!(!dbaugur_trace::wire::tmp_path(&path).exists());

        // A stale/partial temp file from an earlier crashed writer must
        // not confuse a subsequent save.
        std::fs::write(dbaugur_trace::wire::tmp_path(&path), b"torn garbage").expect("plant tmp");
        save_model(&mut m, &path).expect("save over stale tmp succeeds");

        let mut fresh = MlpForecaster::new(77).with_epochs(1);
        fresh.fit(&s[..60], spec);
        load_model(&mut fresh, &path).expect("load succeeds");
        assert!((fresh.predict(window) - expected).abs() < 1e-12);

        // A failed later export (unfitted model) leaves the good file
        // byte-for-byte intact — the crash-safety the satellite asks for.
        let good = std::fs::read(&path).expect("read good file");
        let mut unfitted = MlpForecaster::new(0);
        assert_eq!(save_model(&mut unfitted, &path), Err(PersistError::NotFitted));
        assert_eq!(std::fs::read(&path).expect("still readable"), good);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_from_missing_file_reports_io() {
        let mut m = MlpForecaster::new(0);
        let err = load_model(&mut m, Path::new("/nonexistent/dbaugur/model.dbaw"));
        assert!(matches!(err, Err(PersistError::Io(_))));
    }

    #[test]
    fn forecaster_state_hooks_roundtrip_via_dyn() {
        // The ensemble checkpoints members through `Forecaster::export_state`
        // on boxed trait objects; verify the dyn path end-to-end.
        let s = series();
        let spec = WindowSpec::new(12, 1);
        let mut fitted: Box<dyn Forecaster> = Box::new(MlpForecaster::new(5).with_epochs(3));
        fitted.fit(&s[..180], spec);
        let window = &s[180..192];
        let expected = fitted.predict(window);
        let blob = fitted.export_state().expect("neural member exports");

        let mut fresh: Box<dyn Forecaster> = Box::new(MlpForecaster::new(50).with_epochs(1));
        fresh.fit(&s[..60], spec);
        assert!(fresh.import_state(&blob));
        assert!((fresh.predict(window) - expected).abs() < 1e-12);
        assert!(!fresh.import_state(b"garbage"), "bad bytes are rejected");

        // Classical members have nothing to export.
        let mut naive: Box<dyn Forecaster> = Box::new(crate::forecaster::Naive);
        assert!(naive.export_state().is_none());
        assert!(!naive.import_state(&blob));
    }

    #[test]
    fn corrupted_blobs_never_panic() {
        use dbaugur_trace::FaultInjector;
        let s = series();
        let spec = WindowSpec::new(12, 1);
        let mut m = MlpForecaster::new(0).with_epochs(1);
        m.fit(&s, spec);
        let clean = m.export_bytes().expect("exports");
        let mut inj = FaultInjector::new(42);
        for _ in 0..64 {
            let mut dirty = clean.clone();
            inj.corrupt_bytes(&mut dirty, 4);
            // Any outcome but a panic/abort is acceptable; a success means
            // the flips hit weight payloads and stayed finite.
            let _ = m.import_bytes(&dirty);
        }
        for frac in [0.0, 0.3, 0.7] {
            let mut dirty = clean.clone();
            inj.truncate_bytes(&mut dirty, frac);
            assert!(m.import_bytes(&dirty).is_err());
        }
    }
}
