//! GRU forecaster — an extended-zoo member mirroring the LSTM baseline
//! with the lighter recurrent cell (3 gates instead of 4). Useful for
//! ablations: comparable accuracy with ~25% fewer recurrent parameters.

use crate::forecaster::Forecaster;
use crate::util;
use dbaugur_nn::activation::Activation;
use dbaugur_nn::loss::mse_loss;
use dbaugur_nn::param::HasParams;
use dbaugur_nn::serialize::encoded_size;
use dbaugur_nn::{clip_global_norm, Adam, Dense, Gru, Mat, Optimizer};
use dbaugur_trace::{MinMaxScaler, Scaler, WindowSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// GRU forecaster configuration + fitted state.
pub struct GruForecaster {
    /// Hidden width (default matches the LSTM baseline's 16).
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Cap on examples per epoch.
    pub max_examples: usize,
    /// Global-norm gradient clip.
    pub clip: f64,
    /// RNG seed.
    pub seed: u64,
    gru: Option<Gru>,
    head: Option<Dense>,
    scaler: MinMaxScaler,
    history: usize,
}

impl Default for GruForecaster {
    fn default() -> Self {
        Self {
            hidden: 16,
            epochs: 50,
            batch: 32,
            lr: 1e-3,
            max_examples: 2000,
            clip: 5.0,
            seed: 0,
            gru: None,
            head: None,
            scaler: MinMaxScaler::new(),
            history: 0,
        }
    }
}

impl GruForecaster {
    /// Default configuration with a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Builder: override epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// One training epoch; mean batch loss.
    pub fn train_epoch(
        &mut self,
        data: &util::SupervisedData,
        rng: &mut StdRng,
        opt: &mut Adam,
    ) -> f64 {
        let gru = self.gru.as_mut().expect("initialized by fit");
        let head = self.head.as_mut().expect("initialized by fit");
        let mut total = 0.0;
        let mut count = 0usize;
        for idxs in util::batches(data.windows.len(), self.batch, self.max_examples, rng) {
            let xs = util::window_batch_seq(data, &idxs);
            let y = util::target_batch(data, &idxs);
            let hs = gru.forward_seq(&xs);
            let last = hs.last().expect("non-empty sequence").clone();
            let pred = head.forward(&last);
            let (loss, grad) = mse_loss(&pred, &y);
            let dlast = head.backward(&grad);
            let mut grads = vec![Mat::zeros(dlast.rows(), dlast.cols()); xs.len()];
            *grads.last_mut().expect("non-empty") = dlast;
            gru.backward_seq(&grads);
            let mut params = gru.params_mut();
            params.extend(head.params_mut());
            clip_global_norm(&mut params, self.clip);
            opt.step(&mut params);
            total += loss;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

impl Forecaster for GruForecaster {
    fn name(&self) -> &'static str {
        "GRU"
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        self.history = spec.history;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let Some(data) = util::prepare(train, spec) else {
            self.gru = None;
            self.head = None;
            return;
        };
        self.gru = Some(Gru::new(1, self.hidden, &mut rng));
        self.head = Some(Dense::new(self.hidden, 1, Activation::Linear, &mut rng));
        self.scaler = data.scaler;
        let mut opt = Adam::new(self.lr);
        for _ in 0..self.epochs {
            self.train_epoch(&data, &mut rng, &mut opt);
        }
    }

    fn predict(&self, window: &[f64]) -> f64 {
        assert_eq!(window.len(), self.history, "window length must match fit history");
        let (Some(gru), Some(head)) = (&self.gru, &self.head) else {
            return window.last().copied().unwrap_or(0.0);
        };
        let xs = util::window_to_seq(window, &self.scaler);
        let hs = gru.infer_seq(&xs);
        let out = head.infer(hs.last().expect("non-empty sequence"));
        self.scaler.inverse(out.get(0, 0))
    }

    fn storage_bytes(&self) -> usize {
        match (&self.gru, &self.head) {
            (Some(gru), Some(head)) => {
                let mut gru = gru.clone();
                let mut head = head.clone();
                let mut params = gru.params_mut();
                params.extend(head.params_mut());
                encoded_size(&params.iter().map(|p| &**p).collect::<Vec<_>>())
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbaugur_trace::mse;

    #[test]
    fn learns_short_cycle() {
        let series: Vec<f64> = (0..400).map(|i| (i % 8) as f64 * 10.0).collect();
        let spec = WindowSpec::new(8, 1);
        let mut m = GruForecaster::new(3).with_epochs(60);
        m.fit(&series[..320], spec);
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for target in 340..380 {
            preds.push(m.predict(&series[target - 8..target]));
            truths.push(series[target]);
        }
        let err = mse(&preds, &truths);
        assert!(err < 150.0, "gru cycle mse {err} vs amplitude 70");
    }

    #[test]
    fn unfit_model_falls_back() {
        let mut m = GruForecaster::new(0);
        m.fit(&[1.0], WindowSpec::new(8, 1));
        m.history = 2;
        assert_eq!(m.predict(&[1.0, 6.0]), 6.0);
    }

    #[test]
    fn smaller_than_lstm_at_same_width() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let spec = WindowSpec::new(20, 1);
        let mut gru = GruForecaster::new(0).with_epochs(1);
        gru.fit(&series, spec);
        let mut lstm = crate::lstm::LstmForecaster::new(0).with_epochs(1);
        lstm.fit(&series, spec);
        assert!(gru.storage_bytes() < lstm.storage_bytes());
    }

    #[test]
    fn deterministic_per_seed() {
        let series: Vec<f64> = (0..150).map(|i| (i as f64 * 0.2).sin()).collect();
        let spec = WindowSpec::new(10, 1);
        let mut a = GruForecaster::new(7).with_epochs(2);
        let mut b = GruForecaster::new(7).with_epochs(2);
        a.fit(&series, spec);
        b.fit(&series, spec);
        let w = &series[130..140];
        assert_eq!(a.predict(w), b.predict(w));
    }
}
