//! LSTM forecaster — "the input length is set to 30, and the output
//! dimension is set to 16 with a dense layer to get the final result"
//! (Sec. VI-A). An LSTM layer reads the window as a scalar sequence; the
//! final hidden state feeds a linear head.

use crate::forecaster::Forecaster;
use crate::guard::{run_guarded, Checkpoint, GuardConfig, GuardedTrain, TrainHealth};
use crate::util;
use dbaugur_nn::activation::Activation;
use dbaugur_nn::loss::mse_loss;
use dbaugur_nn::param::HasParams;
use dbaugur_nn::serialize::encoded_size;
use dbaugur_nn::{clip_global_norm, Adam, Dense, Lstm, Mat, Optimizer};
use dbaugur_trace::{MinMaxScaler, Scaler, WindowSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// LSTM forecaster configuration + fitted state.
pub struct LstmForecaster {
    /// Hidden width (paper: 16 for the baseline).
    pub hidden: usize,
    /// Training epochs (paper Table II uses 50).
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Cap on examples per epoch.
    pub max_examples: usize,
    /// Gradient-clip threshold (global norm).
    pub clip: f64,
    /// RNG seed.
    pub seed: u64,
    /// Divergence-guard thresholds and retry budget.
    pub guard: GuardConfig,
    lstm: Option<Lstm>,
    head: Option<Dense>,
    scaler: MinMaxScaler,
    history: usize,
    health: TrainHealth,
}

impl Default for LstmForecaster {
    fn default() -> Self {
        Self {
            hidden: 16,
            epochs: 50,
            batch: 32,
            lr: 1e-3,
            max_examples: 2000,
            clip: 5.0,
            seed: 0,
            guard: GuardConfig::default(),
            lstm: None,
            head: None,
            scaler: MinMaxScaler::new(),
            history: 0,
            health: TrainHealth::Healthy,
        }
    }
}

/// Owns one guarded-training attempt's RNG and optimizer state.
struct LstmTrainer<'a> {
    model: &'a mut LstmForecaster,
    data: &'a util::SupervisedData,
    rng: StdRng,
    opt: Adam,
}

impl GuardedTrain for LstmTrainer<'_> {
    fn reinit(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        self.model.lstm = Some(Lstm::new(1, self.model.hidden, &mut self.rng));
        self.model.head =
            Some(Dense::new(self.model.hidden, 1, Activation::Linear, &mut self.rng));
        self.opt = Adam::new(self.model.lr);
    }

    fn epoch(&mut self) -> f64 {
        self.model.train_epoch(self.data, &mut self.rng, &mut self.opt)
    }

    fn checkpoint(&mut self) -> Checkpoint {
        Checkpoint::of(&self.model.net_params().expect("nets initialized by reinit"))
    }

    fn restore(&mut self, ck: &Checkpoint) {
        ck.restore(&mut self.model.net_params().expect("nets initialized by reinit"));
    }

    fn clear(&mut self) {
        self.model.lstm = None;
        self.model.head = None;
    }
}

impl LstmForecaster {
    /// Default configuration with a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Builder: override epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// One training epoch; mean batch loss. Exposed for Table II timing.
    pub fn train_epoch(
        &mut self,
        data: &util::SupervisedData,
        rng: &mut StdRng,
        opt: &mut Adam,
    ) -> f64 {
        let lstm = self.lstm.as_mut().expect("initialized by fit");
        let head = self.head.as_mut().expect("initialized by fit");
        let mut total = 0.0;
        let mut count = 0usize;
        for idxs in util::batches(data.windows.len(), self.batch, self.max_examples, rng) {
            let xs = util::window_batch_seq(data, &idxs);
            let y = util::target_batch(data, &idxs);
            let hs = lstm.forward_seq(&xs);
            let last = hs.last().expect("non-empty sequence").clone();
            let pred = head.forward(&last);
            let (loss, grad) = mse_loss(&pred, &y);
            let dlast = head.backward(&grad);
            let mut grads = vec![Mat::zeros(dlast.rows(), dlast.cols()); xs.len()];
            *grads.last_mut().expect("non-empty") = dlast;
            lstm.backward_seq(&grads);
            let mut params = lstm.params_mut();
            params.extend(head.params_mut());
            clip_global_norm(&mut params, self.clip);
            opt.step(&mut params);
            total += loss;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}


/// Persistence accessors (see `crate::persist`).
impl LstmForecaster {
    pub(crate) fn scaler_state(&self) -> MinMaxScaler {
        self.scaler
    }

    pub(crate) fn history_len(&self) -> usize {
        self.history
    }

    pub(crate) fn set_scaler_state(&mut self, scaler: MinMaxScaler, history: usize) {
        self.scaler = scaler;
        self.history = history;
    }

    pub(crate) fn net_params(&mut self) -> Option<Vec<&mut dbaugur_nn::Param>> {
        match (&mut self.lstm, &mut self.head) {
            (Some(l), Some(h)) => {
                let mut p = l.params_mut();
                p.extend(h.params_mut());
                Some(p)
            }
            _ => None,
        }
    }
}

impl Forecaster for LstmForecaster {
    fn name(&self) -> &'static str {
        "LSTM"
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        self.history = spec.history;
        self.health = TrainHealth::Healthy;
        let Some(data) = util::prepare(train, spec) else {
            self.lstm = None;
            self.head = None;
            return;
        };
        self.scaler = data.scaler;
        let (guard, seed, epochs, lr) = (self.guard.clone(), self.seed, self.epochs, self.lr);
        let mut trainer = LstmTrainer {
            model: self,
            data: &data,
            rng: StdRng::seed_from_u64(seed),
            opt: Adam::new(lr),
        };
        let health = run_guarded(&mut trainer, &guard, seed, epochs);
        self.health = health;
    }

    fn predict(&self, window: &[f64]) -> f64 {
        assert_eq!(window.len(), self.history, "window length must match fit history");
        let (Some(lstm), Some(head)) = (&self.lstm, &self.head) else {
            return window.last().copied().unwrap_or(0.0);
        };
        let xs = util::window_to_seq(window, &self.scaler);
        let hs = lstm.infer_seq(&xs);
        let out = head.infer(hs.last().expect("non-empty sequence"));
        self.scaler.inverse(out.get(0, 0))
    }

    fn storage_bytes(&self) -> usize {
        match (&self.lstm, &self.head) {
            (Some(lstm), Some(head)) => {
                let mut lstm = lstm.clone();
                let mut head = head.clone();
                let mut params = lstm.params_mut();
                params.extend(head.params_mut());
                encoded_size(&params.iter().map(|p| &**p).collect::<Vec<_>>())
            }
            _ => 0,
        }
    }

    fn health(&self) -> TrainHealth {
        self.health.clone()
    }

    fn export_state(&mut self) -> Option<Vec<u8>> {
        crate::persist::Persistable::export_bytes(self).ok()
    }

    fn import_state(&mut self, bytes: &[u8]) -> bool {
        crate::persist::Persistable::import_bytes(self, bytes).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbaugur_trace::mse;

    #[test]
    fn learns_short_cycle() {
        // A short repeating pattern the LSTM should memorize quickly.
        let series: Vec<f64> = (0..400).map(|i| (i % 8) as f64 * 10.0).collect();
        let spec = WindowSpec::new(8, 1);
        let mut m = LstmForecaster::new(3).with_epochs(30);
        m.fit(&series[..320], spec);
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for target in 340..380 {
            preds.push(m.predict(&series[target - 8..target]));
            truths.push(series[target]);
        }
        let err = mse(&preds, &truths);
        assert!(err < 100.0, "cycle mse {err} should be small vs amplitude 70");
    }

    #[test]
    fn unfit_model_falls_back() {
        let mut m = LstmForecaster::new(0);
        m.fit(&[1.0], WindowSpec::new(8, 1));
        m.history = 3;
        assert_eq!(m.predict(&[1.0, 2.0, 5.0]), 5.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let series: Vec<f64> = (0..150).map(|i| (i as f64 * 0.3).sin()).collect();
        let spec = WindowSpec::new(10, 1);
        let mut a = LstmForecaster::new(11).with_epochs(2);
        let mut b = LstmForecaster::new(11).with_epochs(2);
        a.fit(&series, spec);
        b.fit(&series, spec);
        let w = &series[100..110];
        assert_eq!(a.predict(w), b.predict(w));
    }

    #[test]
    fn divergent_training_is_guarded() {
        let series: Vec<f64> = (0..200).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut m = LstmForecaster::new(0).with_epochs(3);
        m.lr = f64::INFINITY;
        m.guard.max_retries = 1;
        m.fit(&series, WindowSpec::new(8, 1));
        assert!(m.health().is_degraded(), "health: {:?}", m.health());
        assert!(m.predict(&series[100..108]).is_finite());
    }

    #[test]
    fn storage_counts_lstm_and_head() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut m = LstmForecaster::new(0).with_epochs(1);
        m.fit(&series, WindowSpec::new(30, 1));
        let lstm_params = 4 * 16 * (1 + 16 + 1);
        let head_params = 16 + 1;
        // header 12 + 5 tensors × 8 shape bytes + values.
        assert_eq!(m.storage_bytes(), 12 + 5 * 8 + (lstm_params + head_params) * 8);
    }
}
