//! The forecaster abstraction shared by every model in the zoo.

use crate::guard::TrainHealth;
use dbaugur_trace::WindowSpec;

/// A single-trace forecaster (paper Definition 4): observes a history
/// window of length `spec.history` and predicts the value
/// `spec.horizon` intervals past the window's end.
pub trait Forecaster: Send {
    /// Short display name (matches the labels of the paper's figures).
    fn name(&self) -> &'static str;

    /// Fit on a training series. Implementations build their own
    /// supervised windows from `train` under `spec` and remember the
    /// spec; `predict` windows must have length `spec.history`.
    fn fit(&mut self, train: &[f64], spec: WindowSpec);

    /// Predict the value `horizon` intervals after the window's last
    /// element. Must not mutate the model (dynamic ensembles learn via
    /// [`Forecaster::observe`] instead).
    fn predict(&self, window: &[f64]) -> f64;

    /// Predict many windows at once. The contract is bitwise: element
    /// `i` must equal `self.predict(windows[i])` exactly — batching is
    /// a kernel-level optimization (one N-row matmul instead of N
    /// row-vector matmuls for neural members), never a semantic change.
    /// The default loops `predict`; models with a batched forward pass
    /// override it.
    fn predict_batch(&self, windows: &[&[f64]]) -> Vec<f64> {
        windows.iter().map(|w| self.predict(w)).collect()
    }

    /// Feed back an observed target for the window that was used to
    /// predict it. Default: no-op. The time-sensitive ensemble uses this
    /// to maintain its per-member error history (Eqn. 7).
    fn observe(&mut self, _window: &[f64], _actual: f64) {}

    /// Serialized parameter size in bytes (Table II "Storage"); 0 for
    /// models that are not parameter-based.
    fn storage_bytes(&self) -> usize {
        0
    }

    /// Outcome of the last `fit` for guard-aware models. Classical
    /// models cannot diverge and report `Healthy`; neural members
    /// override this with the verdict of their [`crate::TrainGuard`]
    /// run, which the ensemble uses to quarantine failed members.
    fn health(&self) -> TrainHealth {
        TrainHealth::Healthy
    }

    /// Export the fitted state as opaque bytes for checkpointing.
    /// `None` means the model carries no persistable parameters
    /// (classical members refit deterministically instead). Neural
    /// members override this via `models::persist`.
    fn export_state(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// Restore state previously produced by [`Forecaster::export_state`]
    /// on an identically configured, already-fitted instance. Returns
    /// `false` when unsupported or when the bytes are rejected (the
    /// model is left unchanged in that case).
    fn import_state(&mut self, _bytes: &[u8]) -> bool {
        false
    }
}

/// Blanket impl so `Box<dyn Forecaster>` composes into ensembles.
impl Forecaster for Box<dyn Forecaster> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        self.as_mut().fit(train, spec)
    }

    fn predict(&self, window: &[f64]) -> f64 {
        self.as_ref().predict(window)
    }

    fn predict_batch(&self, windows: &[&[f64]]) -> Vec<f64> {
        self.as_ref().predict_batch(windows)
    }

    fn observe(&mut self, window: &[f64], actual: f64) {
        self.as_mut().observe(window, actual)
    }

    fn storage_bytes(&self) -> usize {
        self.as_ref().storage_bytes()
    }

    fn health(&self) -> TrainHealth {
        self.as_ref().health()
    }

    fn export_state(&mut self) -> Option<Vec<u8>> {
        self.as_mut().export_state()
    }

    fn import_state(&mut self, bytes: &[u8]) -> bool {
        self.as_mut().import_state(bytes)
    }
}

/// A trivial forecaster predicting the window's last value (random-walk
/// baseline; handy in tests and as a sanity floor).
#[derive(Debug, Clone, Default)]
pub struct Naive;

impl Forecaster for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn fit(&mut self, _train: &[f64], _spec: WindowSpec) {}

    fn predict(&self, window: &[f64]) -> f64 {
        window.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_predicts_last() {
        let mut n = Naive;
        n.fit(&[1.0, 2.0], WindowSpec::new(2, 1));
        assert_eq!(n.predict(&[5.0, 7.0]), 7.0);
        assert_eq!(n.predict(&[]), 0.0);
    }

    #[test]
    fn boxed_forecaster_delegates() {
        let mut b: Box<dyn Forecaster> = Box::new(Naive);
        b.fit(&[0.0; 4], WindowSpec::new(2, 1));
        assert_eq!(b.name(), "naive");
        assert_eq!(b.predict(&[1.0, 9.0]), 9.0);
        assert_eq!(b.storage_bytes(), 0);
    }
}
