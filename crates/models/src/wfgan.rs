//! WFGAN — Workload Forecasting GAN (paper Secs. V-A/V-B, Fig. 4,
//! Alg. 2).
//!
//! A conditional GAN for scalar forecasting:
//!
//! * the **generator** receives the history window `X = (x_1 … x_T)` as
//!   the condition (no noise vector — the paper replaces the noise space
//!   with the condition window) and emits `x̂_{T+H}`; internally it is an
//!   LSTM over the window, a temporal attention over all hidden states
//!   (Eqn. 2), and a linear head;
//! * the **discriminator** receives `X ∘ x` (length `T+1`) and scores the
//!   probability that the appended value is real (Eqn. 3) with the same
//!   LSTM + attention + linear-head structure;
//! * training alternates `d_steps` discriminator ascents on Eqn. 4 with
//!   `g_steps` generator descents (Alg. 2). The generator uses the
//!   standard non-saturating form of Eqn. 5, and optionally a supervised
//!   auxiliary `λ·MSE(x̂, x)` term (λ = 0 recovers the paper's pure
//!   adversarial objective; the default 0.7 is the usual
//!   cGAN-for-regression stabilization — see DESIGN.md).
//!
//! [`MultiTaskWfgan`] implements the multi-task variant of Sec. V-A: the
//! query and resource tasks share the generator's LSTM ("the shallow
//! network parameters in the hidden layer will be shared by both
//! forecasting models, while their deep network parameters will be
//! optimized separately") while each task keeps its own attention, head,
//! discriminator and scaler.

use crate::forecaster::Forecaster;
use crate::guard::{run_guarded, Checkpoint, GuardConfig, GuardedTrain, TrainHealth};
use crate::util::{self, SupervisedData};
use dbaugur_nn::activation::Activation;
use dbaugur_nn::loss::{bce_with_logits, generator_nonsaturating_loss};
use dbaugur_nn::param::HasParams;
use dbaugur_nn::serialize::encoded_size;
use dbaugur_nn::{clip_global_norm, Adam, Dense, Lstm, Mat, Optimizer, TemporalAttention};
use dbaugur_trace::{MinMaxScaler, Scaler, WindowSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of WFGAN.
#[derive(Debug, Clone)]
pub struct WfganConfig {
    /// LSTM width (paper: 30 cells in both G and D).
    pub hidden: usize,
    /// Attention scoring width.
    pub attn: usize,
    /// Training epochs (paper Table II uses 50).
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Generator learning rate.
    pub lr_g: f64,
    /// Discriminator learning rate.
    pub lr_d: f64,
    /// Discriminator updates per batch (Alg. 2 D-steps).
    pub d_steps: usize,
    /// Generator updates per batch (Alg. 2 G-steps).
    pub g_steps: usize,
    /// Supervised auxiliary weight λ (0 = paper's pure adversarial loss).
    pub supervised_weight: f64,
    /// Cap on examples per epoch.
    pub max_examples: usize,
    /// Global-norm gradient clip.
    pub clip: f64,
    /// RNG seed.
    pub seed: u64,
    /// Divergence-guard thresholds and retry budget (GANs are the most
    /// divergence-prone member of the zoo; see `crate::guard`).
    pub guard: GuardConfig,
}

impl Default for WfganConfig {
    fn default() -> Self {
        Self {
            hidden: 30,
            attn: 16,
            epochs: 50,
            batch: 32,
            lr_g: 1e-3,
            lr_d: 1e-3,
            d_steps: 1,
            g_steps: 1,
            supervised_weight: 0.7,
            max_examples: 2000,
            clip: 5.0,
            seed: 0,
            guard: GuardConfig::default(),
        }
    }
}

/// LSTM → attention → linear head; the shared internal structure of both
/// G and D (Fig. 4).
struct SeqNet {
    lstm: Lstm,
    attn: TemporalAttention,
    head: Dense,
}

impl SeqNet {
    fn new(hidden: usize, attn: usize, rng: &mut StdRng) -> Self {
        Self {
            lstm: Lstm::new(1, hidden, rng),
            attn: TemporalAttention::new(hidden, attn, rng),
            head: Dense::new(hidden, 1, Activation::Linear, rng),
        }
    }

    fn forward(&mut self, xs: &[Mat]) -> Mat {
        let hs = self.lstm.forward_seq(xs);
        let ctx = self.attn.forward(&hs);
        self.head.forward(&ctx)
    }

    fn infer(&self, xs: &[Mat]) -> Mat {
        let hs = self.lstm.infer_seq(xs);
        let ctx = self.attn.infer(&hs);
        self.head.infer(&ctx)
    }

    /// Backward; returns per-step input gradients.
    fn backward(&mut self, grad_out: &Mat) -> Vec<Mat> {
        let dctx = self.head.backward(grad_out);
        let dhs = self.attn.backward(&dctx);
        self.lstm.backward_seq(&dhs)
    }
}

impl HasParams for SeqNet {
    fn params_mut(&mut self) -> Vec<&mut dbaugur_nn::Param> {
        let mut p = self.lstm.params_mut();
        p.extend(self.attn.params_mut());
        p.extend(self.head.params_mut());
        p
    }
}

/// The single-task WFGAN forecaster.
pub struct Wfgan {
    /// Hyper-parameters.
    pub cfg: WfganConfig,
    gen: Option<SeqNet>,
    disc: Option<SeqNet>,
    scaler: MinMaxScaler,
    history: usize,
    health: TrainHealth,
    /// `(d_loss, g_adv_loss)` means per epoch of the last training
    /// attempt, for convergence checks.
    pub loss_history: Vec<(f64, f64)>,
}

impl Wfgan {
    /// WFGAN with default (paper) hyper-parameters and a seed.
    pub fn new(seed: u64) -> Self {
        Self::with_config(WfganConfig { seed, ..WfganConfig::default() })
    }

    /// WFGAN with explicit configuration.
    pub fn with_config(cfg: WfganConfig) -> Self {
        Self {
            cfg,
            gen: None,
            disc: None,
            scaler: MinMaxScaler::new(),
            history: 0,
            health: TrainHealth::Healthy,
            loss_history: Vec::new(),
        }
    }

    /// Builder: override epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.cfg.epochs = epochs;
        self
    }

    /// Builder: override the supervised auxiliary weight λ.
    pub fn with_supervised_weight(mut self, lambda: f64) -> Self {
        self.cfg.supervised_weight = lambda;
        self
    }

    /// Append `value` (a `B × 1` matrix) to a window sequence, producing
    /// the length-`T+1` discriminator input `X ∘ x`.
    fn append(xs: &[Mat], value: &Mat) -> Vec<Mat> {
        let mut seq = xs.to_vec();
        seq.push(value.clone());
        seq
    }

    /// One adversarial epoch over `data`; returns mean `(d_loss,
    /// g_adv_loss)`. Exposed for Table II timing and the ablation bench.
    pub fn train_epoch(
        &mut self,
        data: &SupervisedData,
        rng: &mut StdRng,
        opt_g: &mut Adam,
        opt_d: &mut Adam,
    ) -> (f64, f64) {
        let cfg = self.cfg.clone();
        let gen = self.gen.as_mut().expect("initialized by fit");
        let disc = self.disc.as_mut().expect("initialized by fit");
        let mut d_total = 0.0;
        let mut g_total = 0.0;
        let mut count = 0usize;
        for idxs in util::batches(data.windows.len(), cfg.batch, cfg.max_examples, rng) {
            let xs = util::window_batch_seq(data, &idxs);
            let y_real = util::target_batch(data, &idxs);
            let b = idxs.len();
            let ones = Mat::from_fn(b, 1, |_, _| 1.0);
            let zeros = Mat::zeros(b, 1);

            // --- D-steps: ascend log D(real) + log(1 − D(fake)) ---
            let mut d_loss_acc = 0.0;
            for _ in 0..cfg.d_steps {
                let x_fake = gen.infer(&xs); // detached: no G caches
                let real_seq = Self::append(&xs, &y_real);
                let logits_real = disc.forward(&real_seq);
                let (l_real, g_real) = bce_with_logits(&logits_real, &ones);
                disc.backward(&g_real);
                let fake_seq = Self::append(&xs, &x_fake);
                let logits_fake = disc.forward(&fake_seq);
                let (l_fake, g_fake) = bce_with_logits(&logits_fake, &zeros);
                disc.backward(&g_fake);
                let mut dp = disc.params_mut();
                clip_global_norm(&mut dp, cfg.clip);
                opt_d.step(&mut dp);
                d_loss_acc += l_real + l_fake;
            }

            // --- G-steps: descend the non-saturating −log D(fake) (+ λ·MSE) ---
            let mut g_loss_acc = 0.0;
            for _ in 0..cfg.g_steps {
                let x_fake = gen.forward(&xs);
                let fake_seq = Self::append(&xs, &x_fake);
                let logits = disc.forward(&fake_seq);
                let (l_adv, g_adv) = generator_nonsaturating_loss(&logits);
                // Route the gradient through D to the appended value; D's
                // own parameter grads from this pass are discarded.
                let dxs = disc.backward(&g_adv);
                disc.zero_grad();
                let mut d_value = dxs.last().expect("non-empty sequence").clone();
                if cfg.supervised_weight > 0.0 {
                    // ∂(λ·MSE)/∂x̂ = 2λ(x̂ − y)/B
                    for r in 0..b {
                        let d = 2.0 * cfg.supervised_weight
                            * (x_fake.get(r, 0) - y_real.get(r, 0))
                            / b as f64;
                        let v = d_value.get(r, 0) + d;
                        d_value.set(r, 0, v);
                    }
                }
                gen.backward(&d_value);
                let mut gp = gen.params_mut();
                clip_global_norm(&mut gp, cfg.clip);
                opt_g.step(&mut gp);
                g_loss_acc += l_adv;
            }

            d_total += d_loss_acc / cfg.d_steps.max(1) as f64;
            g_total += g_loss_acc / cfg.g_steps.max(1) as f64;
            count += 1;
        }
        if count == 0 {
            (0.0, 0.0)
        } else {
            (d_total / count as f64, g_total / count as f64)
        }
    }

    /// Generator supervised MSE (scaled space) over up to `cap` training
    /// windows. Adversarial losses oscillate by design, so the guard
    /// watches this proxy instead: it is monotone-ish on healthy runs
    /// and goes non-finite/explosive exactly when the GAN diverges.
    fn supervised_proxy(&self, data: &SupervisedData, cap: usize) -> f64 {
        let Some(gen) = &self.gen else {
            return f64::NAN;
        };
        let n = data.windows.len().min(cap);
        if n == 0 {
            return 0.0;
        }
        let idxs: Vec<usize> = (0..n).collect();
        let xs = util::window_batch_seq(data, &idxs);
        let pred = gen.infer(&xs);
        let mut sum = 0.0;
        for (r, &i) in idxs.iter().enumerate() {
            let d = pred.get(r, 0) - data.targets[i];
            sum += d * d;
        }
        sum / n as f64
    }

    /// The discriminator's probability that `window ∘ value` is real —
    /// used by tests and the ablation bench to verify adversarial
    /// convergence.
    pub fn discriminator_p_real(&self, window: &[f64], value: f64) -> f64 {
        let disc = self.disc.as_ref().expect("fit first");
        let mut xs = util::window_to_seq(window, &self.scaler);
        xs.push(Mat::from_vec(1, 1, vec![self.scaler.transform(value)]));
        let logit = disc.infer(&xs).get(0, 0);
        1.0 / (1.0 + (-logit).exp())
    }
}


/// Owns one guarded-training attempt's RNG and optimizer state.
struct WfganTrainer<'a> {
    model: &'a mut Wfgan,
    data: &'a SupervisedData,
    rng: StdRng,
    opt_g: Adam,
    opt_d: Adam,
}

impl GuardedTrain for WfganTrainer<'_> {
    fn reinit(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        let (hidden, attn) = (self.model.cfg.hidden, self.model.cfg.attn);
        self.model.gen = Some(SeqNet::new(hidden, attn, &mut self.rng));
        self.model.disc = Some(SeqNet::new(hidden, attn, &mut self.rng));
        self.opt_g = Adam::new(self.model.cfg.lr_g);
        self.opt_d = Adam::new(self.model.cfg.lr_d);
        self.model.loss_history.clear();
    }

    fn epoch(&mut self) -> f64 {
        let (d, g) =
            self.model.train_epoch(self.data, &mut self.rng, &mut self.opt_g, &mut self.opt_d);
        self.model.loss_history.push((d, g));
        if !(d.is_finite() && g.is_finite()) {
            return f64::NAN;
        }
        self.model.supervised_proxy(self.data, 256)
    }

    fn checkpoint(&mut self) -> Checkpoint {
        Checkpoint::of(&self.model.net_params().expect("nets initialized by reinit"))
    }

    fn restore(&mut self, ck: &Checkpoint) {
        ck.restore(&mut self.model.net_params().expect("nets initialized by reinit"));
    }

    fn clear(&mut self) {
        self.model.gen = None;
        self.model.disc = None;
    }
}

/// Persistence accessors (see `crate::persist`).
impl Wfgan {
    pub(crate) fn scaler_state(&self) -> MinMaxScaler {
        self.scaler
    }

    pub(crate) fn history_len(&self) -> usize {
        self.history
    }

    pub(crate) fn set_scaler_state(&mut self, scaler: MinMaxScaler, history: usize) {
        self.scaler = scaler;
        self.history = history;
    }

    pub(crate) fn net_params(&mut self) -> Option<Vec<&mut dbaugur_nn::Param>> {
        match (&mut self.gen, &mut self.disc) {
            (Some(g), Some(d)) => {
                let mut p = g.params_mut();
                p.extend(d.params_mut());
                Some(p)
            }
            _ => None,
        }
    }
}

impl Forecaster for Wfgan {
    fn name(&self) -> &'static str {
        "WFGAN"
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        self.history = spec.history;
        self.health = TrainHealth::Healthy;
        self.loss_history.clear();
        let Some(data) = util::prepare(train, spec) else {
            self.gen = None;
            self.disc = None;
            return;
        };
        self.scaler = data.scaler;
        let guard = self.cfg.guard.clone();
        let (seed, epochs) = (self.cfg.seed, self.cfg.epochs);
        let (lr_g, lr_d) = (self.cfg.lr_g, self.cfg.lr_d);
        let mut trainer = WfganTrainer {
            model: self,
            data: &data,
            rng: StdRng::seed_from_u64(seed),
            opt_g: Adam::new(lr_g),
            opt_d: Adam::new(lr_d),
        };
        let health = run_guarded(&mut trainer, &guard, seed, epochs);
        self.health = health;
    }

    fn predict(&self, window: &[f64]) -> f64 {
        assert_eq!(window.len(), self.history, "window length must match fit history");
        let Some(gen) = &self.gen else {
            return window.last().copied().unwrap_or(0.0);
        };
        let xs = util::window_to_seq(window, &self.scaler);
        self.scaler.inverse(gen.infer(&xs).get(0, 0))
    }

    fn storage_bytes(&self) -> usize {
        // Deployment ships the generator; the discriminator is a training
        // artifact (it is the learned loss function).
        match &self.gen {
            Some(_) => {
                let mut rng = StdRng::seed_from_u64(0);
                let mut clone = SeqNet::new(self.cfg.hidden, self.cfg.attn, &mut rng);
                // Same architecture ⇒ same size; avoids cloning caches.
                let params = clone.params_mut();
                encoded_size(&params.iter().map(|p| &**p).collect::<Vec<_>>())
            }
            None => 0,
        }
    }

    fn health(&self) -> TrainHealth {
        self.health.clone()
    }

    fn export_state(&mut self) -> Option<Vec<u8>> {
        crate::persist::Persistable::export_bytes(self).ok()
    }

    fn import_state(&mut self, bytes: &[u8]) -> bool {
        crate::persist::Persistable::import_bytes(self, bytes).is_ok()
    }
}

/// A per-task head of the multi-task WFGAN.
struct TaskState {
    attn: TemporalAttention,
    head: Dense,
    disc: SeqNet,
    scaler: MinMaxScaler,
}

/// Multi-task WFGAN: query and resource forecasting share the
/// generator's LSTM (Sec. V-A's MTL design).
pub struct MultiTaskWfgan {
    /// Hyper-parameters (shared by both tasks).
    pub cfg: WfganConfig,
    shared_lstm: Option<Lstm>,
    tasks: Vec<TaskState>,
    history: usize,
}

impl MultiTaskWfgan {
    /// New multi-task WFGAN.
    pub fn new(seed: u64) -> Self {
        Self {
            cfg: WfganConfig { seed, ..WfganConfig::default() },
            shared_lstm: None,
            tasks: Vec::new(),
            history: 0,
        }
    }

    /// Builder: override epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.cfg.epochs = epochs;
        self
    }

    /// Fit jointly on one query trace and one resource trace (Def. 1's
    /// `W = (Q, R)`). Each epoch interleaves batches from both tasks;
    /// shared-LSTM gradients therefore accumulate from both.
    pub fn fit_joint(&mut self, query: &[f64], resource: &[f64], spec: WindowSpec) {
        self.history = spec.history;
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut lstm = Lstm::new(1, self.cfg.hidden, &mut rng);
        self.tasks = (0..2)
            .map(|_| TaskState {
                attn: TemporalAttention::new(self.cfg.hidden, self.cfg.attn, &mut rng),
                head: Dense::new(self.cfg.hidden, 1, Activation::Linear, &mut rng),
                disc: SeqNet::new(self.cfg.hidden, self.cfg.attn, &mut rng),
                scaler: MinMaxScaler::new(),
            })
            .collect();
        let datas: Vec<Option<SupervisedData>> =
            vec![util::prepare(query, spec), util::prepare(resource, spec)];
        for (t, d) in self.tasks.iter_mut().zip(&datas) {
            if let Some(d) = d {
                t.scaler = d.scaler;
            }
        }
        let mut opt_g = Adam::new(self.cfg.lr_g);
        let mut opt_ds: Vec<Adam> = (0..2).map(|_| Adam::new(self.cfg.lr_d)).collect();
        let cfg = self.cfg.clone();
        for _ in 0..cfg.epochs {
            for (ti, data) in datas.iter().enumerate() {
                let Some(data) = data else { continue };
                for idxs in util::batches(data.windows.len(), cfg.batch, cfg.max_examples / 2, &mut rng)
                {
                    let xs = util::window_batch_seq(data, &idxs);
                    let y_real = util::target_batch(data, &idxs);
                    let b = idxs.len();
                    let ones = Mat::from_fn(b, 1, |_, _| 1.0);
                    let zeros = Mat::zeros(b, 1);
                    let task = &mut self.tasks[ti];

                    // Detached generator output for the D update.
                    let x_fake_detached = {
                        let hs = lstm.infer_seq(&xs);
                        task.head.infer(&task.attn.infer(&hs))
                    };
                    let real_seq = Wfgan::append(&xs, &y_real);
                    let logits_real = task.disc.forward(&real_seq);
                    let (_, g_real) = bce_with_logits(&logits_real, &ones);
                    task.disc.backward(&g_real);
                    let fake_seq = Wfgan::append(&xs, &x_fake_detached);
                    let logits_fake = task.disc.forward(&fake_seq);
                    let (_, g_fake) = bce_with_logits(&logits_fake, &zeros);
                    task.disc.backward(&g_fake);
                    let mut dp = task.disc.params_mut();
                    clip_global_norm(&mut dp, cfg.clip);
                    opt_ds[ti].step(&mut dp);

                    // G update through the shared LSTM.
                    let hs = lstm.forward_seq(&xs);
                    let ctx = task.attn.forward(&hs);
                    let x_fake = task.head.forward(&ctx);
                    let fake_seq = Wfgan::append(&xs, &x_fake);
                    let logits = task.disc.forward(&fake_seq);
                    let (_, g_adv) = generator_nonsaturating_loss(&logits);
                    let dxs = task.disc.backward(&g_adv);
                    task.disc.zero_grad();
                    let mut d_value = dxs.last().expect("non-empty sequence").clone();
                    if cfg.supervised_weight > 0.0 {
                        for r in 0..b {
                            let d = 2.0 * cfg.supervised_weight
                                * (x_fake.get(r, 0) - y_real.get(r, 0))
                                / b as f64;
                            let v = d_value.get(r, 0) + d;
                            d_value.set(r, 0, v);
                        }
                    }
                    let dctx = task.head.backward(&d_value);
                    let dhs = task.attn.backward(&dctx);
                    lstm.backward_seq(&dhs);
                    let mut gp = lstm.params_mut();
                    gp.extend(task.attn.params_mut());
                    gp.extend(task.head.params_mut());
                    clip_global_norm(&mut gp, cfg.clip);
                    opt_g.step(&mut gp);
                }
            }
        }
        self.shared_lstm = Some(lstm);
    }

    fn predict_task(&self, task: usize, window: &[f64]) -> f64 {
        assert_eq!(window.len(), self.history, "window length must match fit history");
        let Some(lstm) = &self.shared_lstm else {
            return window.last().copied().unwrap_or(0.0);
        };
        let t = &self.tasks[task];
        let xs = util::window_to_seq(window, &t.scaler);
        let hs = lstm.infer_seq(&xs);
        let out = t.head.infer(&t.attn.infer(&hs));
        t.scaler.inverse(out.get(0, 0))
    }

    /// Forecast the query trace.
    pub fn predict_query(&self, window: &[f64]) -> f64 {
        self.predict_task(0, window)
    }

    /// Forecast the resource trace.
    pub fn predict_resource(&self, window: &[f64]) -> f64 {
        self.predict_task(1, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbaugur_trace::mse;

    fn cycle_series(n: usize) -> Vec<f64> {
        (0..n).map(|i| 100.0 + 80.0 * ((i % 12) as f64 / 12.0 * std::f64::consts::TAU).sin()).collect()
    }

    fn eval_last(m: &impl Forecaster, series: &[f64], from: usize, to: usize, t: usize) -> f64 {
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for target in from..to {
            preds.push(m.predict(&series[target - t..target]));
            truths.push(series[target]);
        }
        mse(&preds, &truths)
    }

    #[test]
    fn wfgan_learns_cycle_with_supervised_aid() {
        let series = cycle_series(500);
        let spec = WindowSpec::new(24, 1);
        let mut gan = Wfgan::new(2).with_epochs(20);
        gan.cfg.max_examples = 400;
        gan.fit(&series[..400], spec);
        let err = eval_last(&gan, &series, 430, 470, 24);
        assert!(err < 400.0, "wfgan mse {err} vs amplitude 80 (var ≈ 3200)");
    }

    #[test]
    fn pure_adversarial_mode_trains_and_stays_finite() {
        let series = cycle_series(300);
        let spec = WindowSpec::new(12, 1);
        let mut gan = Wfgan::new(3).with_epochs(8).with_supervised_weight(0.0);
        gan.cfg.max_examples = 200;
        gan.fit(&series[..250], spec);
        let p = gan.predict(&series[250 - 12..250]);
        assert!(p.is_finite());
        assert!(!gan.loss_history.is_empty());
        assert!(gan.loss_history.iter().all(|(d, g)| d.is_finite() && g.is_finite()));
    }

    #[test]
    fn discriminator_learns_to_score() {
        // Averaged over many windows, the true continuation should look
        // more real to D than the anti-phase (in-range but wrong) value.
        let series = cycle_series(400);
        let spec = WindowSpec::new(12, 1);
        let mut gan = Wfgan::new(4).with_epochs(25).with_supervised_weight(0.2);
        gan.cfg.d_steps = 2;
        gan.cfg.max_examples = 300;
        gan.fit(&series[..350], spec);
        let mut p_true_sum = 0.0;
        let mut p_wrong_sum = 0.0;
        let mut n = 0.0;
        for target in 352..390 {
            let window = &series[target - 12..target];
            let truth = series[target];
            let anti_phase = series[target - 6]; // half a period away
            p_true_sum += gan.discriminator_p_real(window, truth);
            p_wrong_sum += gan.discriminator_p_real(window, anti_phase);
            n += 1.0;
        }
        assert!(
            p_true_sum / n > p_wrong_sum / n,
            "mean p(real|truth) {} should beat mean p(real|anti-phase) {}",
            p_true_sum / n,
            p_wrong_sum / n
        );
    }

    #[test]
    fn divergent_gan_is_guarded() {
        let series = cycle_series(200);
        let mut gan = Wfgan::new(0).with_epochs(3);
        gan.cfg.lr_g = f64::INFINITY;
        gan.cfg.lr_d = f64::INFINITY;
        gan.cfg.max_examples = 100;
        gan.cfg.guard.max_retries = 1;
        gan.fit(&series, WindowSpec::new(10, 1));
        assert!(gan.health().is_degraded(), "health: {:?}", gan.health());
        assert!(gan.predict(&series[150..160]).is_finite());
    }

    #[test]
    fn unfit_model_falls_back() {
        let mut gan = Wfgan::new(0);
        gan.fit(&[1.0], WindowSpec::new(8, 1));
        gan.history = 2;
        assert_eq!(gan.predict(&[2.0, 6.0]), 6.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let series = cycle_series(200);
        let spec = WindowSpec::new(10, 1);
        let mut a = Wfgan::new(9).with_epochs(2);
        a.cfg.max_examples = 100;
        let mut b = Wfgan::new(9).with_epochs(2);
        b.cfg.max_examples = 100;
        a.fit(&series, spec);
        b.fit(&series, spec);
        let w = &series[150..160];
        assert_eq!(a.predict(w), b.predict(w));
    }

    #[test]
    fn multitask_predicts_both_tasks() {
        let query = cycle_series(300);
        let resource: Vec<f64> =
            (0..300).map(|i| 0.5 + 0.3 * ((i % 12) as f64 / 12.0 * std::f64::consts::TAU).cos()).collect();
        let spec = WindowSpec::new(12, 1);
        let mut mt = MultiTaskWfgan::new(5).with_epochs(6);
        mt.cfg.max_examples = 200;
        mt.fit_joint(&query[..250], &resource[..250], spec);
        let qw = &query[238..250];
        let rw = &resource[238..250];
        let pq = mt.predict_query(qw);
        let pr = mt.predict_resource(rw);
        assert!(pq.is_finite() && pr.is_finite());
        // Tasks live on very different scales; each prediction should be
        // in its own task's ballpark.
        assert!((0.0..=400.0).contains(&pq), "query pred {pq}");
        assert!((-1.0..=2.0).contains(&pr), "resource pred {pr}");
    }

    #[test]
    fn storage_reports_generator_only() {
        let series = cycle_series(120);
        let mut gan = Wfgan::new(0).with_epochs(1);
        gan.cfg.max_examples = 50;
        gan.fit(&series, WindowSpec::new(10, 1));
        let lstm = 4 * 30 * (1 + 30 + 1);
        let attn = 30 * 16 + 16 + 16;
        let head = 30 + 1;
        assert_eq!(gan.storage_bytes(), 12 + 8 * 8 + (lstm + attn + head) * 8);
    }
}
