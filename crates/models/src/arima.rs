//! ARIMA(p, d, q) fit by the Hannan–Rissanen two-stage regression.
//!
//! The paper's baseline uses (p, d, q) = (2, 1, 2). Stage 1 fits a long
//! autoregression to estimate innovations; stage 2 regresses the
//! (differenced) series on its own lags and the estimated innovations,
//! which is a consistent estimator of the ARMA coefficients and avoids
//! iterative likelihood optimization.

use crate::forecaster::Forecaster;
use crate::lr::solve;
use dbaugur_trace::WindowSpec;

/// ARIMA forecaster.
#[derive(Debug, Clone)]
pub struct Arima {
    /// AR order `p`.
    pub p: usize,
    /// Differencing order `d` (0 or 1).
    pub d: usize,
    /// MA order `q`.
    pub q: usize,
    /// Fitted AR coefficients φ₁…φ_p.
    phi: Vec<f64>,
    /// Fitted MA coefficients θ₁…θ_q.
    theta: Vec<f64>,
    /// Fitted intercept.
    c: f64,
    horizon: usize,
    history: usize,
}

impl Arima {
    /// ARIMA with the given orders.
    ///
    /// # Panics
    /// Panics unless `d ≤ 1` (the paper needs only d = 1).
    pub fn new(p: usize, d: usize, q: usize) -> Self {
        assert!(d <= 1, "only d in {{0, 1}} is supported");
        Self { p, d, q, phi: Vec::new(), theta: Vec::new(), c: 0.0, horizon: 1, history: 0 }
    }

    /// The paper's configuration (2, 1, 2).
    pub fn paper_default() -> Self {
        Self::new(2, 1, 2)
    }

    /// Fitted `(phi, theta, intercept)` (empty before fit).
    pub fn coefficients(&self) -> (&[f64], &[f64], f64) {
        (&self.phi, &self.theta, self.c)
    }

    fn difference(&self, x: &[f64]) -> Vec<f64> {
        if self.d == 0 {
            x.to_vec()
        } else {
            x.windows(2).map(|w| w[1] - w[0]).collect()
        }
    }

    /// Ridge least squares `X w = y` with rows given by a lag extractor.
    fn regress(rows: &[Vec<f64>], ys: &[f64], lambda: f64) -> Vec<f64> {
        let d = rows[0].len();
        let mut xtx = vec![0.0; d * d];
        let mut xty = vec![0.0; d];
        for (r, &y) in rows.iter().zip(ys) {
            for i in 0..d {
                xty[i] += r[i] * y;
                for j in i..d {
                    xtx[i * d + j] += r[i] * r[j];
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                xtx[i * d + j] = xtx[j * d + i];
            }
            xtx[i * d + i] += lambda * rows.len() as f64;
        }
        solve(xtx, xty, d).unwrap_or_else(|| vec![0.0; d])
    }

    /// Stage 1: long-AR residuals of `y`.
    fn long_ar_residuals(y: &[f64], m: usize) -> Vec<f64> {
        if y.len() <= m + 1 {
            return vec![0.0; y.len()];
        }
        let mut rows = Vec::with_capacity(y.len() - m);
        let mut ys = Vec::with_capacity(y.len() - m);
        for t in m..y.len() {
            let mut row = Vec::with_capacity(m + 1);
            for i in 1..=m {
                row.push(y[t - i]);
            }
            row.push(1.0);
            rows.push(row);
            ys.push(y[t]);
        }
        let w = Self::regress(&rows, &ys, 1e-4);
        let mut resid = vec![0.0; y.len()];
        for t in m..y.len() {
            let mut pred = w[m];
            for i in 1..=m {
                pred += w[i - 1] * y[t - i];
            }
            resid[t] = y[t] - pred;
        }
        resid
    }

    /// Replay the fitted ARMA over `y` to reconstruct innovations.
    fn replay_residuals(&self, y: &[f64]) -> Vec<f64> {
        let start = self.p.max(self.q);
        let mut e = vec![0.0; y.len()];
        for t in start..y.len() {
            let mut pred = self.c;
            for (i, &ph) in self.phi.iter().enumerate() {
                pred += ph * y[t - 1 - i];
            }
            for (j, &th) in self.theta.iter().enumerate() {
                pred += th * e[t - 1 - j];
            }
            e[t] = y[t] - pred;
        }
        e
    }
}

impl Forecaster for Arima {
    fn name(&self) -> &'static str {
        "ARIMA"
    }

    fn fit(&mut self, train: &[f64], spec: WindowSpec) {
        self.horizon = spec.horizon;
        self.history = spec.history;
        let y = self.difference(train);
        let start = self.p.max(self.q);
        if y.len() < start + 8 {
            self.phi = vec![0.0; self.p];
            self.theta = vec![0.0; self.q];
            self.c = 0.0;
            return;
        }
        let m = (self.p + self.q + 5).min(y.len() / 4).max(1);
        let e = Self::long_ar_residuals(&y, m);
        // Stage 2 design: [y lags | e lags | 1].
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let from = start.max(m);
        for t in from..y.len() {
            let mut row = Vec::with_capacity(self.p + self.q + 1);
            for i in 1..=self.p {
                row.push(y[t - i]);
            }
            for j in 1..=self.q {
                row.push(e[t - j]);
            }
            row.push(1.0);
            rows.push(row);
            ys.push(y[t]);
        }
        let w = Self::regress(&rows, &ys, 1e-4);
        self.phi = w[..self.p].to_vec();
        self.theta = w[self.p..self.p + self.q].to_vec();
        self.c = w[self.p + self.q];
        // Guard against explosive AR fits: shrink toward stability.
        let ar_mass: f64 = self.phi.iter().map(|v| v.abs()).sum();
        if ar_mass > 0.98 {
            let s = 0.98 / ar_mass;
            for v in &mut self.phi {
                *v *= s;
            }
        }
    }

    fn predict(&self, window: &[f64]) -> f64 {
        assert_eq!(window.len(), self.history, "window length must match fit history");
        let y = self.difference(window);
        if y.len() < self.p.max(self.q) {
            return window.last().copied().unwrap_or(0.0);
        }
        let mut e = self.replay_residuals(&y);
        let mut ys = y;
        let mut forecast_sum = 0.0;
        for _ in 0..self.horizon {
            let t = ys.len();
            let mut pred = self.c;
            for (i, &ph) in self.phi.iter().enumerate() {
                if t > i {
                    pred += ph * ys[t - 1 - i];
                }
            }
            for (j, &th) in self.theta.iter().enumerate() {
                if t > j {
                    pred += th * e[t - 1 - j];
                }
            }
            ys.push(pred);
            e.push(0.0); // future innovations have expectation 0
            forecast_sum += pred;
        }
        if self.d == 0 {
            *ys.last().expect("non-empty forecast")
        } else {
            window.last().copied().unwrap_or(0.0) + forecast_sum
        }
    }

    fn storage_bytes(&self) -> usize {
        (self.phi.len() + self.theta.len() + 1) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbaugur_trace::mse;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Generate an AR(1)-with-drift series (so ARIMA(2,1,2) can model it).
    fn random_walk_with_drift(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = vec![10.0];
        for _ in 1..n {
            let step = 0.5 + rng.gen_range(-1.0..1.0);
            x.push(x.last().expect("non-empty") + step);
        }
        x
    }

    #[test]
    fn recovers_ar_structure_in_differences() {
        // Δx_t = 0.6 Δx_{t-1} + small noise -> φ₁ ≈ 0.6 after fitting.
        let mut rng = StdRng::seed_from_u64(1);
        let mut dx = vec![1.0];
        for _ in 1..600 {
            let v = 0.6 * dx.last().expect("non-empty") + rng.gen_range(-0.05..0.05);
            dx.push(v);
        }
        let mut x = vec![0.0];
        for d in &dx {
            x.push(x.last().expect("non-empty") + d);
        }
        let mut ar = Arima::new(1, 1, 0);
        ar.fit(&x, WindowSpec::new(30, 1));
        let (phi, _, _) = ar.coefficients();
        assert!((phi[0] - 0.6).abs() < 0.1, "phi {phi:?}");
    }

    #[test]
    fn beats_naive_on_drifting_walk() {
        let series = random_walk_with_drift(2, 400);
        let split = 300;
        let spec = WindowSpec::new(30, 5);
        let mut ar = Arima::paper_default();
        ar.fit(&series[..split], spec);
        let mut preds = Vec::new();
        let mut naive = Vec::new();
        let mut truths = Vec::new();
        for target in split..series.len() {
            let end = target - spec.horizon + 1;
            let start = end - spec.history;
            let window = &series[start..end];
            preds.push(ar.predict(window));
            naive.push(window[window.len() - 1]);
            truths.push(series[target]);
        }
        let m_ar = mse(&preds, &truths);
        let m_naive = mse(&naive, &truths);
        assert!(
            m_ar < m_naive,
            "drift-aware ARIMA ({m_ar:.3}) should beat last-value ({m_naive:.3}) at horizon 5"
        );
    }

    #[test]
    fn constant_series_is_fixed_point() {
        let series = vec![5.0; 200];
        let mut ar = Arima::paper_default();
        ar.fit(&series, WindowSpec::new(20, 3));
        let pred = ar.predict(&[5.0; 20]);
        assert!((pred - 5.0).abs() < 1e-6, "got {pred}");
    }

    #[test]
    fn short_training_degrades_gracefully() {
        let mut ar = Arima::paper_default();
        ar.fit(&[1.0, 2.0, 3.0], WindowSpec::new(3, 1));
        let pred = ar.predict(&[1.0, 2.0, 3.0]);
        assert!(pred.is_finite());
    }

    #[test]
    fn d_zero_works_on_stationary_series() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = vec![0.0];
        for _ in 1..500 {
            let v = 0.7 * x.last().expect("non-empty") + rng.gen_range(-0.1..0.1);
            x.push(v);
        }
        let mut ar = Arima::new(1, 0, 0);
        ar.fit(&x, WindowSpec::new(10, 1));
        let (phi, _, _) = ar.coefficients();
        assert!((phi[0] - 0.7).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "only d in")]
    fn d_two_rejected() {
        Arima::new(2, 2, 1);
    }

    #[test]
    fn explosive_fit_is_stabilized() {
        // A ramp makes the unregularized AR want φ ≈ 1.
        let series: Vec<f64> = (0..200).map(|i| (i * i) as f64 * 0.01).collect();
        let mut ar = Arima::paper_default();
        ar.fit(&series, WindowSpec::new(20, 10));
        let (phi, _, _) = ar.coefficients();
        assert!(phi.iter().map(|v| v.abs()).sum::<f64>() <= 0.981);
        let pred = ar.predict(&series[180..200]);
        assert!(pred.is_finite());
    }
}
