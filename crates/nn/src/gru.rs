//! GRU (gated recurrent unit) with full backpropagation-through-time.
//!
//! Not used by the paper's models (which standardize on LSTM), but a
//! standard alternative recurrent cell for the substrate: fewer
//! parameters per hidden unit (3 gates vs 4) and often comparable
//! accuracy on short windows. `GruForecaster` in `dbaugur-models` wires
//! it into the zoo for extended comparisons.
//!
//! Gate layout in the fused matrices is `[r | z | n]` (reset, update,
//! candidate), each `hidden` columns wide, with separate input-side and
//! hidden-side biases as in cuDNN/PyTorch:
//!
//! ```text
//! r = σ(x·Wx_r + bx_r + h·Wh_r + bh_r)
//! z = σ(x·Wx_z + bx_z + h·Wh_z + bh_z)
//! n = tanh(x·Wx_n + bx_n + r ⊙ (h·Wh_n + bh_n))
//! h' = (1 − z) ⊙ n + z ⊙ h
//! ```

use crate::activation::{sigmoid, tanh};
use crate::init::xavier;
use crate::mat::Mat;
use crate::param::{HasParams, Param};
use rand::rngs::StdRng;

#[derive(Debug, Clone)]
struct StepCache {
    r: Mat,
    z: Mat,
    n: Mat,
    /// `h_prev·Wh_n + bh_n` before the reset gate multiplies it.
    hh_n: Mat,
    h_prev: Mat,
}

/// A single GRU layer over time-major sequences.
#[derive(Debug, Clone)]
pub struct Gru {
    /// Input weights, `input × 3·hidden`.
    pub wx: Param,
    /// Recurrent weights, `hidden × 3·hidden`.
    pub wh: Param,
    /// Input-side bias, `1 × 3·hidden`.
    pub bx: Param,
    /// Hidden-side bias, `1 × 3·hidden`.
    pub bh: Param,
    hidden: usize,
    input: usize,
    caches: Vec<StepCache>,
    inputs: Vec<Mat>,
}

fn col_block(m: &Mat, k: usize, hidden: usize) -> Mat {
    Mat::from_fn(m.rows(), hidden, |r, c| m.get(r, k * hidden + c))
}

fn add_col_block(m: &mut Mat, k: usize, hidden: usize, block: &Mat) {
    for r in 0..m.rows() {
        for c in 0..hidden {
            let v = m.get(r, k * hidden + c) + block.get(r, c);
            m.set(r, k * hidden + c, v);
        }
    }
}

impl Gru {
    /// New GRU layer.
    pub fn new(input: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Self {
            wx: Param::new(xavier(rng, input, 3 * hidden)),
            wh: Param::new(xavier(rng, hidden, 3 * hidden)),
            bx: Param::new(Mat::zeros(1, 3 * hidden)),
            bh: Param::new(Mat::zeros(1, 3 * hidden)),
            hidden,
            input,
            caches: Vec::new(),
            inputs: Vec::new(),
        }
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    fn step(&self, x: &Mat, h_prev: &Mat) -> (Mat, StepCache) {
        let hd = self.hidden;
        let mut ax = x.matmul(&self.wx.w);
        ax.add_row_broadcast(&self.bx.w);
        let mut ah = h_prev.matmul(&self.wh.w);
        ah.add_row_broadcast(&self.bh.w);
        let r = Mat::from_fn(x.rows(), hd, |i, j| sigmoid(ax.get(i, j) + ah.get(i, j)));
        let z =
            Mat::from_fn(x.rows(), hd, |i, j| sigmoid(ax.get(i, hd + j) + ah.get(i, hd + j)));
        let hh_n = col_block(&ah, 2, hd);
        let n = Mat::from_fn(x.rows(), hd, |i, j| {
            tanh(ax.get(i, 2 * hd + j) + r.get(i, j) * hh_n.get(i, j))
        });
        let h = Mat::from_fn(x.rows(), hd, |i, j| {
            (1.0 - z.get(i, j)) * n.get(i, j) + z.get(i, j) * h_prev.get(i, j)
        });
        (h, StepCache { r, z, n, hh_n, h_prev: h_prev.clone() })
    }

    /// Run over a sequence, returning every hidden state; caches for
    /// BPTT.
    ///
    /// # Panics
    /// Panics on an empty sequence or input-width mismatch.
    pub fn forward_seq(&mut self, xs: &[Mat]) -> Vec<Mat> {
        assert!(!xs.is_empty(), "GRU needs at least one timestep");
        let batch = xs[0].rows();
        self.caches.clear();
        self.inputs = xs.to_vec();
        let mut h = Mat::zeros(batch, self.hidden);
        let mut hs = Vec::with_capacity(xs.len());
        for x in xs {
            assert_eq!(x.cols(), self.input, "GRU input width mismatch");
            let (nh, cache) = self.step(x, &h);
            hs.push(nh.clone());
            self.caches.push(cache);
            h = nh;
        }
        hs
    }

    /// Inference-only forward.
    pub fn infer_seq(&self, xs: &[Mat]) -> Vec<Mat> {
        assert!(!xs.is_empty(), "GRU needs at least one timestep");
        let batch = xs[0].rows();
        let mut h = Mat::zeros(batch, self.hidden);
        let mut hs = Vec::with_capacity(xs.len());
        for x in xs {
            let (nh, _) = self.step(x, &h);
            hs.push(nh.clone());
            h = nh;
        }
        hs
    }

    /// BPTT over the cached sequence; returns per-step input gradients.
    ///
    /// # Panics
    /// Panics if not preceded by a matching `forward_seq`.
    pub fn backward_seq(&mut self, grad_hs: &[Mat]) -> Vec<Mat> {
        assert_eq!(grad_hs.len(), self.caches.len(), "backward length mismatch");
        let t_len = grad_hs.len();
        let batch = grad_hs[0].rows();
        let hd = self.hidden;
        let mut dh_next = Mat::zeros(batch, hd);
        let mut dxs = vec![Mat::zeros(batch, self.input); t_len];
        for t in (0..t_len).rev() {
            let c = &self.caches[t];
            let mut dh = grad_hs[t].clone();
            dh.add_assign(&dh_next);
            // h' = (1−z)·n + z·h_prev
            let dz = Mat::from_fn(batch, hd, |i, j| {
                dh.get(i, j) * (c.h_prev.get(i, j) - c.n.get(i, j))
            });
            let dn = Mat::from_fn(batch, hd, |i, j| dh.get(i, j) * (1.0 - c.z.get(i, j)));
            let mut dh_prev = Mat::from_fn(batch, hd, |i, j| dh.get(i, j) * c.z.get(i, j));
            // Through the gate nonlinearities.
            let da_n = Mat::from_fn(batch, hd, |i, j| {
                let n = c.n.get(i, j);
                dn.get(i, j) * (1.0 - n * n)
            });
            let dr = Mat::from_fn(batch, hd, |i, j| da_n.get(i, j) * c.hh_n.get(i, j));
            let dhh_n = Mat::from_fn(batch, hd, |i, j| da_n.get(i, j) * c.r.get(i, j));
            let da_r = Mat::from_fn(batch, hd, |i, j| {
                let r = c.r.get(i, j);
                dr.get(i, j) * r * (1.0 - r)
            });
            let da_z = Mat::from_fn(batch, hd, |i, j| {
                let z = c.z.get(i, j);
                dz.get(i, j) * z * (1.0 - z)
            });
            // Fused input-side gradient: [da_r | da_z | da_n].
            let mut da_x = Mat::zeros(batch, 3 * hd);
            add_col_block(&mut da_x, 0, hd, &da_r);
            add_col_block(&mut da_x, 1, hd, &da_z);
            add_col_block(&mut da_x, 2, hd, &da_n);
            // Fused hidden-side gradient: [da_r | da_z | dhh_n].
            let mut da_h = Mat::zeros(batch, 3 * hd);
            add_col_block(&mut da_h, 0, hd, &da_r);
            add_col_block(&mut da_h, 1, hd, &da_z);
            add_col_block(&mut da_h, 2, hd, &dhh_n);

            self.wx.g.add_assign(&self.inputs[t].t_matmul(&da_x));
            self.bx.g.add_assign(&da_x.sum_rows());
            self.wh.g.add_assign(&c.h_prev.t_matmul(&da_h));
            self.bh.g.add_assign(&da_h.sum_rows());
            dxs[t] = da_x.matmul_t(&self.wx.w);
            dh_prev.add_assign(&da_h.matmul_t(&self.wh.w));
            dh_next = dh_prev;
        }
        dxs
    }
}

impl HasParams for Gru {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.bx, &mut self.bh]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::grad_check_seq;
    use rand::SeedableRng;

    fn seq(t: usize, batch: usize, dim: usize) -> Vec<Mat> {
        (0..t)
            .map(|ti| Mat::from_fn(batch, dim, |r, c| ((ti * 5 + r * 2 + c) as f64 * 0.19).sin()))
            .collect()
    }

    #[test]
    fn forward_shapes_and_infer_agreement() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gru = Gru::new(2, 5, &mut rng);
        let xs = seq(6, 3, 2);
        let hs = gru.forward_seq(&xs);
        assert_eq!(hs.len(), 6);
        assert_eq!(hs[0].shape(), (3, 5));
        let hs2 = gru.infer_seq(&xs);
        for (a, b) in hs.iter().zip(&hs2) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn hidden_states_bounded() {
        // h' is a convex combination of h_prev and the tanh candidate ⇒
        // |h| ≤ 1 (tanh rounds to exactly ±1.0 in f64 for huge inputs).
        let mut rng = StdRng::seed_from_u64(2);
        let mut gru = Gru::new(1, 4, &mut rng);
        let xs: Vec<Mat> = (0..25).map(|i| Mat::from_vec(1, 1, vec![(i as f64) * 100.0])).collect();
        for h in gru.forward_seq(&xs) {
            assert!(h.as_slice().iter().all(|v| v.abs() <= 1.0 && v.is_finite()));
        }
    }

    #[test]
    fn bptt_gradients_check_out_last_step() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gru = Gru::new(2, 3, &mut rng);
        let xs = seq(5, 2, 2);
        grad_check_seq(
            &mut gru,
            &xs,
            |m, xs| m.forward_seq(xs).pop().expect("non-empty"),
            |m, g| {
                let mut grads = vec![Mat::zeros(g.rows(), g.cols()); 5];
                grads[4] = g.clone();
                m.backward_seq(&grads)
            },
            1e-5,
            5e-5,
        );
    }

    #[test]
    fn bptt_gradients_check_out_all_steps() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut gru = Gru::new(1, 3, &mut rng);
        let xs = seq(4, 2, 1);
        grad_check_seq(
            &mut gru,
            &xs,
            |m, xs| {
                let hs = m.forward_seq(xs);
                let mut acc = Mat::zeros(hs[0].rows(), hs[0].cols());
                for h in &hs {
                    acc.add_assign(h);
                }
                acc
            },
            |m, g| m.backward_seq(&vec![g.clone(); 4]),
            1e-5,
            5e-5,
        );
    }

    #[test]
    fn param_count_is_three_quarters_of_lstm() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut gru = Gru::new(7, 30, &mut rng);
        let mut lstm = crate::lstm::Lstm::new(7, 30, &mut rng);
        // GRU: 3H(I + H + 2); LSTM: 4H(I + H + 1).
        assert_eq!(gru.num_params(), 3 * 30 * (7 + 30 + 2));
        assert!(gru.num_params() < lstm.num_params());
    }

    #[test]
    #[should_panic(expected = "at least one timestep")]
    fn empty_sequence_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        Gru::new(1, 2, &mut rng).forward_seq(&[]);
    }
}
