//! LSTM with full backpropagation-through-time.
//!
//! The paper: "WFGAN adopts a modified RNN called LSTM … made up of a
//! number of memory units that can selectively cache the historical
//! information for current prediction." Both the generator and the
//! discriminator use one LSTM layer with 30 cells followed by a temporal
//! attention layer (Section VI-A).
//!
//! Gate layout in the fused matrices is `[i | f | g | o]` (input, forget,
//! candidate, output), each `hidden` columns wide.

use crate::activation::{sigmoid, tanh};
use crate::init::xavier;
use crate::mat::Mat;
use crate::param::{HasParams, Param};
use rand::rngs::StdRng;

/// Per-timestep cache for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    i: Mat,
    f: Mat,
    g: Mat,
    o: Mat,
    tanh_c: Mat,
    h_prev: Mat,
    c_prev: Mat,
}

/// A single LSTM layer over time-major sequences (`T` matrices of
/// `batch × input`).
#[derive(Debug, Clone)]
pub struct Lstm {
    /// Input weights, `input × 4·hidden`.
    pub wx: Param,
    /// Recurrent weights, `hidden × 4·hidden`.
    pub wh: Param,
    /// Bias, `1 × 4·hidden` (forget-gate block initialized to 1).
    pub b: Param,
    hidden: usize,
    input: usize,
    caches: Vec<StepCache>,
    inputs: Vec<Mat>,
}

/// Copy the `k`-th `hidden`-wide column block out of a fused matrix.
fn col_block(m: &Mat, k: usize, hidden: usize) -> Mat {
    Mat::from_fn(m.rows(), hidden, |r, c| m.get(r, k * hidden + c))
}

/// Add `block` into the `k`-th column block of the fused matrix `m`.
fn add_col_block(m: &mut Mat, k: usize, hidden: usize, block: &Mat) {
    for r in 0..m.rows() {
        for c in 0..hidden {
            let v = m.get(r, k * hidden + c) + block.get(r, c);
            m.set(r, k * hidden + c, v);
        }
    }
}

impl Lstm {
    /// New LSTM layer; the forget-gate bias starts at 1.0 (standard
    /// remember-by-default initialization).
    pub fn new(input: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let mut b = Mat::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            b.set(0, c, 1.0);
        }
        Self {
            wx: Param::new(xavier(rng, input, 4 * hidden)),
            wh: Param::new(xavier(rng, hidden, 4 * hidden)),
            b: Param::new(b),
            hidden,
            input,
            caches: Vec::new(),
            inputs: Vec::new(),
        }
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Run the layer over a sequence, returning every hidden state
    /// `h_1 … h_T` (each `batch × hidden`). Caches for BPTT.
    ///
    /// # Panics
    /// Panics on an empty sequence or input-width mismatch.
    pub fn forward_seq(&mut self, xs: &[Mat]) -> Vec<Mat> {
        assert!(!xs.is_empty(), "LSTM needs at least one timestep");
        let batch = xs[0].rows();
        self.caches.clear();
        self.inputs = xs.to_vec();
        let mut h = Mat::zeros(batch, self.hidden);
        let mut c = Mat::zeros(batch, self.hidden);
        let mut hs = Vec::with_capacity(xs.len());
        for x in xs {
            assert_eq!(x.cols(), self.input, "LSTM input width mismatch");
            let (nh, nc, cache) = self.step(x, &h, &c);
            hs.push(nh.clone());
            self.caches.push(cache);
            h = nh;
            c = nc;
        }
        hs
    }

    /// Inference-only forward (no caches kept).
    pub fn infer_seq(&self, xs: &[Mat]) -> Vec<Mat> {
        assert!(!xs.is_empty(), "LSTM needs at least one timestep");
        let batch = xs[0].rows();
        let mut h = Mat::zeros(batch, self.hidden);
        let mut c = Mat::zeros(batch, self.hidden);
        let mut hs = Vec::with_capacity(xs.len());
        for x in xs {
            let (nh, nc, _) = self.step(x, &h, &c);
            hs.push(nh.clone());
            h = nh;
            c = nc;
        }
        hs
    }

    fn step(&self, x: &Mat, h_prev: &Mat, c_prev: &Mat) -> (Mat, Mat, StepCache) {
        let mut a = x.matmul(&self.wx.w);
        a.add_assign(&h_prev.matmul(&self.wh.w));
        a.add_row_broadcast(&self.b.w);
        let hd = self.hidden;
        let i = col_block(&a, 0, hd).map(sigmoid);
        let f = col_block(&a, 1, hd).map(sigmoid);
        let g = col_block(&a, 2, hd).map(tanh);
        let o = col_block(&a, 3, hd).map(sigmoid);
        let c = f.hadamard(c_prev);
        let mut c = c;
        c.add_assign(&i.hadamard(&g));
        let tanh_c = c.map(tanh);
        let h = o.hadamard(&tanh_c);
        (
            h,
            c,
            StepCache {
                i,
                f,
                g,
                o,
                tanh_c,
                h_prev: h_prev.clone(),
                c_prev: c_prev.clone(),
            },
        )
    }

    /// BPTT: `grad_hs[t]` is `∂L/∂h_t` from downstream layers (zero
    /// matrices for unused steps). Returns `∂L/∂x_t` per step and
    /// accumulates parameter gradients.
    ///
    /// # Panics
    /// Panics if not preceded by `forward_seq` with the same length.
    pub fn backward_seq(&mut self, grad_hs: &[Mat]) -> Vec<Mat> {
        assert_eq!(grad_hs.len(), self.caches.len(), "backward length mismatch");
        let t_len = grad_hs.len();
        let batch = grad_hs[0].rows();
        let hd = self.hidden;
        let mut dh_next = Mat::zeros(batch, hd);
        let mut dc_next = Mat::zeros(batch, hd);
        let mut dxs = vec![Mat::zeros(batch, self.input); t_len];
        for t in (0..t_len).rev() {
            let cache = &self.caches[t];
            let mut dh = grad_hs[t].clone();
            dh.add_assign(&dh_next);
            // h = o ⊙ tanh(c)
            let do_ = dh.hadamard(&cache.tanh_c);
            let mut dc = dh.hadamard(&cache.o);
            for idx in 0..dc.len() {
                let tc = cache.tanh_c.as_slice()[idx];
                dc.as_mut_slice()[idx] *= 1.0 - tc * tc;
            }
            dc.add_assign(&dc_next);
            // c = f ⊙ c_prev + i ⊙ g
            let di = dc.hadamard(&cache.g);
            let df = dc.hadamard(&cache.c_prev);
            let dg = dc.hadamard(&cache.i);
            dc_next = dc.hadamard(&cache.f);
            // Through the gate nonlinearities.
            let da_i = Mat::from_fn(batch, hd, |r, c| {
                di.get(r, c) * cache.i.get(r, c) * (1.0 - cache.i.get(r, c))
            });
            let da_f = Mat::from_fn(batch, hd, |r, c| {
                df.get(r, c) * cache.f.get(r, c) * (1.0 - cache.f.get(r, c))
            });
            let da_g = Mat::from_fn(batch, hd, |r, c| {
                let g = cache.g.get(r, c);
                dg.get(r, c) * (1.0 - g * g)
            });
            let da_o = Mat::from_fn(batch, hd, |r, c| {
                do_.get(r, c) * cache.o.get(r, c) * (1.0 - cache.o.get(r, c))
            });
            let mut da = Mat::zeros(batch, 4 * hd);
            add_col_block(&mut da, 0, hd, &da_i);
            add_col_block(&mut da, 1, hd, &da_f);
            add_col_block(&mut da, 2, hd, &da_g);
            add_col_block(&mut da, 3, hd, &da_o);
            // Parameter gradients.
            self.wx.g.add_assign(&self.inputs[t].t_matmul(&da));
            self.wh.g.add_assign(&cache.h_prev.t_matmul(&da));
            self.b.g.add_assign(&da.sum_rows());
            // Input and recurrent gradients.
            dxs[t] = da.matmul_t(&self.wx.w);
            dh_next = da.matmul_t(&self.wh.w);
        }
        dxs
    }
}

impl HasParams for Lstm {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::grad_check_seq;
    use rand::SeedableRng;

    fn seq(t: usize, batch: usize, dim: usize) -> Vec<Mat> {
        (0..t)
            .map(|ti| Mat::from_fn(batch, dim, |r, c| ((ti * 7 + r * 3 + c) as f64 * 0.13).sin()))
            .collect()
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lstm = Lstm::new(2, 5, &mut rng);
        let xs = seq(6, 3, 2);
        let hs = lstm.forward_seq(&xs);
        assert_eq!(hs.len(), 6);
        assert_eq!(hs[0].shape(), (3, 5));
        let hs2 = lstm.infer_seq(&xs);
        for (a, b) in hs.iter().zip(&hs2) {
            assert_eq!(a, b, "infer_seq must match forward_seq");
        }
    }

    #[test]
    fn hidden_states_are_bounded() {
        // h = o ⊙ tanh(c) with o ∈ (0,1) ⇒ |h| < 1.
        let mut rng = StdRng::seed_from_u64(2);
        let mut lstm = Lstm::new(1, 4, &mut rng);
        let xs: Vec<Mat> = (0..20).map(|i| Mat::from_vec(1, 1, vec![i as f64 * 10.0])).collect();
        for h in lstm.forward_seq(&xs) {
            assert!(h.as_slice().iter().all(|v| v.abs() < 1.0));
        }
    }

    #[test]
    fn bptt_gradients_check_out_last_step_loss() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let xs = seq(5, 2, 2);
        grad_check_seq(
            &mut lstm,
            &xs,
            |m, xs| m.forward_seq(xs).pop().expect("non-empty"),
            |m, g| {
                let t = 5;
                let mut grads = vec![Mat::zeros(g.rows(), g.cols()); t];
                grads[t - 1] = g.clone();
                m.backward_seq(&grads)
            },
            1e-5,
            5e-5,
        );
    }

    #[test]
    fn bptt_gradients_check_out_all_steps_loss() {
        // Gradient flowing into every hidden state (the attention case).
        let mut rng = StdRng::seed_from_u64(4);
        let mut lstm = Lstm::new(1, 3, &mut rng);
        let xs = seq(4, 2, 1);
        grad_check_seq(
            &mut lstm,
            &xs,
            |m, xs| {
                // Sum all hidden states to a single matrix output.
                let hs = m.forward_seq(xs);
                let mut acc = Mat::zeros(hs[0].rows(), hs[0].cols());
                for h in &hs {
                    acc.add_assign(h);
                }
                acc
            },
            |m, g| {
                let grads = vec![g.clone(); 4];
                m.backward_seq(&grads)
            },
            1e-5,
            5e-5,
        );
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let lstm = Lstm::new(3, 4, &mut rng);
        for c in 0..16 {
            let expected = if (4..8).contains(&c) { 1.0 } else { 0.0 };
            assert_eq!(lstm.b.w.get(0, c), expected);
        }
    }

    #[test]
    #[should_panic(expected = "at least one timestep")]
    fn empty_sequence_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lstm = Lstm::new(1, 2, &mut rng);
        lstm.forward_seq(&[]);
    }

    #[test]
    fn param_count_matches_formula() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lstm = Lstm::new(7, 30, &mut rng);
        // 4H(I + H + 1)
        assert_eq!(lstm.num_params(), 4 * 30 * (7 + 30 + 1));
    }
}
