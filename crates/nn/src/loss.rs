//! Loss functions returning `(loss, ∂loss/∂input)` pairs.

use crate::activation::sigmoid;
use crate::mat::Mat;

/// Mean squared error over all elements; the gradient is w.r.t. `pred`.
///
/// # Panics
/// Panics on a shape mismatch or empty input.
pub fn mse_loss(pred: &Mat, target: &Mat) -> (f64, Mat) {
    assert_eq!(pred.shape(), target.shape(), "mse shapes must match");
    assert!(!pred.is_empty(), "mse needs at least one element");
    let n = pred.len() as f64;
    let mut grad = Mat::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0;
    for i in 0..pred.len() {
        let d = pred.as_slice()[i] - target.as_slice()[i];
        loss += d * d;
        grad.as_mut_slice()[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Binary cross-entropy on *logits* (numerically stable):
/// `L = max(z, 0) − z·y + log(1 + e^{−|z|})`, gradient `σ(z) − y`.
///
/// This is how both sides of the GAN objective (paper Eqn. 6) are
/// evaluated: the discriminator maximizes `log D(X_real) +
/// log(1 − D(X_fake))`, which is `−BCE` with labels 1 and 0.
///
/// # Panics
/// Panics on a shape mismatch or empty input.
pub fn bce_with_logits(logits: &Mat, labels: &Mat) -> (f64, Mat) {
    assert_eq!(logits.shape(), labels.shape(), "bce shapes must match");
    assert!(!logits.is_empty(), "bce needs at least one element");
    let n = logits.len() as f64;
    let mut grad = Mat::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0;
    for i in 0..logits.len() {
        let z = logits.as_slice()[i];
        let y = labels.as_slice()[i];
        loss += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
        grad.as_mut_slice()[i] = (sigmoid(z) - y) / n;
    }
    (loss / n, grad)
}

/// The non-saturating generator loss `−log D(X_fake)` on logits
/// (Goodfellow's practical variant of Eqn. 5): gradient `σ(z) − 1`.
///
/// Minimizing `log(1 − D(fake))` directly saturates when D is confident;
/// maximizing `log D(fake)` gives the same fixed point with usable
/// gradients, and is what every practical GAN implementation (including
/// Keras reference code) does.
pub fn generator_nonsaturating_loss(logits: &Mat) -> (f64, Mat) {
    let ones = Mat::from_fn(logits.rows(), logits.cols(), |_, _| 1.0);
    bce_with_logits(logits, &ones)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_perfect_prediction() {
        let p = Mat::row_vector(vec![1.0, 2.0]);
        let (l, g) = mse_loss(&p, &p);
        assert_eq!(l, 0.0);
        assert_eq!(g.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn mse_known_gradient() {
        let p = Mat::row_vector(vec![3.0]);
        let t = Mat::row_vector(vec![1.0]);
        let (l, g) = mse_loss(&p, &t);
        assert_eq!(l, 4.0);
        assert_eq!(g.as_slice(), &[4.0]); // 2(3-1)/1
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let t = Mat::row_vector(vec![0.5, -1.0, 2.0]);
        let p = Mat::row_vector(vec![1.0, 0.0, 1.5]);
        let (_, g) = mse_loss(&p, &t);
        let eps = 1e-6;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.as_mut_slice()[i] += eps;
            let (lp, _) = mse_loss(&pp, &t);
            pp.as_mut_slice()[i] -= 2.0 * eps;
            let (lm, _) = mse_loss(&pp, &t);
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - g.as_slice()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn bce_matches_naive_formula_in_safe_range() {
        let z = Mat::row_vector(vec![0.3, -0.7]);
        let y = Mat::row_vector(vec![1.0, 0.0]);
        let (l, _) = bce_with_logits(&z, &y);
        let naive = |z: f64, y: f64| {
            let p = sigmoid(z);
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        };
        let want = (naive(0.3, 1.0) + naive(-0.7, 0.0)) / 2.0;
        assert!((l - want).abs() < 1e-12);
    }

    #[test]
    fn bce_is_stable_at_extreme_logits() {
        let z = Mat::row_vector(vec![1000.0, -1000.0]);
        let y = Mat::row_vector(vec![0.0, 1.0]);
        let (l, g) = bce_with_logits(&z, &y);
        assert!(l.is_finite());
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let y = Mat::row_vector(vec![1.0, 0.0, 1.0]);
        let z = Mat::row_vector(vec![0.2, 1.5, -0.8]);
        let (_, g) = bce_with_logits(&z, &y);
        let eps = 1e-6;
        for i in 0..3 {
            let mut zz = z.clone();
            zz.as_mut_slice()[i] += eps;
            let (lp, _) = bce_with_logits(&zz, &y);
            zz.as_mut_slice()[i] -= 2.0 * eps;
            let (lm, _) = bce_with_logits(&zz, &y);
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - g.as_slice()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn generator_loss_pushes_logits_up() {
        let z = Mat::row_vector(vec![-2.0]);
        let (_, g) = generator_nonsaturating_loss(&z);
        assert!(g.as_slice()[0] < 0.0, "gradient descent should increase the logit");
    }
}
