//! Scalar activations and their derivatives.

/// Logistic sigmoid, numerically stable on both tails.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of sigmoid expressed through its output `s`.
#[inline]
pub fn dsigmoid_from_output(s: f64) -> f64 {
    s * (1.0 - s)
}

/// tanh (thin wrapper for symmetry).
#[inline]
pub fn tanh(x: f64) -> f64 {
    x.tanh()
}

/// Derivative of tanh expressed through its output `t`.
#[inline]
pub fn dtanh_from_output(t: f64) -> f64 {
    1.0 - t * t
}

/// ReLU.
#[inline]
pub fn relu(x: f64) -> f64 {
    if x > 0.0 {
        x
    } else {
        0.0
    }
}

/// Derivative of ReLU w.r.t. its input.
#[inline]
pub fn drelu(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Leaky ReLU with slope `alpha` on the negative side.
#[inline]
pub fn leaky_relu(x: f64, alpha: f64) -> f64 {
    if x > 0.0 {
        x
    } else {
        alpha * x
    }
}

/// Derivative of leaky ReLU.
#[inline]
pub fn dleaky_relu(x: f64, alpha: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else {
        alpha
    }
}

/// The activation menu for [`crate::dense::Dense`] layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (linear output layers).
    Linear,
    /// ReLU.
    Relu,
    /// Leaky ReLU with slope 0.01.
    LeakyRelu,
    /// tanh.
    Tanh,
    /// Sigmoid.
    Sigmoid,
}

impl Activation {
    /// Apply the activation.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Linear => x,
            Activation::Relu => relu(x),
            Activation::LeakyRelu => leaky_relu(x, 0.01),
            Activation::Tanh => tanh(x),
            Activation::Sigmoid => sigmoid(x),
        }
    }

    /// Derivative w.r.t. the pre-activation, given pre-activation `x` and
    /// output `y`.
    #[inline]
    pub fn derivative(self, x: f64, y: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => drelu(x),
            Activation::LeakyRelu => dleaky_relu(x, 0.01),
            Activation::Tanh => dtanh_from_output(y),
            Activation::Sigmoid => dsigmoid_from_output(y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_on_tails() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!(sigmoid(-1000.0).is_finite() && sigmoid(1000.0).is_finite());
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for &x in &[-2.0, -0.5, 0.3, 1.7] {
            for act in [
                Activation::Linear,
                Activation::LeakyRelu,
                Activation::Tanh,
                Activation::Sigmoid,
                Activation::Relu,
            ] {
                let y = act.apply(x);
                let num = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let ana = act.derivative(x, y);
                assert!(
                    (num - ana).abs() < 1e-6,
                    "{act:?} at {x}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn relu_kink() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        assert_eq!(drelu(-1.0), 0.0);
        assert_eq!(drelu(2.0), 1.0);
    }
}
