//! Fully connected layer `y = act(x @ W + b)` with cached backward.

use crate::activation::Activation;
use crate::init::xavier;
use crate::mat::Mat;
use crate::param::{HasParams, Param};
use rand::rngs::StdRng;

/// A dense layer over batched row-vector inputs (`batch × in`).
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight `in × out`.
    pub w: Param,
    /// Bias `1 × out`.
    pub b: Param,
    act: Activation,
    // Forward caches.
    input: Option<Mat>,
    pre: Option<Mat>,
    out: Option<Mat>,
}

impl Dense {
    /// New layer with Xavier-initialized weights.
    pub fn new(input: usize, output: usize, act: Activation, rng: &mut StdRng) -> Self {
        Self {
            w: Param::new(xavier(rng, input, output)),
            b: Param::new(Mat::zeros(1, output)),
            act,
            input: None,
            pre: None,
            out: None,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.w.w.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.w.w.cols()
    }

    /// Forward pass, caching activations for `backward`.
    pub fn forward(&mut self, x: &Mat) -> Mat {
        let mut pre = x.matmul(&self.w.w);
        pre.add_row_broadcast(&self.b.w);
        let out = match self.act {
            Activation::Linear => pre.clone(),
            act => pre.map(|v| act.apply(v)),
        };
        self.input = Some(x.clone());
        self.pre = Some(pre);
        self.out = Some(out.clone());
        out
    }

    /// Inference-only forward (no caches touched).
    pub fn infer(&self, x: &Mat) -> Mat {
        let mut pre = x.matmul(&self.w.w);
        pre.add_row_broadcast(&self.b.w);
        match self.act {
            Activation::Linear => pre,
            act => pre.map(|v| act.apply(v)),
        }
    }

    /// Backward pass: accumulate parameter gradients, return `∂L/∂x`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Mat) -> Mat {
        let input = self.input.as_ref().expect("backward before forward");
        let pre = self.pre.as_ref().expect("backward before forward");
        let out = self.out.as_ref().expect("backward before forward");
        // δ = grad_out ⊙ act'(pre)
        let mut delta = grad_out.clone();
        if self.act != Activation::Linear {
            for i in 0..delta.len() {
                let d = self.act.derivative(pre.as_slice()[i], out.as_slice()[i]);
                delta.as_mut_slice()[i] *= d;
            }
        }
        self.w.g.add_assign(&input.t_matmul(&delta));
        self.b.g.add_assign(&delta.sum_rows());
        delta.matmul_t(&self.w.w)
    }
}

impl HasParams for Dense {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

/// A stack of dense layers (the MLP baseline).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Build from layer widths and one activation for all hidden layers;
    /// the final layer is linear. `widths = [in, h1, ..., out]`.
    ///
    /// # Panics
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], hidden_act: Activation, rng: &mut StdRng) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let mut layers = Vec::with_capacity(widths.len() - 1);
        for i in 0..widths.len() - 1 {
            let act = if i + 2 == widths.len() { Activation::Linear } else { hidden_act };
            layers.push(Dense::new(widths[i], widths[i + 1], act, rng));
        }
        Self { layers }
    }

    /// Training forward.
    pub fn forward(&mut self, x: &Mat) -> Mat {
        let mut h = x.clone();
        for l in &mut self.layers {
            h = l.forward(&h);
        }
        h
    }

    /// Inference forward.
    pub fn infer(&self, x: &Mat) -> Mat {
        let mut h = x.clone();
        for l in &self.layers {
            h = l.infer(&h);
        }
        h
    }

    /// Backward through the stack.
    pub fn backward(&mut self, grad_out: &Mat) -> Mat {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    /// The layers (for inspection).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }
}

impl HasParams for Mlp {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::grad_check;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(4, 3, Activation::Tanh, &mut rng);
        let x = Mat::from_fn(5, 4, |r, c| (r + c) as f64 * 0.1);
        let y = d.forward(&x);
        assert_eq!(y.shape(), (5, 3));
        assert_eq!(d.infer(&x), y, "infer must match forward");
    }

    #[test]
    fn dense_gradients_check_out() {
        for act in [Activation::Linear, Activation::Tanh, Activation::Sigmoid, Activation::LeakyRelu] {
            let mut rng = StdRng::seed_from_u64(3);
            let mut d = Dense::new(3, 2, act, &mut rng);
            let x = Mat::from_fn(4, 3, |r, c| ((r * 3 + c) as f64) * 0.17 - 0.6);
            grad_check(
                &mut d,
                &x,
                |layer, x| layer.forward(x),
                |layer, g| layer.backward(g),
                1e-5,
                2e-5,
            );
        }
    }

    #[test]
    fn mlp_gradients_check_out() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = Mlp::new(&[3, 5, 2], Activation::Tanh, &mut rng);
        let x = Mat::from_fn(3, 3, |r, c| ((r + c) as f64) * 0.2 - 0.3);
        grad_check(
            &mut m,
            &x,
            |m, x| m.forward(x),
            |m, g| m.backward(g),
            1e-5,
            2e-5,
        );
    }

    #[test]
    fn mlp_final_layer_is_linear() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mlp::new(&[2, 4, 1], Activation::Relu, &mut rng);
        // A linear final layer can produce negative outputs even with a
        // ReLU hidden activation.
        let any_negative = (0..20).any(|i| {
            let x = Mat::from_fn(1, 2, |_, c| (i as f64 - 10.0) * (c as f64 + 1.0));
            m.infer(&x).get(0, 0) < 0.0
        });
        assert!(any_negative);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Mlp::new(&[30, 32, 16, 1], Activation::Relu, &mut rng);
        // (30*32 + 32) + (32*16 + 16) + (16*1 + 1)
        assert_eq!(m.num_params(), 30 * 32 + 32 + 32 * 16 + 16 + 16 + 1);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(2, 2, Activation::Linear, &mut rng);
        d.backward(&Mat::zeros(1, 2));
    }
}
