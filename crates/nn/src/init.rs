//! Weight initialization. Xavier/Glorot uniform for tanh/sigmoid layers,
//! He for ReLU stacks. Deterministic per seed, like everything else here.

use crate::mat::Mat;
use rand::rngs::StdRng;
use rand::Rng;

/// Xavier/Glorot uniform: `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier(rng: &mut StdRng, rows: usize, cols: usize) -> Mat {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    Mat::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

/// He/Kaiming uniform for ReLU: `a = sqrt(6 / fan_in)`.
pub fn he(rng: &mut StdRng, rows: usize, cols: usize) -> Mat {
    he_with_fan_in(rng, rows, cols, rows)
}

/// He uniform with an explicit fan-in — needed by convolutions, whose
/// true fan-in is `kernel × in_channels`, not the per-tap matrix height.
pub fn he_with_fan_in(rng: &mut StdRng, rows: usize, cols: usize, fan_in: usize) -> Mat {
    let a = (6.0 / fan_in.max(1) as f64).sqrt();
    Mat::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier(&mut rng, 10, 20);
        let a = (6.0 / 30.0f64).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= a));
        let mut rng2 = StdRng::seed_from_u64(1);
        assert_eq!(m, xavier(&mut rng2, 10, 20));
    }

    #[test]
    fn he_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = he(&mut rng, 600, 2);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.1 + 1e-9));
    }
}
