#![warn(missing_docs)]
//! A minimal f64 neural-network substrate with manual backpropagation.
//!
//! Why hand-rolled: the paper implements its models in Keras/TensorFlow,
//! and WFGAN needs the *alternating adversarial update* of Algorithm 2
//! (D-steps maximizing Eqn. 4, G-steps minimizing Eqn. 5 with gradients
//! flowing through the discriminator into the generator). No mature
//! pure-Rust deep-learning crate supports that training pattern reliably,
//! so this crate provides exactly the pieces the paper's models need:
//!
//! * [`mat::Mat`] — dense row-major f64 matrices with the handful of BLAS
//!   level-3 ops the layers use;
//! * [`dense`] — fully connected layers (the MLP baseline and all heads);
//! * [`lstm`] — an LSTM with full backpropagation-through-time (the
//!   internal structure of both WFGAN's generator and discriminator);
//! * [`attention`] — the temporal attention layer of Eqns. 2–3;
//! * [`conv`] — dilated causal 1-D convolutions and residual TCN blocks;
//! * [`loss`] — MSE and the numerically stable BCE-with-logits the GAN
//!   objective (Eqn. 6) needs;
//! * [`optim`] — SGD and Adam (the paper trains everything with Adam),
//!   plus global-norm gradient clipping;
//! * [`serialize`] — a tiny binary format used to measure the model
//!   storage sizes of Table II.
//!
//! Every layer follows the same contract: `forward` caches whatever the
//! matching `backward` needs; `backward` consumes the output gradient,
//! accumulates parameter gradients into [`param::Param::g`], and returns
//! the input gradient. Correctness is enforced by finite-difference
//! gradient checks in each module's tests (`grad_check`).

pub mod activation;
pub mod attention;
pub mod conv;
pub mod dense;
pub mod gradcheck;
pub mod gru;
pub mod init;
pub mod loss;
pub mod lstm;
pub mod mat;
pub mod optim;
pub mod param;
pub mod serialize;

pub use attention::TemporalAttention;
pub use conv::{CausalConv1d, TcnBlock};
pub use dense::Dense;
pub use gru::Gru;
pub use lstm::Lstm;
pub use mat::Mat;
pub use optim::{clip_global_norm, Adam, Optimizer, Sgd};
pub use param::Param;
