//! Trainable parameters: a value matrix paired with its gradient
//! accumulator.

use crate::mat::Mat;

/// One trainable tensor. `backward` passes accumulate into `g`; the
/// optimizer consumes `g` and the trainer zeroes it between steps.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub w: Mat,
    /// Accumulated gradient (same shape as `w`).
    pub g: Mat,
}

impl Param {
    /// A parameter initialized to `w` with a zero gradient.
    pub fn new(w: Mat) -> Self {
        let g = Mat::zeros(w.rows(), w.cols());
        Self { w, g }
    }

    /// Zero the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.g.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True for an empty parameter (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }
}

/// Anything that exposes trainable parameters.
pub trait HasParams {
    /// Mutable access to every parameter, in a stable order (the Adam
    /// optimizer keys its moment buffers by position).
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Zero all gradient accumulators.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total scalar parameter count.
    fn num_params(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        assert_eq!(p.g.as_slice(), &[0.0; 4]);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Mat::zeros(1, 2));
        p.g.set(0, 1, 5.0);
        p.zero_grad();
        assert_eq!(p.g.as_slice(), &[0.0, 0.0]);
    }
}
