//! Dense row-major f64 matrices with the operations the layers need.

use std::fmt;

/// A dense `rows × cols` matrix, row-major.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mat({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Mat {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { rows, cols, data }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(data: Vec<f64>) -> Self {
        Self { rows: 1, cols: data.len(), data }
    }

    /// A `n × 1` column vector.
    pub fn col_vector(data: Vec<f64>) -> Self {
        Self { rows: data.len(), cols: 1, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a 0-element matrix.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw slice access.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable slice access.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Overwrite every element.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// `self @ rhs` — matrix product, register-blocked.
    ///
    /// Bitwise-identical to [`Mat::matmul_reference`]: every output
    /// element accumulates its `k` terms in the same increasing-`k`
    /// order the reference uses, so blocking changes which elements are
    /// in flight, never the order of any one element's sum.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        if m > 0 && k > 0 && n > 0 {
            kernel::matmul(&self.data, &rhs.data, &mut out.data, m, k, n);
        }
        out
    }

    /// `selfᵀ @ rhs` without materializing the transpose,
    /// register-blocked. Bitwise-identical to
    /// [`Mat::t_matmul_reference`] (increasing-row accumulation order
    /// per output element).
    pub fn t_matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.rows, rhs.rows, "t_matmul requires equal row counts");
        let mut out = Mat::zeros(self.cols, rhs.cols);
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        if m > 0 && k > 0 && n > 0 {
            kernel::t_matmul(&self.data, &rhs.data, &mut out.data, m, k, n);
        }
        out
    }

    /// `self @ rhsᵀ` without materializing the transpose,
    /// register-blocked. Bitwise-identical to
    /// [`Mat::matmul_t_reference`]: each of the MR×NR dot products in a
    /// tile keeps its own scalar accumulator walking `k` in order, so
    /// no partial-sum reassociation happens — the tile buys memory
    /// reuse (each loaded value feeds MR or NR products) and
    /// instruction-level parallelism, not SIMD reduction.
    pub fn matmul_t(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.cols, "matmul_t requires equal col counts");
        let mut out = Mat::zeros(self.rows, rhs.rows);
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        if m > 0 && k > 0 && n > 0 {
            kernel::matmul_t(&self.data, &rhs.data, &mut out.data, m, k, n);
        }
        out
    }

    /// Reference oracle for [`Mat::matmul`]: the original naive i-k-j
    /// triple loop. The historical `a == 0.0` fast-path skip is gone —
    /// it silently masked IEEE non-finite propagation (`0.0 × inf` and
    /// `0.0 × NaN` must yield NaN, which TrainGuard's poison detection
    /// relies on) and the fast kernels never had it.
    pub fn matmul_reference(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Reference oracle for [`Mat::t_matmul`] (naive, no zero skip).
    pub fn t_matmul_reference(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.rows, rhs.rows, "t_matmul requires equal row counts");
        let mut out = Mat::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = rhs.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Reference oracle for [`Mat::matmul_t`] (naive dot products).
    pub fn matmul_t_reference(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.cols, "matmul_t requires equal col counts");
        let mut out = Mat::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise addition into `self`.
    pub fn add_assign(&mut self, rhs: &Mat) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Element-wise `self += alpha * rhs`.
    pub fn add_scaled(&mut self, rhs: &Mat, alpha: f64) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Broadcast-add a `1 × cols` row vector to every row.
    pub fn add_row_broadcast(&mut self, row: &Mat) {
        assert_eq!(row.rows, 1, "broadcast source must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &s) in dst.iter_mut().zip(&row.data) {
                *d += s;
            }
        }
    }

    /// Column-sum producing a `1 × cols` row vector (bias gradients).
    pub fn sum_rows(&self) -> Mat {
        let mut out = Mat::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Element-wise product (Hadamard).
    pub fn hadamard(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect();
        Mat { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Scale every element.
    pub fn scale(&self, alpha: f64) -> Mat {
        self.map(|v| v * alpha)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// The register-blocked kernel bodies behind [`Mat::matmul`],
/// [`Mat::t_matmul`], and [`Mat::matmul_t`].
///
/// Each body is written once as a portable `#[inline(always)]`
/// function and instantiated twice: the plain baseline build, and an
/// `#[target_feature(enable = "avx2")]` wrapper selected by runtime
/// CPU detection so LLVM emits 256-bit `vmulpd`/`vaddpd` for the tile
/// loops. FMA is deliberately **not** enabled: a fused multiply-add
/// rounds once where the reference rounds twice, which would break the
/// bitwise-identity contract with the naive oracles. Plain wider
/// mul/add lanes keep per-element IEEE semantics and accumulation
/// order exactly, so both instantiations produce identical bits.
mod kernel {
    /// Rows per register tile. A 4×8 f64 accumulator tile fits in
    /// eight 256-bit vector registers with room left for the broadcast
    /// operand and the streamed `rhs` panel.
    const MR: usize = 4;
    /// Columns per register tile (one cache line of f64).
    const NR: usize = 8;

    /// `out[m×n] = a[m×k] @ b[k×n]`, all row-major, `out` zeroed.
    /// Per-element accumulation walks `k` in increasing order — the
    /// naive reference's order — so blocking changes which elements
    /// are in flight, never the order of any one element's sum.
    #[inline(always)]
    fn matmul_body(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        let mut i0 = 0;
        while i0 < m {
            let mh = MR.min(m - i0);
            let mut j0 = 0;
            while j0 < n {
                let nh = NR.min(n - j0);
                if mh == MR && nh == NR {
                    // Full MR×NR micro-kernel: the accumulator tile
                    // lives in registers; each k step broadcasts one
                    // `a` value per row against a contiguous NR-wide
                    // panel of `b` — the shape LLVM auto-vectorizes.
                    let mut acc = [[0.0f64; NR]; MR];
                    for kk in 0..k {
                        let brow = &b[kk * n + j0..kk * n + j0 + NR];
                        for (r, acc_row) in acc.iter_mut().enumerate() {
                            let av = a[(i0 + r) * k + kk];
                            for (o, &bv) in acc_row.iter_mut().zip(brow) {
                                *o += av * bv;
                            }
                        }
                    }
                    for (r, acc_row) in acc.iter().enumerate() {
                        let base = (i0 + r) * n + j0;
                        out[base..base + NR].copy_from_slice(acc_row);
                    }
                } else {
                    // Ragged edge tile: same increasing-k order,
                    // variable width.
                    for r in 0..mh {
                        let mut acc = [0.0f64; NR];
                        for kk in 0..k {
                            let av = a[(i0 + r) * k + kk];
                            let brow = &b[kk * n + j0..kk * n + j0 + nh];
                            for (o, &bv) in acc[..nh].iter_mut().zip(brow) {
                                *o += av * bv;
                            }
                        }
                        let base = (i0 + r) * n + j0;
                        out[base..base + nh].copy_from_slice(&acc[..nh]);
                    }
                }
                j0 += nh;
            }
            i0 += mh;
        }
    }

    /// `out[m×n] = aᵀ @ b` where `a` is `k×m`: identical tile
    /// structure to `matmul_body`, only the `a` indexing differs — the
    /// reduction axis is `a`'s row axis, so the MR values per k step
    /// are contiguous (`a[kk * m + i0..]`).
    #[inline(always)]
    fn t_matmul_body(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        let mut i0 = 0;
        while i0 < m {
            let mh = MR.min(m - i0);
            let mut j0 = 0;
            while j0 < n {
                let nh = NR.min(n - j0);
                if mh == MR && nh == NR {
                    let mut acc = [[0.0f64; NR]; MR];
                    for kk in 0..k {
                        let arow = &a[kk * m + i0..kk * m + i0 + MR];
                        let brow = &b[kk * n + j0..kk * n + j0 + NR];
                        for (acc_row, &av) in acc.iter_mut().zip(arow) {
                            for (o, &bv) in acc_row.iter_mut().zip(brow) {
                                *o += av * bv;
                            }
                        }
                    }
                    for (r, acc_row) in acc.iter().enumerate() {
                        let base = (i0 + r) * n + j0;
                        out[base..base + NR].copy_from_slice(acc_row);
                    }
                } else {
                    for r in 0..mh {
                        let mut acc = [0.0f64; NR];
                        for kk in 0..k {
                            let av = a[kk * m + i0 + r];
                            let brow = &b[kk * n + j0..kk * n + j0 + nh];
                            for (o, &bv) in acc[..nh].iter_mut().zip(brow) {
                                *o += av * bv;
                            }
                        }
                        let base = (i0 + r) * n + j0;
                        out[base..base + nh].copy_from_slice(&acc[..nh]);
                    }
                }
                j0 += nh;
            }
            i0 += mh;
        }
    }

    #[cfg(target_arch = "x86_64")]
    mod avx2 {
        /// # Safety
        /// Caller must have verified AVX2 support at runtime.
        #[target_feature(enable = "avx2")]
        pub unsafe fn matmul(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
            super::matmul_body(a, b, out, m, k, n)
        }

        /// # Safety
        /// Caller must have verified AVX2 support at runtime.
        #[target_feature(enable = "avx2")]
        pub unsafe fn t_matmul(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
            super::t_matmul_body(a, b, out, m, k, n)
        }

    }

    pub(super) fn matmul(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence verified on the line above.
            unsafe { return avx2::matmul(a, b, out, m, k, n) };
        }
        matmul_body(a, b, out, m, k, n)
    }

    pub(super) fn t_matmul(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence verified on the line above.
            unsafe { return avx2::t_matmul(a, b, out, m, k, n) };
        }
        t_matmul_body(a, b, out, m, k, n)
    }

    /// `out[m×n] = a[m×k] @ bᵀ` where `b` is `n×k`. The `b` operand is
    /// traversed along `k` per output, which defeats both SIMD across
    /// columns (stride-`k` gathers) and the register tile (MR×NR scalar
    /// accumulators spill). Materializing `bᵀ` once costs O(k·n) against
    /// the O(m·k·n) multiply and lets the hot loop run the contiguous
    /// `matmul` kernel. Each output element still accumulates in a
    /// single chain over increasing `k`, so results stay
    /// bitwise-identical to the dot-product reference.
    pub(super) fn matmul_t(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        let mut bt = vec![0.0f64; k * n];
        for (j, brow) in b.chunks_exact(k).enumerate() {
            for (kk, &bv) in brow.iter().enumerate() {
                bt[kk * n + j] = bv;
            }
        }
        matmul(a, &bt, out, m, k, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Mat::from_fn(4, 3, |r, c| (r * 3 + c) as f64);
        let b = Mat::from_fn(4, 2, |r, c| (r + c) as f64 * 0.5);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Mat::from_fn(2, 5, |r, c| (r + 2 * c) as f64);
        let b = Mat::from_fn(3, 5, |r, c| (r * c) as f64 - 1.0);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint() {
        // sum_rows is the gradient (adjoint) of add_row_broadcast.
        let mut x = Mat::zeros(3, 2);
        let bias = Mat::row_vector(vec![1.0, -2.0]);
        x.add_row_broadcast(&bias);
        assert_eq!(x.row(2), &[1.0, -2.0]);
        let g = x.sum_rows();
        assert_eq!(g.as_slice(), &[3.0, -6.0]);
    }

    #[test]
    fn hadamard_and_map() {
        let a = Mat::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Mat::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.map(|v| v * v).as_slice(), &[1.0, 4.0, 9.0]);
    }

    #[test]
    fn norm_known() {
        let a = Mat::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Mat::zeros(1, 2);
        let b = Mat::from_vec(1, 2, vec![1.0, 2.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        Mat::zeros(2, 3).matmul(&Mat::zeros(2, 2));
    }

    #[test]
    #[should_panic(expected = "buffer does not match")]
    fn from_vec_shape_mismatch_panics() {
        Mat::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn vectors_have_expected_shapes() {
        assert_eq!(Mat::row_vector(vec![1.0, 2.0]).shape(), (1, 2));
        assert_eq!(Mat::col_vector(vec![1.0, 2.0]).shape(), (2, 1));
    }

    /// Cheap deterministic value stream exercising signs, magnitudes,
    /// and exact zeros (zeros matter: the old kernels special-cased
    /// them).
    fn probe(i: usize) -> f64 {
        match i % 7 {
            0 => 0.0,
            1 => 1.5,
            2 => -2.25,
            3 => 1e-8,
            4 => -3e6,
            5 => 0.1 + i as f64,
            _ => -(i as f64) * 0.37,
        }
    }

    #[test]
    fn blocked_kernels_match_reference_bitwise_over_ragged_shapes() {
        // Shapes straddle every tile boundary: below/at/above MR and
        // NR, plus degenerate 0/1 dims.
        let dims = [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 17];
        for &m in &dims {
            for &k in &dims {
                for &n in &dims {
                    let a = Mat::from_fn(m, k, |r, c| probe(r * 31 + c));
                    let b = Mat::from_fn(k, n, |r, c| probe(r * 17 + c + 3));
                    let bt = b.transpose();
                    let at = a.transpose();
                    assert_eq!(
                        a.matmul(&b).as_slice(),
                        a.matmul_reference(&b).as_slice(),
                        "matmul {m}x{k}x{n}"
                    );
                    assert_eq!(
                        at.t_matmul(&b).as_slice(),
                        at.t_matmul_reference(&b).as_slice(),
                        "t_matmul {m}x{k}x{n}"
                    );
                    assert_eq!(
                        a.matmul_t(&bt).as_slice(),
                        a.matmul_t_reference(&bt).as_slice(),
                        "matmul_t {m}x{k}x{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_propagates_nonfinite_through_zero_lhs() {
        // Regression: the old kernel skipped `a == 0.0` rows, so an
        // inf/NaN in `rhs` multiplied by an exactly-zero weight was
        // silently dropped instead of poisoning the output. IEEE says
        // 0.0 × inf = NaN, and TrainGuard's explosion detection needs
        // that poison to surface.
        let a = Mat::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Mat::from_vec(2, 2, vec![f64::INFINITY, f64::NAN, 2.0, 3.0]);
        let c = a.matmul(&b);
        assert!(c.get(0, 0).is_nan(), "0*inf + 1*2 must be NaN, got {}", c.get(0, 0));
        assert!(c.get(0, 1).is_nan(), "0*NaN + 1*3 must be NaN, got {}", c.get(0, 1));
        let r = a.matmul_reference(&b);
        assert!(r.get(0, 0).is_nan() && r.get(0, 1).is_nan());
    }

    #[test]
    fn t_matmul_propagates_nonfinite_through_zero_lhs() {
        // aᵀ has a zero in the reduction position that meets the inf.
        let a = Mat::from_vec(2, 1, vec![0.0, 1.0]);
        let b = Mat::from_vec(2, 1, vec![f64::INFINITY, 1.0]);
        let c = a.t_matmul(&b);
        assert!(c.get(0, 0).is_nan(), "0*inf + 1*1 must be NaN, got {}", c.get(0, 0));
        assert!(a.t_matmul_reference(&b).get(0, 0).is_nan());
    }

    #[test]
    fn matmul_t_propagates_nonfinite() {
        let a = Mat::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Mat::from_vec(1, 2, vec![f64::NAN, 5.0]);
        assert!(a.matmul_t(&b).get(0, 0).is_nan());
        assert!(a.matmul_t_reference(&b).get(0, 0).is_nan());
    }

    #[test]
    fn batched_rows_match_single_row_calls_bitwise() {
        // The batched-inference contract: row i of a batched product
        // equals the product of row i alone — blocking must never leak
        // state across rows.
        let k = 13;
        let n = 9;
        let batch = Mat::from_fn(6, k, |r, c| probe(r * 41 + c + 1));
        let w = Mat::from_fn(k, n, |r, c| probe(r * 13 + c + 5));
        let all = batch.matmul(&w);
        for r in 0..batch.rows() {
            let one = Mat::from_vec(1, k, batch.row(r).to_vec()).matmul(&w);
            assert_eq!(all.row(r), one.as_slice(), "row {r}");
        }
    }
}
