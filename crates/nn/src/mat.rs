//! Dense row-major f64 matrices with the operations the layers need.

use std::fmt;

/// A dense `rows × cols` matrix, row-major.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mat({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Mat {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { rows, cols, data }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(data: Vec<f64>) -> Self {
        Self { rows: 1, cols: data.len(), data }
    }

    /// A `n × 1` column vector.
    pub fn col_vector(data: Vec<f64>) -> Self {
        Self { rows: data.len(), cols: 1, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a 0-element matrix.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw slice access.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable slice access.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Overwrite every element.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// `self @ rhs` — matrix product.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        // i-k-j loop order: the inner loop walks both `rhs` and `out`
        // rows contiguously.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.rows, rhs.rows, "t_matmul requires equal row counts");
        let mut out = Mat::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = rhs.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ rhsᵀ` without materializing the transpose.
    pub fn matmul_t(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.cols, "matmul_t requires equal col counts");
        let mut out = Mat::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise addition into `self`.
    pub fn add_assign(&mut self, rhs: &Mat) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Element-wise `self += alpha * rhs`.
    pub fn add_scaled(&mut self, rhs: &Mat, alpha: f64) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Broadcast-add a `1 × cols` row vector to every row.
    pub fn add_row_broadcast(&mut self, row: &Mat) {
        assert_eq!(row.rows, 1, "broadcast source must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &s) in dst.iter_mut().zip(&row.data) {
                *d += s;
            }
        }
    }

    /// Column-sum producing a `1 × cols` row vector (bias gradients).
    pub fn sum_rows(&self) -> Mat {
        let mut out = Mat::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Element-wise product (Hadamard).
    pub fn hadamard(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect();
        Mat { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Scale every element.
    pub fn scale(&self, alpha: f64) -> Mat {
        self.map(|v| v * alpha)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Mat::from_fn(4, 3, |r, c| (r * 3 + c) as f64);
        let b = Mat::from_fn(4, 2, |r, c| (r + c) as f64 * 0.5);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Mat::from_fn(2, 5, |r, c| (r + 2 * c) as f64);
        let b = Mat::from_fn(3, 5, |r, c| (r * c) as f64 - 1.0);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint() {
        // sum_rows is the gradient (adjoint) of add_row_broadcast.
        let mut x = Mat::zeros(3, 2);
        let bias = Mat::row_vector(vec![1.0, -2.0]);
        x.add_row_broadcast(&bias);
        assert_eq!(x.row(2), &[1.0, -2.0]);
        let g = x.sum_rows();
        assert_eq!(g.as_slice(), &[3.0, -6.0]);
    }

    #[test]
    fn hadamard_and_map() {
        let a = Mat::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Mat::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.map(|v| v * v).as_slice(), &[1.0, 4.0, 9.0]);
    }

    #[test]
    fn norm_known() {
        let a = Mat::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Mat::zeros(1, 2);
        let b = Mat::from_vec(1, 2, vec![1.0, 2.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        Mat::zeros(2, 3).matmul(&Mat::zeros(2, 2));
    }

    #[test]
    #[should_panic(expected = "buffer does not match")]
    fn from_vec_shape_mismatch_panics() {
        Mat::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn vectors_have_expected_shapes() {
        assert_eq!(Mat::row_vector(vec![1.0, 2.0]).shape(), (1, 2));
        assert_eq!(Mat::col_vector(vec![1.0, 2.0]).shape(), (2, 1));
    }
}
