//! Optimizers. The paper trains every model with Adam (learning rate
//! 1e-3, Section VI-A); plain SGD is provided for tests and ablations.

use crate::mat::Mat;
use crate::param::Param;

/// A gradient-descent optimizer over an ordered parameter list.
///
/// Implementations key internal state (Adam moments) by parameter
/// *position*, so callers must pass parameters in the same order on every
/// step — which [`crate::param::HasParams::params_mut`] guarantees.
pub trait Optimizer {
    /// Apply one update using each parameter's accumulated gradient,
    /// then zero the gradients.
    fn step(&mut self, params: &mut [&mut Param]);
}

/// Plain SGD with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum factor (0 disables).
    pub momentum: f64,
    velocity: Vec<Mat>,
}

impl Sgd {
    /// SGD with the given learning rate and no momentum.
    pub fn new(lr: f64) -> Self {
        Self { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| Mat::zeros(p.w.rows(), p.w.cols())).collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            if self.momentum > 0.0 {
                for i in 0..p.w.len() {
                    let vi = self.momentum * v.as_slice()[i] - self.lr * p.g.as_slice()[i];
                    v.as_mut_slice()[i] = vi;
                    p.w.as_mut_slice()[i] += vi;
                }
            } else {
                p.w.add_scaled(&p.g, -self.lr);
            }
            p.zero_grad();
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper: 1e-3).
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Denominator fuzz.
    pub eps: f64,
    t: u64,
    m: Vec<Mat>,
    v: Vec<Mat>,
}

impl Adam {
    /// Adam with the standard hyper-parameters (β₁=0.9, β₂=0.999).
    pub fn new(lr: f64) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| Mat::zeros(p.w.rows(), p.w.cols())).collect();
            self.v = params.iter().map(|p| Mat::zeros(p.w.rows(), p.w.cols())).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for i in 0..p.w.len() {
                let g = p.g.as_slice()[i];
                let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * g * g;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                p.w.as_mut_slice()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }
}

/// Scale all gradients so their global L2 norm is at most `max_norm`
/// (the standard defence against the RNN gradient explosion the paper
/// mentions). Returns the pre-clip norm.
pub fn clip_global_norm(params: &mut [&mut Param], max_norm: f64) -> f64 {
    let total: f64 = params.iter().map(|p| p.g.as_slice().iter().map(|g| g * g).sum::<f64>()).sum();
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            for g in p.g.as_mut_slice() {
                *g *= scale;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: f64) -> Param {
        Param::new(Mat::row_vector(vec![x0]))
    }

    /// d/dx (x-3)^2 = 2(x-3)
    fn quad_grad(p: &mut Param) {
        let x = p.w.get(0, 0);
        p.g.set(0, 0, 2.0 * (x - 3.0));
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut p = quadratic_param(0.0);
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            quad_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!((p.w.get(0, 0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_descends_quadratic() {
        let mut p = quadratic_param(10.0);
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        for _ in 0..300 {
            quad_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!((p.w.get(0, 0) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut p = quadratic_param(-5.0);
        let mut opt = Adam::new(0.1);
        for _ in 0..800 {
            quad_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!((p.w.get(0, 0) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = quadratic_param(1.0);
        quad_grad(&mut p);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        assert_eq!(p.g.as_slice(), &[0.0]);
    }

    #[test]
    fn clip_reduces_large_norms_only() {
        let mut a = Param::new(Mat::row_vector(vec![0.0, 0.0]));
        a.g = Mat::row_vector(vec![3.0, 4.0]);
        let norm = clip_global_norm(&mut [&mut a], 1.0);
        assert_eq!(norm, 5.0);
        assert!((a.g.norm() - 1.0).abs() < 1e-12);

        let mut b = Param::new(Mat::row_vector(vec![0.0]));
        b.g = Mat::row_vector(vec![0.5]);
        clip_global_norm(&mut [&mut b], 1.0);
        assert_eq!(b.g.as_slice(), &[0.5], "small gradients untouched");
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // After one step from zero moments, update magnitude ≈ lr.
        let mut p = quadratic_param(0.0); // grad = -6
        quad_grad(&mut p);
        let mut opt = Adam::new(0.001);
        opt.step(&mut [&mut p]);
        assert!((p.w.get(0, 0) - 0.001).abs() < 1e-9, "got {}", p.w.get(0, 0));
    }
}
