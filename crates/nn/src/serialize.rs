//! A tiny binary model format, used to report the storage sizes of the
//! paper's Table II and to persist trained forecasters.
//!
//! Layout: magic `b"DBAW"`, format version u32, parameter count u32,
//! then per parameter `rows: u32, cols: u32, data: rows·cols f64` — all
//! little-endian.

use crate::mat::Mat;
use crate::param::Param;

const MAGIC: &[u8; 4] = b"DBAW";
const VERSION: u32 = 1;

/// Serialization error.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Buffer ended before the declared content.
    Truncated,
    /// Declared shapes disagree with the expectation passed in.
    ShapeMismatch,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic bytes"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::ShapeMismatch => write!(f, "parameter shape mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a parameter list.
pub fn encode_params(params: &[&Param]) -> Vec<u8> {
    let total: usize = params.iter().map(|p| 8 + p.w.len() * 8).sum();
    let mut out = Vec::with_capacity(12 + total);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        out.extend_from_slice(&(p.w.rows() as u32).to_le_bytes());
        out.extend_from_slice(&(p.w.cols() as u32).to_le_bytes());
        for v in p.w.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Decode into a fresh list of weight matrices.
pub fn decode_params(buf: &[u8]) -> Result<Vec<Mat>, DecodeError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], DecodeError> {
        if *pos + n > buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &buf[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    if take(&mut pos, 4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
    // Size fields come from untrusted bytes: validate every declared
    // length against the remaining buffer *before* allocating, so a
    // corrupted header cannot request a multi-gigabyte Vec.
    if count
        .checked_mul(8)
        .is_none_or(|need| need > buf.len() - pos)
    {
        return Err(DecodeError::Truncated);
    }
    let mut mats = Vec::with_capacity(count);
    for _ in 0..count {
        let rows = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let cols = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let n = rows
            .checked_mul(cols)
            .filter(|n| n.checked_mul(8).is_some_and(|need| need <= buf.len() - pos))
            .ok_or(DecodeError::Truncated)?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(f64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes")));
        }
        mats.push(Mat::from_vec(rows, cols, data));
    }
    Ok(mats)
}

/// Restore decoded matrices into live parameters (shape-checked).
pub fn load_into(params: &mut [&mut Param], mats: &[Mat]) -> Result<(), DecodeError> {
    if params.len() != mats.len() {
        return Err(DecodeError::ShapeMismatch);
    }
    for (p, m) in params.iter_mut().zip(mats) {
        if p.w.shape() != m.shape() {
            return Err(DecodeError::ShapeMismatch);
        }
        p.w = m.clone();
    }
    Ok(())
}

/// Serialized size in bytes of a parameter list — the "Storage" column of
/// Table II.
pub fn encoded_size(params: &[&Param]) -> usize {
    12 + params.iter().map(|p| 8 + p.w.len() * 8).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(rows: usize, cols: usize, base: f64) -> Param {
        Param::new(Mat::from_fn(rows, cols, |r, c| base + (r * cols + c) as f64))
    }

    #[test]
    fn roundtrip() {
        let a = p(2, 3, 0.5);
        let b = p(1, 4, -2.0);
        let buf = encode_params(&[&a, &b]);
        let mats = decode_params(&buf).expect("decodes");
        assert_eq!(mats.len(), 2);
        assert_eq!(mats[0], a.w);
        assert_eq!(mats[1], b.w);
    }

    #[test]
    fn size_formula_matches_buffer() {
        let a = p(3, 3, 0.0);
        let buf = encode_params(&[&a]);
        assert_eq!(buf.len(), encoded_size(&[&a]));
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode_params(b"NOPE"), Err(DecodeError::BadMagic));
    }

    #[test]
    fn truncated_rejected() {
        let a = p(2, 2, 1.0);
        let buf = encode_params(&[&a]);
        assert_eq!(decode_params(&buf[..buf.len() - 3]), Err(DecodeError::Truncated));
    }

    #[test]
    fn load_into_checks_shapes() {
        let a = p(2, 2, 1.0);
        let buf = encode_params(&[&a]);
        let mats = decode_params(&buf).expect("decodes");
        let mut wrong = p(3, 2, 0.0);
        assert_eq!(load_into(&mut [&mut wrong], &mats), Err(DecodeError::ShapeMismatch));
        let mut right = p(2, 2, 0.0);
        load_into(&mut [&mut right], &mats).expect("loads");
        assert_eq!(right.w, a.w);
    }

    #[test]
    fn oversized_count_is_rejected_without_allocating() {
        let a = p(1, 1, 0.0);
        let mut buf = encode_params(&[&a]);
        // Claim u32::MAX parameters: must fail fast, not try to reserve.
        buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_params(&buf), Err(DecodeError::Truncated));
    }

    #[test]
    fn oversized_shape_is_rejected_without_allocating() {
        let a = p(1, 1, 0.0);
        let mut buf = encode_params(&[&a]);
        // Claim a u32::MAX x u32::MAX matrix (product overflows usize on
        // 32-bit and dwarfs the buffer everywhere).
        buf[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        buf[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_params(&buf), Err(DecodeError::Truncated));
    }

    #[test]
    fn header_bit_flips_never_panic() {
        let a = p(2, 3, 1.0);
        let clean = encode_params(&[&a]);
        // Flip every bit of the header/shape region one at a time; decode
        // must return Ok or Err, never panic or abort.
        for byte in 0..20.min(clean.len()) {
            for bit in 0..8 {
                let mut buf = clean.clone();
                buf[byte] ^= 1 << bit;
                let _ = decode_params(&buf);
            }
        }
    }

    #[test]
    fn version_is_enforced() {
        let a = p(1, 1, 0.0);
        let mut buf = encode_params(&[&a]);
        buf[4] = 9; // bump version byte
        assert!(matches!(decode_params(&buf), Err(DecodeError::BadVersion(_))));
    }
}
