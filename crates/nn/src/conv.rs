//! Dilated causal 1-D convolutions and residual TCN blocks.
//!
//! "TCN employs dilated convolutions that helps cover the longer workload
//! information … [and] offers a wider field of view at the same
//! computational cost" (paper Table I / Sec. V-C). The evaluation stacks
//! five layers with dilation factors 1, 2, 4, 8, 16.
//!
//! Sequences are time-major: `T` matrices of `batch × channels`. A causal
//! tap `j` with dilation `d` reads `x_{t − j·d}`, with zero padding for
//! negative times, so output `t` never sees the future.

use crate::init::he_with_fan_in;
use crate::mat::Mat;
use crate::param::{HasParams, Param};
use rand::rngs::StdRng;

/// A causal dilated convolution layer.
#[derive(Debug, Clone)]
pub struct CausalConv1d {
    /// One `in × out` weight per tap, tap 0 reading the current step.
    pub taps: Vec<Param>,
    /// Bias `1 × out`.
    pub b: Param,
    dilation: usize,
    inputs: Vec<Mat>,
}

impl CausalConv1d {
    /// New layer with `kernel` taps and the given dilation.
    ///
    /// # Panics
    /// Panics if `kernel == 0` or `dilation == 0`.
    pub fn new(
        input: usize,
        output: usize,
        kernel: usize,
        dilation: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(dilation > 0, "dilation must be positive");
        // The layer's fan-in is kernel × input: every output unit sums
        // contributions from all taps.
        let taps = (0..kernel)
            .map(|_| Param::new(he_with_fan_in(rng, input, output, kernel * input)))
            .collect();
        Self { taps, b: Param::new(Mat::zeros(1, output)), dilation, inputs: Vec::new() }
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.b.w.cols()
    }

    /// The receptive field added by this layer: `(kernel−1)·dilation`.
    pub fn receptive_field(&self) -> usize {
        (self.taps.len() - 1) * self.dilation
    }

    fn apply(&self, xs: &[Mat]) -> Vec<Mat> {
        let batch = xs[0].rows();
        let out_dim = self.output_dim();
        let mut ys = Vec::with_capacity(xs.len());
        for t in 0..xs.len() {
            let mut y = Mat::zeros(batch, out_dim);
            y.add_row_broadcast(&self.b.w);
            for (j, tap) in self.taps.iter().enumerate() {
                let offset = j * self.dilation;
                if offset > t {
                    continue; // zero padding
                }
                y.add_assign(&xs[t - offset].matmul(&tap.w));
            }
            ys.push(y);
        }
        ys
    }

    /// Training forward (caches inputs).
    ///
    /// # Panics
    /// Panics on an empty sequence.
    pub fn forward_seq(&mut self, xs: &[Mat]) -> Vec<Mat> {
        assert!(!xs.is_empty(), "conv needs at least one timestep");
        self.inputs = xs.to_vec();
        self.apply(xs)
    }

    /// Inference-only forward.
    pub fn infer_seq(&self, xs: &[Mat]) -> Vec<Mat> {
        assert!(!xs.is_empty(), "conv needs at least one timestep");
        self.apply(xs)
    }

    /// Backward: per-step output gradients in, per-step input gradients
    /// out; parameter gradients accumulate.
    pub fn backward_seq(&mut self, grad_ys: &[Mat]) -> Vec<Mat> {
        assert_eq!(grad_ys.len(), self.inputs.len(), "backward length mismatch");
        let batch = grad_ys[0].rows();
        let in_dim = self.taps[0].w.rows();
        let mut dxs = vec![Mat::zeros(batch, in_dim); self.inputs.len()];
        for (t, dy) in grad_ys.iter().enumerate() {
            self.b.g.add_assign(&dy.sum_rows());
            for (j, tap) in self.taps.iter_mut().enumerate() {
                let offset = j * self.dilation;
                if offset > t {
                    continue;
                }
                tap.g.add_assign(&self.inputs[t - offset].t_matmul(dy));
                dxs[t - offset].add_assign(&dy.matmul_t(&tap.w));
            }
        }
        dxs
    }
}

impl HasParams for CausalConv1d {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v: Vec<&mut Param> = self.taps.iter_mut().collect();
        v.push(&mut self.b);
        v
    }
}

/// A residual TCN block: `out = ReLU(conv2(ReLU(conv1(x))) + res(x))`,
/// with a 1×1 convolution on the residual path when channel widths
/// differ.
#[derive(Debug, Clone)]
pub struct TcnBlock {
    conv1: CausalConv1d,
    conv2: CausalConv1d,
    res: Option<CausalConv1d>,
    // Caches: pre-activation values for the two ReLUs.
    z1: Vec<Mat>,
    sum: Vec<Mat>,
}

impl TcnBlock {
    /// Build a block with the given dilation (both convolutions share
    /// it, as in the reference TCN).
    pub fn new(
        input: usize,
        output: usize,
        kernel: usize,
        dilation: usize,
        rng: &mut StdRng,
    ) -> Self {
        let conv1 = CausalConv1d::new(input, output, kernel, dilation, rng);
        let conv2 = CausalConv1d::new(output, output, kernel, dilation, rng);
        let res = (input != output).then(|| CausalConv1d::new(input, output, 1, 1, rng));
        Self { conv1, conv2, res, z1: Vec::new(), sum: Vec::new() }
    }

    /// Receptive field added by the block.
    pub fn receptive_field(&self) -> usize {
        self.conv1.receptive_field() + self.conv2.receptive_field()
    }

    fn relu_seq(zs: &[Mat]) -> Vec<Mat> {
        zs.iter().map(|z| z.map(|v| if v > 0.0 { v } else { 0.0 })).collect()
    }

    /// Training forward.
    pub fn forward_seq(&mut self, xs: &[Mat]) -> Vec<Mat> {
        let z1 = self.conv1.forward_seq(xs);
        let a1 = Self::relu_seq(&z1);
        let z2 = self.conv2.forward_seq(&a1);
        let r = match &mut self.res {
            Some(conv) => conv.forward_seq(xs),
            None => xs.to_vec(),
        };
        let mut sum = Vec::with_capacity(z2.len());
        for (z, rr) in z2.iter().zip(&r) {
            let mut s = z.clone();
            s.add_assign(rr);
            sum.push(s);
        }
        let out = Self::relu_seq(&sum);
        self.z1 = z1;
        self.sum = sum;
        out
    }

    /// Inference-only forward.
    pub fn infer_seq(&self, xs: &[Mat]) -> Vec<Mat> {
        let a1 = Self::relu_seq(&self.conv1.infer_seq(xs));
        let z2 = self.conv2.infer_seq(&a1);
        let r = match &self.res {
            Some(conv) => conv.infer_seq(xs),
            None => xs.to_vec(),
        };
        let mut out = Vec::with_capacity(z2.len());
        for (z, rr) in z2.iter().zip(&r) {
            let mut s = z.clone();
            s.add_assign(rr);
            out.push(s.map(|v| if v > 0.0 { v } else { 0.0 }));
        }
        out
    }

    /// Backward through the block.
    pub fn backward_seq(&mut self, grad_outs: &[Mat]) -> Vec<Mat> {
        // Through the final ReLU.
        let dsum: Vec<Mat> = grad_outs
            .iter()
            .zip(&self.sum)
            .map(|(g, s)| {
                Mat::from_fn(g.rows(), g.cols(), |r, c| {
                    if s.get(r, c) > 0.0 {
                        g.get(r, c)
                    } else {
                        0.0
                    }
                })
            })
            .collect();
        // Branch 1: conv2 chain.
        let da1 = self.conv2.backward_seq(&dsum);
        let dz1: Vec<Mat> = da1
            .iter()
            .zip(&self.z1)
            .map(|(g, z)| {
                Mat::from_fn(g.rows(), g.cols(), |r, c| {
                    if z.get(r, c) > 0.0 {
                        g.get(r, c)
                    } else {
                        0.0
                    }
                })
            })
            .collect();
        let mut dx = self.conv1.backward_seq(&dz1);
        // Branch 2: residual path.
        match &mut self.res {
            Some(conv) => {
                let dres = conv.backward_seq(&dsum);
                for (a, b) in dx.iter_mut().zip(&dres) {
                    a.add_assign(b);
                }
            }
            None => {
                for (a, b) in dx.iter_mut().zip(&dsum) {
                    a.add_assign(b);
                }
            }
        }
        dx
    }
}

impl HasParams for TcnBlock {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.conv1.params_mut();
        v.extend(self.conv2.params_mut());
        if let Some(res) = &mut self.res {
            v.extend(res.params_mut());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::grad_check_seq;
    use rand::SeedableRng;

    fn seq(t: usize, batch: usize, dim: usize) -> Vec<Mat> {
        (0..t)
            .map(|ti| Mat::from_fn(batch, dim, |r, c| ((ti * 5 + r + c) as f64 * 0.17).sin()))
            .collect()
    }

    #[test]
    fn causality_output_ignores_future() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = CausalConv1d::new(1, 2, 3, 2, &mut rng);
        let xs = seq(10, 1, 1);
        let ys = conv.infer_seq(&xs);
        // Changing a future input must not affect an earlier output.
        let mut xs2 = xs.clone();
        xs2[7].set(0, 0, 99.0);
        let ys2 = conv.infer_seq(&xs2);
        for t in 0..7 {
            assert_eq!(ys[t], ys2[t], "output {t} must not see input 7");
        }
        assert_ne!(ys[7], ys2[7]);
    }

    #[test]
    fn dilation_sets_receptive_field() {
        let mut rng = StdRng::seed_from_u64(2);
        let conv = CausalConv1d::new(1, 1, 3, 4, &mut rng);
        assert_eq!(conv.receptive_field(), 8);
        // Output at t depends on inputs {t, t-4, t-8} only.
        let xs = seq(12, 1, 1);
        let ys = conv.infer_seq(&xs);
        let mut xs2 = xs.clone();
        xs2[11 - 3].set(0, 0, 42.0); // t-3 is NOT a tap of t=11
        let ys2 = conv.infer_seq(&xs2);
        assert_eq!(ys[11], ys2[11]);
        let mut xs3 = xs.clone();
        xs3[11 - 4].set(0, 0, 42.0); // t-4 IS a tap
        let ys3 = conv.infer_seq(&xs3);
        assert_ne!(ys[11], ys3[11]);
    }

    #[test]
    fn conv_gradients_check_out() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = CausalConv1d::new(2, 3, 2, 2, &mut rng);
        let xs = seq(5, 2, 2);
        grad_check_seq(
            &mut conv,
            &xs,
            |m, xs| {
                let ys = m.forward_seq(xs);
                let mut acc = Mat::zeros(ys[0].rows(), ys[0].cols());
                for y in &ys {
                    acc.add_assign(y);
                }
                acc
            },
            |m, g| m.backward_seq(&vec![g.clone(); 5]),
            1e-5,
            5e-5,
        );
    }

    #[test]
    fn tcn_block_gradients_check_out() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut block = TcnBlock::new(2, 3, 2, 1, &mut rng);
        let xs = seq(4, 2, 2);
        grad_check_seq(
            &mut block,
            &xs,
            |m, xs| {
                let ys = m.forward_seq(xs);
                let mut acc = Mat::zeros(ys[0].rows(), ys[0].cols());
                for y in &ys {
                    acc.add_assign(y);
                }
                acc
            },
            |m, g| m.backward_seq(&vec![g.clone(); 4]),
            1e-5,
            1e-4,
        );
    }

    #[test]
    fn tcn_block_same_width_uses_identity_residual() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut block = TcnBlock::new(3, 3, 2, 1, &mut rng);
        // conv1 (2 taps · 3×3 + bias) + conv2 (2 taps · 3×3 + bias), no res conv.
        assert_eq!(block.num_params(), 2 * (2 * 9 + 3));
    }

    #[test]
    fn tcn_block_width_change_adds_projection() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut block = TcnBlock::new(2, 3, 2, 1, &mut rng);
        let expected = (2 * 2 * 3 + 3) + (2 * 3 * 3 + 3) + (2 * 3 + 3);
        assert_eq!(block.num_params(), expected);
    }

    #[test]
    fn infer_matches_forward_for_block() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut block = TcnBlock::new(1, 2, 3, 2, &mut rng);
        let xs = seq(8, 2, 1);
        let a = block.forward_seq(&xs);
        let b = block.infer_seq(&xs);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "kernel must be positive")]
    fn zero_kernel_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        CausalConv1d::new(1, 1, 0, 1, &mut rng);
    }
}
