//! Temporal attention over LSTM hidden states (paper Eqns. 2–3).
//!
//! "Relying only on the last output may lose information. To fully
//! exploit the historical knowledge, we introduce the temporal attention
//! mechanism … we summarize all the hidden states from h_1 to h_T."
//!
//! Additive (Bahdanau-style) scoring:
//! `score_t = vᵀ tanh(h_t Wa + ba)`, `α = softmax_t(score)`,
//! `context = Σ_t α_t · h_t`.

use crate::init::xavier;
use crate::mat::Mat;
use crate::param::{HasParams, Param};
use rand::rngs::StdRng;

/// The attention layer. Input: `T` hidden states of `batch × hidden`;
/// output: one `batch × hidden` context vector.
#[derive(Debug, Clone)]
pub struct TemporalAttention {
    /// Projection `hidden × attn`.
    pub wa: Param,
    /// Projection bias `1 × attn`.
    pub ba: Param,
    /// Scoring vector `attn × 1`.
    pub va: Param,
    // Caches.
    hs: Vec<Mat>,
    us: Vec<Mat>,
    alpha: Option<Mat>, // batch × T
}

impl TemporalAttention {
    /// New layer with `attn`-wide scoring space.
    pub fn new(hidden: usize, attn: usize, rng: &mut StdRng) -> Self {
        Self {
            wa: Param::new(xavier(rng, hidden, attn)),
            ba: Param::new(Mat::zeros(1, attn)),
            va: Param::new(xavier(rng, attn, 1)),
            hs: Vec::new(),
            us: Vec::new(),
            alpha: None,
        }
    }

    /// Row-wise softmax over a `batch × T` score matrix.
    fn softmax_rows(scores: &Mat) -> Mat {
        Mat::from_fn(scores.rows(), scores.cols(), |r, c| {
            let row = scores.row(r);
            let mx = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let denom: f64 = row.iter().map(|v| (v - mx).exp()).sum();
            (scores.get(r, c) - mx).exp() / denom
        })
    }

    fn compute(&self, hs: &[Mat]) -> (Vec<Mat>, Mat, Mat) {
        let batch = hs[0].rows();
        let t_len = hs.len();
        let mut us = Vec::with_capacity(t_len);
        let mut scores = Mat::zeros(batch, t_len);
        for (t, h) in hs.iter().enumerate() {
            let mut u = h.matmul(&self.wa.w);
            u.add_row_broadcast(&self.ba.w);
            let u = u.map(f64::tanh);
            let s = u.matmul(&self.va.w); // batch × 1
            for r in 0..batch {
                scores.set(r, t, s.get(r, 0));
            }
            us.push(u);
        }
        let alpha = Self::softmax_rows(&scores);
        let hidden = hs[0].cols();
        let mut context = Mat::zeros(batch, hidden);
        for (t, h) in hs.iter().enumerate() {
            for r in 0..batch {
                let a = alpha.get(r, t);
                for c in 0..hidden {
                    let v = context.get(r, c) + a * h.get(r, c);
                    context.set(r, c, v);
                }
            }
        }
        (us, alpha, context)
    }

    /// Training forward: caches for backward.
    ///
    /// # Panics
    /// Panics on an empty sequence.
    pub fn forward(&mut self, hs: &[Mat]) -> Mat {
        assert!(!hs.is_empty(), "attention needs at least one hidden state");
        let (us, alpha, context) = self.compute(hs);
        self.hs = hs.to_vec();
        self.us = us;
        self.alpha = Some(alpha);
        context
    }

    /// Inference-only forward.
    pub fn infer(&self, hs: &[Mat]) -> Mat {
        assert!(!hs.is_empty(), "attention needs at least one hidden state");
        self.compute(hs).2
    }

    /// The last attention weights (`batch × T`), for inspection.
    pub fn last_alpha(&self) -> Option<&Mat> {
        self.alpha.as_ref()
    }

    /// Backward: given `∂L/∂context`, accumulate parameter gradients and
    /// return `∂L/∂h_t` for every step.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dcontext: &Mat) -> Vec<Mat> {
        let alpha = self.alpha.as_ref().expect("backward before forward");
        let t_len = self.hs.len();
        let batch = dcontext.rows();
        let hidden = dcontext.cols();

        // context = Σ_t α_t h_t
        // dα[:,t] = dcontext · h_t ; dh_t += α[:,t] ⊗ dcontext
        let mut dalpha = Mat::zeros(batch, t_len);
        let mut dhs: Vec<Mat> = Vec::with_capacity(t_len);
        for (t, h) in self.hs.iter().enumerate() {
            let mut dh = Mat::zeros(batch, hidden);
            for r in 0..batch {
                let mut dot = 0.0;
                let a = alpha.get(r, t);
                for c in 0..hidden {
                    dot += dcontext.get(r, c) * h.get(r, c);
                    dh.set(r, c, a * dcontext.get(r, c));
                }
                dalpha.set(r, t, dot);
            }
            dhs.push(dh);
        }

        // Softmax backward per row: ds = α ⊙ (dα − Σ_t α dα).
        let mut dscore = Mat::zeros(batch, t_len);
        for r in 0..batch {
            let mut dot = 0.0;
            for t in 0..t_len {
                dot += alpha.get(r, t) * dalpha.get(r, t);
            }
            for t in 0..t_len {
                dscore.set(r, t, alpha.get(r, t) * (dalpha.get(r, t) - dot));
            }
        }

        // score_t = u_t @ va ; u_t = tanh(h_t Wa + ba)
        for (t, u) in self.us.iter().enumerate() {
            let ds_t = Mat::from_fn(batch, 1, |r, _| dscore.get(r, t));
            self.va.g.add_assign(&u.t_matmul(&ds_t));
            let du = ds_t.matmul_t(&self.va.w); // batch × attn
            let da = Mat::from_fn(batch, u.cols(), |r, c| {
                let uv = u.get(r, c);
                du.get(r, c) * (1.0 - uv * uv)
            });
            self.wa.g.add_assign(&self.hs[t].t_matmul(&da));
            self.ba.g.add_assign(&da.sum_rows());
            dhs[t].add_assign(&da.matmul_t(&self.wa.w));
        }
        dhs
    }
}

impl HasParams for TemporalAttention {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wa, &mut self.ba, &mut self.va]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::grad_check_seq;
    use rand::SeedableRng;

    fn states(t: usize, batch: usize, hidden: usize) -> Vec<Mat> {
        (0..t)
            .map(|ti| {
                Mat::from_fn(batch, hidden, |r, c| ((ti + 2 * r + 3 * c) as f64 * 0.21).cos())
            })
            .collect()
    }

    #[test]
    fn alpha_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut att = TemporalAttention::new(4, 3, &mut rng);
        let hs = states(6, 3, 4);
        att.forward(&hs);
        let alpha = att.last_alpha().expect("cached");
        for r in 0..3 {
            let s: f64 = alpha.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(alpha.row(r).iter().all(|&a| a >= 0.0));
        }
    }

    #[test]
    fn context_is_convex_combination() {
        // With T identical hidden states, the context equals that state.
        let mut rng = StdRng::seed_from_u64(2);
        let mut att = TemporalAttention::new(3, 2, &mut rng);
        let h = Mat::from_fn(2, 3, |r, c| (r + c) as f64);
        let hs = vec![h.clone(); 5];
        let ctx = att.forward(&hs);
        for i in 0..ctx.len() {
            assert!((ctx.as_slice()[i] - h.as_slice()[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut att = TemporalAttention::new(4, 4, &mut rng);
        let hs = states(5, 2, 4);
        let a = att.forward(&hs);
        let b = att.infer(&hs);
        assert_eq!(a, b);
    }

    #[test]
    fn gradients_check_out() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut att = TemporalAttention::new(3, 2, &mut rng);
        let hs = states(4, 2, 3);
        grad_check_seq(
            &mut att,
            &hs,
            |m, hs| m.forward(hs),
            |m, g| m.backward(g),
            1e-5,
            5e-5,
        );
    }

    #[test]
    #[should_panic(expected = "at least one hidden state")]
    fn empty_sequence_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut att = TemporalAttention::new(2, 2, &mut rng);
        att.forward(&[]);
    }
}
