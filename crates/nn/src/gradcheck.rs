//! Finite-difference gradient checking.
//!
//! Every layer's `backward` is verified against central differences on a
//! scalar loss `L = Σ y ⊙ R` for a fixed pseudo-random weighting `R`.
//! This is the correctness backbone of the whole substrate: if these
//! checks pass for a layer, its analytic gradients are trustworthy.

use crate::mat::Mat;
use crate::param::HasParams;

/// Deterministic pseudo-random weights in `[-1, 1]` (hash of indices);
/// keeps the check independent of `rand` state.
fn weight_for(r: usize, c: usize) -> f64 {
    let mut h = (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (c as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 31;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 29;
    (h as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// Check analytic gradients of `model` at input `x`.
///
/// * `fwd` runs a training forward pass and returns the output;
/// * `bwd` receives `∂L/∂y` and must return `∂L/∂x` while accumulating
///   parameter gradients.
///
/// Asserts that every parameter gradient and the input gradient match
/// central finite differences within `tol` (relative to magnitude).
/// To keep tests fast, at most 64 elements per parameter are probed
/// (strided to cover the tensor).
pub fn grad_check<M: HasParams>(
    model: &mut M,
    x: &Mat,
    mut fwd: impl FnMut(&mut M, &Mat) -> Mat,
    mut bwd: impl FnMut(&mut M, &Mat) -> Mat,
    eps: f64,
    tol: f64,
) {
    let y0 = fwd(model, x);
    let r = Mat::from_fn(y0.rows(), y0.cols(), weight_for);
    let loss_of = |y: &Mat| -> f64 { y.hadamard(&r).as_slice().iter().sum() };

    model.zero_grad();
    let dx = bwd(model, &r);
    assert_eq!(dx.shape(), x.shape(), "input gradient shape mismatch");

    // Snapshot analytic parameter gradients.
    let analytic: Vec<Vec<f64>> =
        model.params_mut().iter().map(|p| p.g.as_slice().to_vec()).collect();

    // Parameter gradients.
    let num_params = analytic.len();
    for pi in 0..num_params {
        let n = analytic[pi].len();
        let stride = (n / 64).max(1);
        for ei in (0..n).step_by(stride) {
            let orig = {
                let mut ps = model.params_mut();
                let v = ps[pi].w.as_slice()[ei];
                ps[pi].w.as_mut_slice()[ei] = v + eps;
                v
            };
            let lp = loss_of(&fwd(model, x));
            {
                let mut ps = model.params_mut();
                ps[pi].w.as_mut_slice()[ei] = orig - eps;
            }
            let lm = loss_of(&fwd(model, x));
            {
                let mut ps = model.params_mut();
                ps[pi].w.as_mut_slice()[ei] = orig;
            }
            let numeric = (lp - lm) / (2.0 * eps);
            let ana = analytic[pi][ei];
            let scale = numeric.abs().max(ana.abs()).max(1.0);
            assert!(
                (numeric - ana).abs() <= tol * scale,
                "param {pi} elem {ei}: numeric {numeric} vs analytic {ana}"
            );
        }
    }

    // Input gradient.
    let mut xp = x.clone();
    let n = x.len();
    let stride = (n / 64).max(1);
    for ei in (0..n).step_by(stride) {
        let orig = xp.as_slice()[ei];
        xp.as_mut_slice()[ei] = orig + eps;
        let lp = loss_of(&fwd(model, &xp));
        xp.as_mut_slice()[ei] = orig - eps;
        let lm = loss_of(&fwd(model, &xp));
        xp.as_mut_slice()[ei] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        let ana = dx.as_slice()[ei];
        let scale = numeric.abs().max(ana.abs()).max(1.0);
        assert!(
            (numeric - ana).abs() <= tol * scale,
            "input elem {ei}: numeric {numeric} vs analytic {ana}"
        );
    }
}

/// Sequence-input variant: `x` is a time-major list of `batch × dim`
/// matrices and `bwd` returns per-step input gradients.
pub fn grad_check_seq<M: HasParams>(
    model: &mut M,
    xs: &[Mat],
    mut fwd: impl FnMut(&mut M, &[Mat]) -> Mat,
    mut bwd: impl FnMut(&mut M, &Mat) -> Vec<Mat>,
    eps: f64,
    tol: f64,
) {
    let y0 = fwd(model, xs);
    let r = Mat::from_fn(y0.rows(), y0.cols(), weight_for);
    let loss_of = |y: &Mat| -> f64 { y.hadamard(&r).as_slice().iter().sum() };

    model.zero_grad();
    let dxs = bwd(model, &r);
    assert_eq!(dxs.len(), xs.len(), "per-step gradient count mismatch");

    let analytic: Vec<Vec<f64>> =
        model.params_mut().iter().map(|p| p.g.as_slice().to_vec()).collect();

    for pi in 0..analytic.len() {
        let n = analytic[pi].len();
        let stride = (n / 48).max(1);
        for ei in (0..n).step_by(stride) {
            let orig = {
                let mut ps = model.params_mut();
                let v = ps[pi].w.as_slice()[ei];
                ps[pi].w.as_mut_slice()[ei] = v + eps;
                v
            };
            let lp = loss_of(&fwd(model, xs));
            {
                let mut ps = model.params_mut();
                ps[pi].w.as_mut_slice()[ei] = orig - eps;
            }
            let lm = loss_of(&fwd(model, xs));
            {
                let mut ps = model.params_mut();
                ps[pi].w.as_mut_slice()[ei] = orig;
            }
            let numeric = (lp - lm) / (2.0 * eps);
            let ana = analytic[pi][ei];
            let scale = numeric.abs().max(ana.abs()).max(1.0);
            assert!(
                (numeric - ana).abs() <= tol * scale,
                "param {pi} elem {ei}: numeric {numeric} vs analytic {ana}"
            );
        }
    }

    // Input gradients, probing a few steps.
    let mut xs_mut: Vec<Mat> = xs.to_vec();
    let step_stride = (xs.len() / 4).max(1);
    for t in (0..xs.len()).step_by(step_stride) {
        let n = xs[t].len();
        let stride = (n / 16).max(1);
        for ei in (0..n).step_by(stride) {
            let orig = xs_mut[t].as_slice()[ei];
            xs_mut[t].as_mut_slice()[ei] = orig + eps;
            let lp = loss_of(&fwd(model, &xs_mut));
            xs_mut[t].as_mut_slice()[ei] = orig - eps;
            let lm = loss_of(&fwd(model, &xs_mut));
            xs_mut[t].as_mut_slice()[ei] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let ana = dxs[t].as_slice()[ei];
            let scale = numeric.abs().max(ana.abs()).max(1.0);
            assert!(
                (numeric - ana).abs() <= tol * scale,
                "step {t} elem {ei}: numeric {numeric} vs analytic {ana}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_for_is_deterministic_and_bounded() {
        for r in 0..10 {
            for c in 0..10 {
                let w = weight_for(r, c);
                assert!((-1.0..=1.0).contains(&w));
                assert_eq!(w, weight_for(r, c));
            }
        }
        assert_ne!(weight_for(0, 1), weight_for(1, 0));
    }
}
