//! Lower bounds for DTW (Keogh & Ratanamahatana), used to prune full DTW
//! computations: `lb_keogh(q, c) ≤ dtw(q, c)` for equal-length sequences
//! under the same band, so candidates whose bound already exceeds the
//! current threshold can be skipped in O(T).

/// The upper/lower running envelope of a sequence under band half-width
/// `w`: `upper[i] = max(seq[i−w ..= i+w])`, `lower[i] = min(...)`.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Per-position maxima of the banded neighbourhood.
    pub upper: Vec<f64>,
    /// Per-position minima of the banded neighbourhood.
    pub lower: Vec<f64>,
}

impl Envelope {
    /// Build the envelope of `seq` for band half-width `w`.
    ///
    /// Uses the monotonic-deque sliding-window-extrema algorithm, so the
    /// whole envelope costs O(T) regardless of `w`.
    pub fn new(seq: &[f64], w: usize) -> Self {
        let n = seq.len();
        let mut upper = vec![0.0; n];
        let mut lower = vec![0.0; n];
        // Window at i covers [i-w, i+w] clamped; equivalent to a sliding
        // window of width 2w+1 centred at i.
        let mut maxq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut minq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut right = 0usize; // exclusive frontier of pushed elements
        for i in 0..n {
            let lo = i.saturating_sub(w);
            let hi = (i + w + 1).min(n); // exclusive
            while right < hi {
                while maxq.back().is_some_and(|&b| seq[b] <= seq[right]) {
                    maxq.pop_back();
                }
                maxq.push_back(right);
                while minq.back().is_some_and(|&b| seq[b] >= seq[right]) {
                    minq.pop_back();
                }
                minq.push_back(right);
                right += 1;
            }
            while maxq.front().is_some_and(|&f| f < lo) {
                maxq.pop_front();
            }
            while minq.front().is_some_and(|&f| f < lo) {
                minq.pop_front();
            }
            upper[i] = seq[*maxq.front().expect("window is non-empty")];
            lower[i] = seq[*minq.front().expect("window is non-empty")];
        }
        Self { upper, lower }
    }

    /// LB_Keogh of `query` against this (candidate's) envelope.
    ///
    /// # Panics
    /// Panics if `query` length differs from the envelope length.
    pub fn lb_keogh(&self, query: &[f64]) -> f64 {
        assert_eq!(query.len(), self.upper.len(), "LB_Keogh requires equal lengths");
        let mut acc = 0.0;
        for ((&q, &u), &l) in query.iter().zip(&self.upper).zip(&self.lower) {
            if q > u {
                acc += (q - u) * (q - u);
            } else if q < l {
                acc += (l - q) * (l - q);
            }
        }
        acc.sqrt()
    }
}

/// One-shot LB_Keogh: envelope of `candidate`, bound against `query`.
pub fn lb_keogh(query: &[f64], candidate: &[f64], w: usize) -> f64 {
    Envelope::new(candidate, w).lb_keogh(query)
}

/// LB_Kim (simplified 4-point variant): max of endpoint distances. A
/// cheaper O(1) bound checked before LB_Keogh.
pub fn lb_kim(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let first = (a[0] - b[0]).abs();
    let last = (a[a.len() - 1] - b[b.len() - 1]).abs();
    first.max(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw_distance;
    use proptest::prelude::*;

    #[test]
    fn envelope_bounds_contain_sequence() {
        let seq = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let env = Envelope::new(&seq, 2);
        for (i, &v) in seq.iter().enumerate() {
            assert!(env.lower[i] <= v && v <= env.upper[i]);
        }
    }

    #[test]
    fn envelope_matches_naive_computation() {
        let seq = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        for w in [0usize, 1, 3, 20] {
            let env = Envelope::new(&seq, w);
            for i in 0..seq.len() {
                let lo = i.saturating_sub(w);
                let hi = (i + w).min(seq.len() - 1);
                let naive_max =
                    seq[lo..=hi].iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let naive_min = seq[lo..=hi].iter().copied().fold(f64::INFINITY, f64::min);
                assert_eq!(env.upper[i], naive_max, "w={w} i={i}");
                assert_eq!(env.lower[i], naive_min, "w={w} i={i}");
            }
        }
    }

    #[test]
    fn lb_keogh_is_zero_inside_envelope() {
        let c = [0.0, 1.0, 2.0, 1.0, 0.0];
        assert_eq!(lb_keogh(&c, &c, 1), 0.0);
    }

    #[test]
    fn lb_kim_zero_on_identical_endpoints() {
        assert_eq!(lb_kim(&[1.0, 5.0, 2.0], &[1.0, 9.0, 2.0]), 0.0);
        assert_eq!(lb_kim(&[], &[]), 0.0);
    }

    #[test]
    fn lb_kim_bounds_dtw() {
        // DTW must match endpoints, so |a0-b0| and |an-bm| both lower-bound it.
        let a = [5.0, 1.0, 1.0];
        let b = [0.0, 1.0, 2.0];
        assert!(lb_kim(&a, &b) <= dtw_distance(&a, &b, 3) + 1e-12);
    }

    proptest! {
        /// The core soundness property: LB_Keogh never exceeds true DTW
        /// (equal lengths, same band).
        #[test]
        fn lb_keogh_lower_bounds_dtw(
            a in proptest::collection::vec(-50.0f64..50.0, 4..24),
            b in proptest::collection::vec(-50.0f64..50.0, 4..24),
            w in 0usize..8,
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let lb = lb_keogh(a, b, w);
            let d = dtw_distance(a, b, w);
            prop_assert!(lb <= d + 1e-9, "lb {lb} > dtw {d}");
        }

        /// Early-abandoned DTW agrees with plain DTW when not cut.
        #[test]
        fn early_abandon_is_consistent(
            a in proptest::collection::vec(-10.0f64..10.0, 4..16),
            b in proptest::collection::vec(-10.0f64..10.0, 4..16),
        ) {
            let d = dtw_distance(&a, &b, 4);
            let e = crate::dtw::dtw_distance_early_abandon(&a, &b, 4, d + 1.0);
            prop_assert!((d - e).abs() < 1e-9);
        }

        /// DTW is symmetric and zero on identical inputs.
        #[test]
        fn dtw_metric_like_properties(
            a in proptest::collection::vec(-10.0f64..10.0, 2..16),
            b in proptest::collection::vec(-10.0f64..10.0, 2..16),
        ) {
            prop_assert!(dtw_distance(&a, &a, 3) == 0.0);
            let ab = dtw_distance(&a, &b, usize::MAX);
            let ba = dtw_distance(&b, &a, usize::MAX);
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!(ab >= 0.0);
        }

        /// DTW never exceeds lock-step Euclidean distance (equal lengths,
        /// any band ≥ 0 includes the diagonal path).
        #[test]
        fn dtw_below_euclidean(
            pairs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 2..20),
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let d = dtw_distance(&a, &b, 2);
            let e = crate::dtw::euclidean(&a, &b);
            prop_assert!(d <= e + 1e-9);
        }
    }
}
