#![warn(missing_docs)]
//! Dynamic time warping and nearest-neighbour machinery (paper Sec. IV-B).
//!
//! The workload processor measures trace similarity with **Dynamic Time
//! Warping** because "due to the possibility of temporal drift,
//! [Euclidean/cosine distance] are unable to precisely match two warped
//! workload traces". Three pieces live here:
//!
//! * [`dtw`] — Algorithm 1: banded (Sakoe–Chiba window `w`) DTW with the
//!   squared point cost and a final square root;
//! * [`lb`] — the LB_Keogh lower bound the paper adopts "to further
//!   decrease the time complexity of DTW to linear time O(T)", plus the
//!   cheaper LB_Kim bound and an early-abandoning DTW;
//! * [`balltree`] — the Ball-Tree used by the Descender clustering
//!   algorithm "to speed up discovery of neighborhood workload traces".
//!
//! [`distance::Distance`] abstracts over DTW / Euclidean / cosine so the
//! clustering quality comparison in the ablation bench can swap measures.

pub mod balltree;
pub mod distance;
pub mod dtw;
pub mod lb;
pub mod path;

pub use balltree::BallTree;
pub use distance::{CosineDistance, Distance, DtwDistance, EuclideanDistance};
pub use dtw::{
    dtw_distance, dtw_distance_early_abandon, dtw_distance_early_abandon_reference,
    dtw_distance_early_abandon_scratch, DtwScratch,
};
pub use lb::{lb_keogh, lb_kim, Envelope};
pub use path::{dba_barycenter, dtw_path, mean_dtw_to};
