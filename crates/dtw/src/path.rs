//! DTW alignment paths and DTW barycenter averaging (DBA).
//!
//! The clustering stage needs a *representative* per cluster. The paper
//! uses the element-wise average of member traces, which blurs features
//! when members are time-shifted — exactly the case DTW clustering
//! produces. [`dba_barycenter`] implements Petitjean's DTW Barycenter
//! Averaging: it iteratively refines a centroid by aligning every member
//! to it with [`dtw_path`] and averaging the aligned values, yielding a
//! representative whose *shape* matches the members. The ablation bench
//! compares both representatives.

use crate::dtw::dtw_distance;

/// The optimal DTW alignment between two sequences under band `w`:
/// a list of `(i, j)` index pairs, monotone in both coordinates, from
/// `(0, 0)` to `(n−1, m−1)`, plus the distance.
///
/// Returns `None` when no path exists (one input empty).
pub fn dtw_path(a: &[f64], b: &[f64], window: usize) -> Option<(Vec<(usize, usize)>, f64)> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return None;
    }
    let w = window.max(n.abs_diff(m));
    // Full matrix (path recovery needs it); O(n·m) memory is fine for
    // trace lengths in the hundreds.
    let inf = f64::INFINITY;
    let mut cost = vec![inf; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    cost[idx(0, 0)] = 0.0;
    for i in 1..=n {
        let lo = i.saturating_sub(w).max(1);
        let hi = i.saturating_add(w).min(m);
        for j in lo..=hi {
            let d = a[i - 1] - b[j - 1];
            let best = cost[idx(i - 1, j)]
                .min(cost[idx(i, j - 1)])
                .min(cost[idx(i - 1, j - 1)]);
            if best.is_finite() {
                cost[idx(i, j)] = d * d + best;
            }
        }
    }
    if !cost[idx(n, m)].is_finite() {
        return None;
    }
    // Backtrack.
    let mut path = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        path.push((i - 1, j - 1));
        let diag = cost[idx(i - 1, j - 1)];
        let up = cost[idx(i - 1, j)];
        let left = cost[idx(i, j - 1)];
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();
    Some((path, cost[idx(n, m)].sqrt()))
}

/// One DBA refinement step: align every member to `center`, collect the
/// member values mapped to each center position, and average them.
fn dba_step(center: &[f64], members: &[&[f64]], window: usize) -> Vec<f64> {
    let mut sums = vec![0.0f64; center.len()];
    let mut counts = vec![0usize; center.len()];
    for member in members {
        if let Some((path, _)) = dtw_path(center, member, window) {
            for (ci, mi) in path {
                sums[ci] += member[mi];
                counts[ci] += 1;
            }
        }
    }
    sums.iter()
        .zip(&counts)
        .zip(center)
        .map(|((&s, &c), &old)| if c > 0 { s / c as f64 } else { old })
        .collect()
}

/// DTW Barycenter Averaging: a shape-preserving centroid of `members`.
///
/// Starts from the element-wise mean and refines `iterations` times
/// (3–5 is typically enough to converge). All members must share one
/// length (they do, coming out of the trace registry). Returns an empty
/// vector when `members` is empty.
pub fn dba_barycenter(members: &[&[f64]], window: usize, iterations: usize) -> Vec<f64> {
    let Some(first) = members.first() else {
        return Vec::new();
    };
    let len = first.len();
    // Initial centroid: element-wise mean.
    let mut center = vec![0.0f64; len];
    for m in members {
        assert_eq!(m.len(), len, "DBA members must share one length");
        for (c, v) in center.iter_mut().zip(*m) {
            *c += v;
        }
    }
    for c in &mut center {
        *c /= members.len() as f64;
    }
    for _ in 0..iterations {
        center = dba_step(&center, members, window);
    }
    center
}

/// Mean DTW distance from `center` to each member — the quantity DBA
/// (approximately) minimizes; used to compare representatives.
pub fn mean_dtw_to(center: &[f64], members: &[&[f64]], window: usize) -> f64 {
    if members.is_empty() {
        return 0.0;
    }
    members.iter().map(|m| dtw_distance(center, m, window)).sum::<f64>() / members.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_of_identical_sequences_is_diagonal() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let (path, d) = dtw_path(&a, &a, 2).expect("path exists");
        assert_eq!(d, 0.0);
        assert_eq!(path, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn path_endpoints_and_monotonicity() {
        let a = [0.0, 1.0, 5.0, 2.0, 0.0];
        let b = [0.0, 5.0, 5.0, 0.0];
        let (path, _) = dtw_path(&a, &b, 5).expect("path exists");
        assert_eq!(*path.first().expect("non-empty"), (0, 0));
        assert_eq!(*path.last().expect("non-empty"), (4, 3));
        for w in path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0, "monotone");
            assert!(i1 - i0 <= 1 && j1 - j0 <= 1, "single steps");
        }
    }

    #[test]
    fn path_cost_matches_dtw_distance() {
        let a = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let b = [2.0, 7.0, 1.0, 8.0];
        let (path, d) = dtw_path(&a, &b, 4).expect("path exists");
        assert!((d - dtw_distance(&a, &b, 4)).abs() < 1e-12);
        // Recompute the cost along the path.
        let recomputed: f64 = path.iter().map(|&(i, j)| (a[i] - b[j]) * (a[i] - b[j])).sum();
        assert!((recomputed.sqrt() - d).abs() < 1e-12);
    }

    #[test]
    fn path_none_for_empty_input() {
        assert!(dtw_path(&[], &[1.0], 1).is_none());
    }

    #[test]
    fn dba_of_identical_members_is_the_member() {
        let m = [1.0, 4.0, 2.0, 8.0];
        let members: Vec<&[f64]> = vec![&m, &m, &m];
        let c = dba_barycenter(&members, 2, 3);
        for (a, b) in c.iter().zip(&m) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn dba_beats_mean_on_shifted_peaks() {
        // Two copies of a peak, shifted: the element-wise mean has two
        // half-height bumps; DBA recovers a single full-height peak and
        // sits closer (in DTW) to both members.
        let n = 40;
        let peak = |center: usize| -> Vec<f64> {
            (0..n)
                .map(|i| {
                    let d = i as f64 - center as f64;
                    (-d * d / 8.0).exp() * 10.0
                })
                .collect()
        };
        let a = peak(15);
        let b = peak(25);
        let members: Vec<&[f64]> = vec![&a, &b];
        let mean: Vec<f64> = (0..n).map(|i| (a[i] + b[i]) / 2.0).collect();
        let dba = dba_barycenter(&members, 10, 5);
        let d_mean = mean_dtw_to(&mean, &members, 10);
        let d_dba = mean_dtw_to(&dba, &members, 10);
        assert!(
            d_dba < d_mean,
            "DBA ({d_dba:.3}) should sit closer to members than the mean ({d_mean:.3})"
        );
        // And the DBA centroid keeps the peak height.
        let dba_max = dba.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean_max = mean.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(dba_max > mean_max, "DBA peak {dba_max:.2} vs blurred mean {mean_max:.2}");
    }

    #[test]
    fn dba_empty_members() {
        assert!(dba_barycenter(&[], 3, 3).is_empty());
    }

    #[test]
    fn mean_dtw_to_zero_for_exact_center() {
        let m = [1.0, 2.0];
        let members: Vec<&[f64]> = vec![&m];
        assert_eq!(mean_dtw_to(&m, &members, 1), 0.0);
    }
}
