//! Ball-Tree nearest-neighbour index (paper Sec. IV-B/IV-C).
//!
//! Descender "first builds a Ball-Tree on the current workload traces,
//! which partitions traces into a nested set of hyperspheres known as
//! 'balls' to speed up discovery of neighborhood workload traces".
//!
//! The tree here is generic over a [`Distance`]. Branch-and-bound pruning
//! (`d(q, center) − radius > ρ` ⇒ skip subtree) is exact for true metrics
//! (Euclidean). DTW violates the triangle inequality, so for DTW the tree
//! additionally verifies every surviving candidate with the LB_Kim →
//! LB_Keogh → early-abandoned-DTW cascade and, by default, disables the
//! ball-level pruning (`prune = false`) which preserves exactness while
//! still gaining the cascade's linear-time filtering and the tree's
//! cache-friendly leaf grouping. Callers who accept approximate results
//! (Descender's online path) can enable pruning for additional speed.

use crate::distance::Distance;
use crate::dtw::DtwScratch;

const LEAF_SIZE: usize = 8;

#[derive(Debug)]
enum Node {
    Leaf {
        center: Vec<f64>,
        radius: f64,
        points: Vec<usize>,
    },
    Internal {
        center: Vec<f64>,
        radius: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn center(&self) -> &[f64] {
        match self {
            Node::Leaf { center, .. } | Node::Internal { center, .. } => center,
        }
    }

    fn radius(&self) -> f64 {
        match self {
            Node::Leaf { radius, .. } | Node::Internal { radius, .. } => *radius,
        }
    }

    fn radius_mut(&mut self) -> &mut f64 {
        match self {
            Node::Leaf { radius, .. } | Node::Internal { radius, .. } => radius,
        }
    }
}

/// A Ball-Tree over fixed-length points with a pluggable distance.
pub struct BallTree<D: Distance> {
    metric: D,
    points: Vec<Vec<f64>>,
    root: Option<Node>,
    /// Enable ball-level branch-and-bound pruning. Exact for metrics;
    /// heuristic for DTW (see module docs).
    pub prune: bool,
}

impl<D: Distance> BallTree<D> {
    /// Build a tree over `points` (all the same length).
    ///
    /// # Panics
    /// Panics if point lengths differ.
    pub fn build(points: Vec<Vec<f64>>, metric: D) -> Self {
        if let Some(first) = points.first() {
            assert!(
                points.iter().all(|p| p.len() == first.len()),
                "all points must share one length"
            );
        }
        let ids: Vec<usize> = (0..points.len()).collect();
        let root = if ids.is_empty() { None } else { Some(Self::build_node(&points, ids, &metric)) };
        Self { metric, points, root, prune: true }
    }

    fn centroid(points: &[Vec<f64>], ids: &[usize]) -> Vec<f64> {
        let dim = points[ids[0]].len();
        let mut c = vec![0.0; dim];
        for &i in ids {
            for (acc, v) in c.iter_mut().zip(&points[i]) {
                *acc += v;
            }
        }
        for v in &mut c {
            *v /= ids.len() as f64;
        }
        c
    }

    fn build_node(points: &[Vec<f64>], ids: Vec<usize>, metric: &D) -> Node {
        let center = Self::centroid(points, &ids);
        let radius = ids
            .iter()
            .map(|&i| metric.dist(&center, &points[i]))
            .fold(0.0f64, f64::max);
        if ids.len() <= LEAF_SIZE {
            return Node::Leaf { center, radius, points: ids };
        }
        // Pick two far-apart pivots: the point farthest from the centroid,
        // then the point farthest from that pivot.
        let p1 = *ids
            .iter()
            .max_by(|&&a, &&b| {
                metric.dist(&center, &points[a]).total_cmp(&metric.dist(&center, &points[b]))
            })
            .expect("non-empty ids");
        let p2 = *ids
            .iter()
            .max_by(|&&a, &&b| {
                metric
                    .dist(&points[p1], &points[a])
                    .total_cmp(&metric.dist(&points[p1], &points[b]))
            })
            .expect("non-empty ids");
        let mut left_ids = Vec::new();
        let mut right_ids = Vec::new();
        for &i in &ids {
            let d1 = metric.dist(&points[p1], &points[i]);
            let d2 = metric.dist(&points[p2], &points[i]);
            if d1 <= d2 {
                left_ids.push(i);
            } else {
                right_ids.push(i);
            }
        }
        // Degenerate split (all points identical): fall back to a leaf.
        if left_ids.is_empty() || right_ids.is_empty() {
            return Node::Leaf { center, radius, points: ids };
        }
        Node::Internal {
            center,
            radius,
            left: Box::new(Self::build_node(points, left_ids, metric)),
            right: Box::new(Self::build_node(points, right_ids, metric)),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The stored point with index `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i]
    }

    /// The distance metric the tree was built with.
    pub fn metric(&self) -> &D {
        &self.metric
    }

    /// Insert a point online. The point descends to the closer child at
    /// each level; node radii are enlarged so pruning stays valid with
    /// respect to the (unchanged) stored centers.
    pub fn insert(&mut self, point: Vec<f64>) -> usize {
        if let Some(first) = self.points.first() {
            assert_eq!(first.len(), point.len(), "all points must share one length");
        }
        let id = self.points.len();
        self.points.push(point);
        let p = self.points[id].clone();
        match self.root.take() {
            None => {
                self.root = Some(Node::Leaf {
                    center: p.clone(),
                    radius: 0.0,
                    points: vec![id],
                });
            }
            Some(mut node) => {
                Self::insert_into(&mut node, id, &p, &self.metric);
                self.root = Some(node);
            }
        }
        id
    }

    fn insert_into(node: &mut Node, id: usize, p: &[f64], metric: &D) {
        let d_center = metric.dist(node.center(), p);
        if d_center > node.radius() {
            *node.radius_mut() = d_center;
        }
        match node {
            Node::Leaf { points, .. } => {
                points.push(id);
                // Leaves are allowed to overflow; rebuild() restores balance.
            }
            Node::Internal { left, right, .. } => {
                let dl = metric.dist(left.center(), p);
                let dr = metric.dist(right.center(), p);
                if dl <= dr {
                    Self::insert_into(left, id, p, metric);
                } else {
                    Self::insert_into(right, id, p, metric);
                }
            }
        }
    }

    /// Rebuild the tree from the stored points (after many inserts).
    pub fn rebuild(&mut self) {
        let ids: Vec<usize> = (0..self.points.len()).collect();
        self.root = if ids.is_empty() {
            None
        } else {
            Some(Self::build_node(&self.points, ids, &self.metric))
        };
    }

    /// All `(index, distance)` pairs within `radius` of `query`,
    /// unsorted. Uses ball pruning if [`BallTree::prune`] is set, and the
    /// metric's lower-bound cascade on every candidate.
    pub fn within(&self, query: &[f64], radius: f64) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        // One scratch per query: leaf verification runs early-abandoned
        // DTW on every surviving candidate, so the rolling rows are
        // reused across all of them instead of reallocated per pair.
        let mut scratch = DtwScratch::new();
        if let Some(root) = &self.root {
            self.within_rec(root, query, radius, &mut out, &mut scratch);
        }
        out
    }

    fn within_rec(
        &self,
        node: &Node,
        query: &[f64],
        radius: f64,
        out: &mut Vec<(usize, f64)>,
        scratch: &mut DtwScratch,
    ) {
        if self.prune {
            let d = self.metric.dist(node.center(), query);
            if d - node.radius() > radius {
                return;
            }
        }
        match node {
            Node::Leaf { points, .. } => {
                for &i in points {
                    let p = &self.points[i];
                    if self.metric.lower_bound(query, p) > radius {
                        continue;
                    }
                    let d = self.metric.dist_with_cutoff_scratch(query, p, radius, scratch);
                    if d <= radius {
                        out.push((i, d));
                    }
                }
            }
            Node::Internal { left, right, .. } => {
                self.within_rec(left, query, radius, out, scratch);
                self.within_rec(right, query, radius, out, scratch);
            }
        }
    }

    /// Exact linear scan with the lower-bound cascade — the O(T)-per-pair
    /// LB_Keogh-accelerated path the paper describes; used as the ground
    /// truth for DTW queries.
    pub fn scan_within(&self, query: &[f64], radius: f64) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut scratch = DtwScratch::new();
        for (i, p) in self.points.iter().enumerate() {
            if self.metric.lower_bound(query, p) > radius {
                continue;
            }
            let d = self.metric.dist_with_cutoff_scratch(query, p, radius, &mut scratch);
            if d <= radius {
                out.push((i, d));
            }
        }
        out
    }

    /// The `k` nearest neighbours of `query`, sorted by ascending
    /// distance.
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
        if k == 0 {
            return best;
        }
        if let Some(root) = &self.root {
            self.knn_rec(root, query, k, &mut best);
        }
        best
    }

    fn knn_rec(&self, node: &Node, query: &[f64], k: usize, best: &mut Vec<(usize, f64)>) {
        let worst = if best.len() == k { best[k - 1].1 } else { f64::INFINITY };
        if self.prune {
            let d = self.metric.dist(node.center(), query);
            if d - node.radius() > worst {
                return;
            }
        }
        match node {
            Node::Leaf { points, .. } => {
                for &i in points {
                    let worst = if best.len() == k { best[k - 1].1 } else { f64::INFINITY };
                    let p = &self.points[i];
                    if self.metric.lower_bound(query, p) > worst {
                        continue;
                    }
                    let d = self.metric.dist(query, p);
                    if d < worst || best.len() < k {
                        let pos = best.partition_point(|&(_, bd)| bd <= d);
                        best.insert(pos, (i, d));
                        best.truncate(k);
                    }
                }
            }
            Node::Internal { left, right, .. } => {
                // Visit the closer child first for tighter bounds sooner.
                let dl = self.metric.dist(left.center(), query);
                let dr = self.metric.dist(right.center(), query);
                if dl <= dr {
                    self.knn_rec(left, query, k, best);
                    self.knn_rec(right, query, k, best);
                } else {
                    self.knn_rec(right, query, k, best);
                    self.knn_rec(left, query, k, best);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{DtwDistance, EuclideanDistance};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(seed: u64, n: usize, dim: usize) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect()).collect()
    }

    fn brute_within(
        points: &[Vec<f64>],
        metric: &impl Distance,
        q: &[f64],
        r: f64,
    ) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (i, metric.dist(q, p)))
            .filter(|&(_, d)| d <= r)
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v
    }

    #[test]
    fn euclidean_within_matches_brute_force() {
        let pts = random_points(1, 200, 8);
        let tree = BallTree::build(pts.clone(), EuclideanDistance);
        let q = &pts[17];
        for r in [0.5, 2.0, 8.0, 30.0] {
            let mut got = tree.within(q, r);
            got.sort_by(|a, b| a.1.total_cmp(&b.1));
            let want = brute_within(&pts, &EuclideanDistance, q, r);
            assert_eq!(got.len(), want.len(), "radius {r}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.0, w.0);
            }
        }
    }

    #[test]
    fn euclidean_knn_matches_brute_force() {
        let pts = random_points(2, 150, 6);
        let tree = BallTree::build(pts.clone(), EuclideanDistance);
        let q = vec![0.0; 6];
        let got = tree.knn(&q, 10);
        let mut all: Vec<(usize, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (i, EuclideanDistance.dist(&q, p)))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1));
        assert_eq!(got.len(), 10);
        for (g, w) in got.iter().zip(&all[..10]) {
            assert!((g.1 - w.1).abs() < 1e-12);
        }
    }

    #[test]
    fn dtw_unpruned_tree_is_exact() {
        let pts = random_points(3, 80, 12);
        let metric = DtwDistance::new(3);
        let mut tree = BallTree::build(pts.clone(), metric);
        tree.prune = false;
        let q = &pts[5];
        for r in [1.0, 5.0, 20.0] {
            let mut got = tree.within(q, r);
            got.sort_by(|a, b| a.1.total_cmp(&b.1));
            let want = brute_within(&pts, &metric, q, r);
            assert_eq!(
                got.iter().map(|g| g.0).collect::<Vec<_>>(),
                want.iter().map(|w| w.0).collect::<Vec<_>>(),
                "radius {r}"
            );
        }
    }

    #[test]
    fn scan_within_is_exact_for_dtw() {
        let pts = random_points(4, 60, 10);
        let metric = DtwDistance::new(4);
        let tree = BallTree::build(pts.clone(), metric);
        let q = &pts[0];
        let mut got = tree.scan_within(q, 6.0);
        got.sort_by(|a, b| a.1.total_cmp(&b.1));
        let want = brute_within(&pts, &metric, q, 6.0);
        assert_eq!(
            got.iter().map(|g| g.0).collect::<Vec<_>>(),
            want.iter().map(|w| w.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn insert_then_query_finds_new_point() {
        let pts = random_points(5, 40, 5);
        let mut tree = BallTree::build(pts, EuclideanDistance);
        let new_point = vec![100.0; 5];
        let id = tree.insert(new_point.clone());
        let got = tree.within(&new_point, 0.1);
        assert!(got.iter().any(|&(i, _)| i == id));
    }

    #[test]
    fn insert_into_empty_tree() {
        let mut tree = BallTree::build(Vec::new(), EuclideanDistance);
        assert!(tree.is_empty());
        tree.insert(vec![1.0, 2.0]);
        tree.insert(vec![1.1, 2.0]);
        assert_eq!(tree.within(&[1.0, 2.0], 0.5).len(), 2);
    }

    #[test]
    fn rebuild_preserves_results() {
        let pts = random_points(6, 30, 4);
        let mut tree = BallTree::build(pts.clone(), EuclideanDistance);
        for _ in 0..20 {
            tree.insert(vec![0.5; 4]);
        }
        let before = tree.within(&[0.5; 4], 1.0).len();
        tree.rebuild();
        let after = tree.within(&[0.5; 4], 1.0).len();
        assert_eq!(before, after);
    }

    #[test]
    fn knn_zero_k_is_empty() {
        let tree = BallTree::build(random_points(7, 10, 3), EuclideanDistance);
        assert!(tree.knn(&[0.0; 3], 0).is_empty());
    }

    #[test]
    fn identical_points_build_a_leaf_not_a_loop() {
        // Degenerate split must not recurse forever.
        let pts = vec![vec![1.0, 1.0]; 50];
        let tree = BallTree::build(pts, EuclideanDistance);
        assert_eq!(tree.within(&[1.0, 1.0], 0.0).len(), 50);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Euclidean tree queries are exact for arbitrary point sets.
        #[test]
        fn prop_euclidean_tree_is_exact(
            seed in 0u64..500,
            n in 1usize..60,
            r in 0.1f64..15.0,
        ) {
            let pts = random_points(seed, n, 4);
            let tree = BallTree::build(pts.clone(), EuclideanDistance);
            let q = pts[0].clone();
            let mut got: Vec<usize> = tree.within(&q, r).into_iter().map(|g| g.0).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = brute_within(&pts, &EuclideanDistance, &q, r)
                .into_iter()
                .map(|w| w.0)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
