//! Banded dynamic time warping (paper Algorithm 1).
//!
//! The recurrence fills a cost matrix `DTW[i][j] = (a_i − b_j)² +
//! min(DTW[i−1][j], DTW[i][j−1], DTW[i−1][j−1])` restricted to a
//! Sakoe–Chiba band of half-width `w`, and returns
//! `sqrt(DTW[n−1][m−1])`. Two rolling rows keep memory at `O(m)` instead
//! of the paper's didactic `T × T` matrix.

/// DTW distance between `a` and `b` under band half-width `window`.
///
/// Sequences may have different lengths; the band is widened to at least
/// `|len(a) − len(b)|` so a path always exists. `window = usize::MAX`
/// gives unconstrained DTW. Returns `0.0` when both inputs are empty and
/// `f64::INFINITY` when exactly one is.
pub fn dtw_distance(a: &[f64], b: &[f64], window: usize) -> f64 {
    dtw_distance_early_abandon(a, b, window, f64::INFINITY)
}

/// Reusable scratch space for the two rolling DTW rows.
///
/// `dtw_distance_early_abandon` allocates two fresh `Vec`s per call,
/// which dominates the cost of short-series comparisons in the hot
/// `O(n²)` clustering loops. Callers that evaluate many pairs (the
/// Ball-Tree leaf verification, the Descender pairwise matrix) keep one
/// `DtwScratch` per thread and pass it to
/// [`dtw_distance_early_abandon_scratch`]; the buffers grow to the
/// largest series seen and are reused verbatim afterwards.
#[derive(Debug, Clone, Default)]
pub struct DtwScratch {
    prev: Vec<f64>,
    curr: Vec<f64>,
}

impl DtwScratch {
    /// Empty scratch; rows are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensure both rows hold at least `len` cells, all set to +∞.
    fn reset(&mut self, len: usize) {
        self.prev.clear();
        self.prev.resize(len, f64::INFINITY);
        self.curr.clear();
        self.curr.resize(len, f64::INFINITY);
    }
}

/// DTW with early abandoning: returns `f64::INFINITY` as soon as every
/// cell of the current row exceeds `cutoff²`, where `cutoff` is the best
/// (smallest) distance found so far by the caller. Used by the Ball-Tree
/// and the LB_Keogh-filtered scans.
///
/// Allocates two rolling rows per call; hot loops should prefer
/// [`dtw_distance_early_abandon_scratch`] with a reused [`DtwScratch`].
pub fn dtw_distance_early_abandon(a: &[f64], b: &[f64], window: usize, cutoff: f64) -> f64 {
    let mut scratch = DtwScratch::new();
    dtw_distance_early_abandon_scratch(a, b, window, cutoff, &mut scratch)
}

/// [`dtw_distance_early_abandon`] with caller-provided row buffers —
/// bitwise-identical results, zero allocations once the scratch has
/// grown to the longest series in play.
pub fn dtw_distance_early_abandon_scratch(
    a: &[f64],
    b: &[f64],
    window: usize,
    cutoff: f64,
    scratch: &mut DtwScratch,
) -> f64 {
    let n = a.len();
    let m = b.len();
    if n == 0 && m == 0 {
        return 0.0;
    }
    if n == 0 || m == 0 {
        return f64::INFINITY;
    }
    // A path must cover the length difference.
    let w = window.max(n.abs_diff(m));
    let cutoff_sq = if cutoff.is_finite() { cutoff * cutoff } else { f64::INFINITY };

    scratch.reset(m + 1);
    let mut prev = &mut scratch.prev;
    let mut curr = &mut scratch.curr;
    prev[0] = 0.0;
    for i in 1..=n {
        let lo = i.saturating_sub(w).max(1);
        let hi = i.saturating_add(w).min(m);
        if lo > hi {
            return f64::INFINITY;
        }
        // `reset` filled both rows with +∞ once per call. The band
        // edges lo(i)/hi(i) are nondecreasing in i, so every in-band
        // cell of this row is overwritten below before anyone reads it,
        // and every out-of-band cell the next row consults still holds
        // +∞ from the initial fill — except `curr[lo − 1]`, which row
        // i−2 may have left finite. One write replaces the old O(m)
        // per-row fill.
        curr[lo - 1] = f64::INFINITY;
        let ai = a[i - 1];
        let mut row_min = f64::INFINITY;
        // Branch-light inner loop: the early-abandon check is hoisted
        // out of the loop (one comparison per row), the running minimum
        // compiles to a select, and the left/diagonal neighbours ride
        // in registers instead of being re-loaded from the row buffers.
        // `up.min(diag)` is computed off the loop-carried chain, so the
        // serial dependence per cell is one `min` plus one add; the
        // reorder is bitwise-safe because every cell is a non-NaN value
        // in [+0.0, +∞] (no −0.0 can arise from squares and sums of
        // them), where `min` is exactly associative.
        let mut diag = prev[lo - 1];
        let mut left = f64::INFINITY;
        for j in lo..=hi {
            let d = ai - b[j - 1];
            let up = prev[j];
            let best = up.min(diag).min(left);
            let v = d * d + best;
            curr[j] = v;
            row_min = row_min.min(v);
            diag = up;
            left = v;
        }
        if row_min > cutoff_sq {
            return f64::INFINITY;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m].sqrt()
}

/// Reference oracle for [`dtw_distance_early_abandon_scratch`]: the
/// pre-optimization kernel, kept verbatim (full per-row +∞ fill,
/// branchy row minimum) so property tests and the bench8 microbench can
/// prove the banded kernel bitwise-identical and measure the win.
pub fn dtw_distance_early_abandon_reference(
    a: &[f64],
    b: &[f64],
    window: usize,
    cutoff: f64,
) -> f64 {
    let n = a.len();
    let m = b.len();
    if n == 0 && m == 0 {
        return 0.0;
    }
    if n == 0 || m == 0 {
        return f64::INFINITY;
    }
    let w = window.max(n.abs_diff(m));
    let cutoff_sq = if cutoff.is_finite() { cutoff * cutoff } else { f64::INFINITY };

    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(f64::INFINITY);
        let lo = i.saturating_sub(w).max(1);
        let hi = i.saturating_add(w).min(m);
        if lo > hi {
            return f64::INFINITY;
        }
        let ai = a[i - 1];
        let mut row_min = f64::INFINITY;
        for j in lo..=hi {
            let d = ai - b[j - 1];
            let cost = d * d;
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            let v = cost + best;
            curr[j] = v;
            if v < row_min {
                row_min = v;
            }
        }
        if row_min > cutoff_sq {
            return f64::INFINITY;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m].sqrt()
}

/// Squared Euclidean "lock-step" distance — the baseline DTW beats; only
/// defined for equal lengths.
///
/// # Panics
/// Panics when lengths differ.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean distance requires equal lengths");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let a = [1.0, 2.0, 3.0, 2.0];
        assert_eq!(dtw_distance(&a, &a, 2), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = [1.0, 3.0, 4.0, 9.0];
        let b = [1.0, 2.0, 4.0, 8.0, 9.0];
        assert!((dtw_distance(&a, &b, 3) - dtw_distance(&b, &a, 3)).abs() < 1e-12);
    }

    #[test]
    fn known_small_case() {
        // a = [0, 1], b = [0, 1, 1]: warp the trailing 1 -> distance 0.
        assert_eq!(dtw_distance(&[0.0, 1.0], &[0.0, 1.0, 1.0], 5), 0.0);
    }

    #[test]
    fn shifted_sequence_is_closer_under_dtw_than_euclid() {
        // A sine and its shifted copy: Euclid sees a big gap, DTW almost none.
        let n = 64;
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i as f64 - 3.0) * 0.2).sin()).collect();
        let d_dtw = dtw_distance(&a, &b, 8);
        let d_euc = euclidean(&a, &b);
        assert!(d_dtw < 0.4 * d_euc, "dtw {d_dtw} should be far below euclid {d_euc}");
    }

    #[test]
    fn unconstrained_band_matches_large_window() {
        let a = [3.0, 1.0, 4.0, 1.0, 5.0];
        let b = [2.0, 7.0, 1.0, 8.0, 2.0];
        let full = dtw_distance(&a, &b, usize::MAX);
        let wide = dtw_distance(&a, &b, 5);
        assert!((full - wide).abs() < 1e-12);
    }

    #[test]
    fn window_zero_equal_length_equals_euclidean() {
        // With w = 0 the only path is the diagonal.
        let a = [1.0, 5.0, 2.0];
        let b = [2.0, 3.0, 4.0];
        assert!((dtw_distance(&a, &b, 0) - euclidean(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn narrower_window_never_decreases_distance() {
        let a = [0.0, 2.0, 4.0, 2.0, 0.0, 2.0];
        let b = [0.0, 0.0, 2.0, 4.0, 2.0, 0.0];
        let d1 = dtw_distance(&a, &b, 1);
        let d3 = dtw_distance(&a, &b, 3);
        let d5 = dtw_distance(&a, &b, 5);
        assert!(d1 >= d3 - 1e-12);
        assert!(d3 >= d5 - 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(dtw_distance(&[], &[], 1), 0.0);
        assert_eq!(dtw_distance(&[1.0], &[], 1), f64::INFINITY);
        assert_eq!(dtw_distance(&[], &[1.0], 1), f64::INFINITY);
    }

    #[test]
    fn length_difference_widens_band() {
        // window 0 but different lengths: still finite because the band
        // must at least cover |n - m|.
        let d = dtw_distance(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0, 3.0, 3.0], 0);
        assert!(d.is_finite());
    }

    #[test]
    fn early_abandon_returns_infinity_when_cut() {
        let a = [0.0; 16];
        let b = [100.0; 16];
        let exact = dtw_distance(&a, &b, 4);
        assert!(exact > 1.0);
        let cut = dtw_distance_early_abandon(&a, &b, 4, 1.0);
        assert_eq!(cut, f64::INFINITY);
        // And does not cut when the cutoff is generous.
        let kept = dtw_distance_early_abandon(&a, &b, 4, exact + 1.0);
        assert!((kept - exact).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn euclidean_length_mismatch_panics() {
        euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn banded_kernel_matches_reference_bitwise_over_seeded_corpus() {
        // The band-footprint clear and branch-light inner loop must
        // reproduce the old kernel bit-for-bit over a corpus covering
        // ragged lengths, band widths 0/1/huge, and cut/uncut paths.
        let mut scratch = DtwScratch::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0
        };
        let lens = [1usize, 2, 3, 7, 16, 33, 64];
        let series: Vec<Vec<f64>> =
            lens.iter().map(|&l| (0..l).map(|_| next()).collect()).collect();
        for a in &series {
            for b in &series {
                for window in [0usize, 1, 4, 1000, usize::MAX] {
                    for cutoff in [f64::INFINITY, 25.0, 3.0, 0.1] {
                        let reference =
                            dtw_distance_early_abandon_reference(a, b, window, cutoff);
                        let banded = dtw_distance_early_abandon_scratch(
                            a, b, window, cutoff, &mut scratch,
                        );
                        assert_eq!(
                            reference.to_bits(),
                            banded.to_bits(),
                            "len {}x{} window {} cutoff {}",
                            a.len(),
                            b.len(),
                            window,
                            cutoff
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_variant_is_bitwise_identical_across_reuse() {
        // One scratch reused across pairs of *different* lengths must
        // give exactly the fresh-allocation result every time, cut or
        // uncut — stale cells from a longer earlier pair must not leak.
        let mut scratch = DtwScratch::new();
        let series: Vec<Vec<f64>> = vec![
            (0..48).map(|i| (i as f64 * 0.3).sin()).collect(),
            (0..12).map(|i| i as f64).collect(),
            (0..33).map(|i| (i as f64 * 0.7).cos() * 3.0).collect(),
            vec![5.0; 20],
            vec![],
        ];
        for a in &series {
            for b in &series {
                for cutoff in [f64::INFINITY, 10.0, 0.5] {
                    let fresh = dtw_distance_early_abandon(a, b, 4, cutoff);
                    let reused =
                        dtw_distance_early_abandon_scratch(a, b, 4, cutoff, &mut scratch);
                    assert_eq!(fresh.to_bits(), reused.to_bits());
                }
            }
        }
    }
}
