//! A pluggable distance abstraction so the clustering stage can swap the
//! similarity measure (the paper compares DTW against the "exact"
//! Euclidean/cosine measures that mis-cluster time-shifted twins).

use crate::dtw::{
    dtw_distance, dtw_distance_early_abandon, dtw_distance_early_abandon_scratch, euclidean,
    DtwScratch,
};
use crate::lb::{lb_keogh, lb_kim};

/// A distance between two equal-or-variable-length series.
pub trait Distance: Send + Sync {
    /// The distance value; smaller is more similar.
    fn dist(&self, a: &[f64], b: &[f64]) -> f64;

    /// A cheap lower bound on [`Distance::dist`]. The default (0) is
    /// always sound; implementations override it to enable pruning.
    fn lower_bound(&self, _a: &[f64], _b: &[f64]) -> f64 {
        0.0
    }

    /// Distance that may return `f64::INFINITY` early once it can prove
    /// the result exceeds `cutoff`.
    fn dist_with_cutoff(&self, a: &[f64], b: &[f64], _cutoff: f64) -> f64 {
        self.dist(a, b)
    }

    /// Like [`Distance::dist_with_cutoff`], but reusing caller-owned
    /// [`DtwScratch`] buffers so hot loops avoid per-call allocation.
    /// The default ignores the scratch (non-DTW measures allocate
    /// nothing anyway); implementations must return bitwise-identical
    /// values to `dist_with_cutoff`.
    fn dist_with_cutoff_scratch(
        &self,
        a: &[f64],
        b: &[f64],
        cutoff: f64,
        _scratch: &mut DtwScratch,
    ) -> f64 {
        self.dist_with_cutoff(a, b, cutoff)
    }

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Lock-step Euclidean distance (a true metric).
#[derive(Debug, Clone, Copy, Default)]
pub struct EuclideanDistance;

impl Distance for EuclideanDistance {
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        euclidean(a, b)
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }
}

/// Cosine *distance* `1 − cos(a, b)`, the measure QB5000 clusters with.
/// Zero vectors are defined to be at distance 1 from everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct CosineDistance;

impl Distance for CosineDistance {
    /// Unequal lengths return `f64::INFINITY` instead of panicking,
    /// matching `dtw_distance`'s empty-vs-nonempty convention. We
    /// deliberately do *not* zero-pad the shorter series: padding
    /// would manufacture a finite (and often small) distance between
    /// series that were sampled over incompatible windows, silently
    /// merging them into one cluster. Treating mismatched lengths as
    /// maximally distant keeps such traces apart and keeps a ragged
    /// input from aborting a whole clustering run mid-flight.
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        if a.len() != b.len() {
            return f64::INFINITY;
        }
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            1.0
        } else {
            (1.0 - dot / (na * nb)).max(0.0)
        }
    }

    fn name(&self) -> &'static str {
        "cosine"
    }
}

/// Banded DTW with LB_Kim → LB_Keogh cascading lower bounds.
#[derive(Debug, Clone, Copy)]
pub struct DtwDistance {
    /// Sakoe–Chiba band half-width.
    pub window: usize,
}

impl DtwDistance {
    /// DTW with the given band half-width.
    pub fn new(window: usize) -> Self {
        Self { window }
    }
}

impl Default for DtwDistance {
    /// The experiments use a band of 10% of a day (~14 samples at the
    /// 10-minute interval).
    fn default() -> Self {
        Self { window: 14 }
    }
}

impl Distance for DtwDistance {
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        dtw_distance(a, b, self.window)
    }

    fn lower_bound(&self, a: &[f64], b: &[f64]) -> f64 {
        let kim = lb_kim(a, b);
        if a.len() == b.len() {
            kim.max(lb_keogh(a, b, self.window))
        } else {
            kim
        }
    }

    fn dist_with_cutoff(&self, a: &[f64], b: &[f64], cutoff: f64) -> f64 {
        dtw_distance_early_abandon(a, b, self.window, cutoff)
    }

    fn dist_with_cutoff_scratch(
        &self,
        a: &[f64],
        b: &[f64],
        cutoff: f64,
        scratch: &mut DtwScratch,
    ) -> f64 {
        dtw_distance_early_abandon_scratch(a, b, self.window, cutoff, scratch)
    }

    fn name(&self) -> &'static str {
        "dtw"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_identical_is_zero() {
        let d = CosineDistance;
        assert!(d.dist(&[1.0, 2.0], &[2.0, 4.0]) < 1e-12, "colinear => 0");
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        let d = CosineDistance;
        assert!((d.dist(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_far() {
        let d = CosineDistance;
        assert_eq!(d.dist(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn cosine_length_mismatch_is_infinite_not_panic() {
        // Regression: this used to `assert_eq!` on the lengths and
        // abort the whole clustering run on a single ragged trace.
        let d = CosineDistance;
        assert_eq!(d.dist(&[1.0, 2.0], &[1.0, 2.0, 3.0]), f64::INFINITY);
        assert_eq!(d.dist(&[], &[1.0]), f64::INFINITY);
        // Consistent with the DTW empty-vs-nonempty convention.
        assert_eq!(d.dist(&[], &[1.0]), dtw_distance(&[], &[1.0], 1));
    }

    #[test]
    fn scratch_trait_method_matches_plain_cutoff() {
        let d = DtwDistance::new(3);
        let a = [0.0, 1.0, 5.0, 2.0];
        let b = [1.0, 0.0, 2.0, 5.0];
        let mut scratch = DtwScratch::new();
        let plain = d.dist_with_cutoff(&a, &b, f64::INFINITY);
        let scratched = d.dist_with_cutoff_scratch(&a, &b, f64::INFINITY, &mut scratch);
        assert_eq!(plain.to_bits(), scratched.to_bits());
        // Default impl (non-DTW measures) is a pass-through.
        let e = EuclideanDistance;
        assert_eq!(
            e.dist_with_cutoff_scratch(&a, &b, 1.0, &mut scratch).to_bits(),
            e.dist_with_cutoff(&a, &b, 1.0).to_bits()
        );
    }

    #[test]
    fn dtw_lower_bound_is_sound_here() {
        let d = DtwDistance::new(3);
        let a = [0.0, 1.0, 5.0, 2.0, 0.0, 4.0];
        let b = [1.0, 0.0, 2.0, 5.0, 1.0, 0.0];
        assert!(d.lower_bound(&a, &b) <= d.dist(&a, &b) + 1e-12);
    }

    #[test]
    fn dtw_cutoff_variant_matches_when_uncut() {
        let d = DtwDistance::new(3);
        let a = [0.0, 1.0, 5.0, 2.0];
        let b = [1.0, 0.0, 2.0, 5.0];
        let exact = d.dist(&a, &b);
        assert!((d.dist_with_cutoff(&a, &b, exact + 1.0) - exact).abs() < 1e-12);
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(EuclideanDistance.name(), CosineDistance.name());
        assert_ne!(CosineDistance.name(), DtwDistance::default().name());
    }
}
