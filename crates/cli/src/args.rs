//! A small hand-rolled argument parser (the workspace deliberately
//! avoids dependencies beyond the approved list, so no `clap`).
//!
//! Grammar: `dbaugur <command> [positional…] [--flag value…]`. Flags
//! take exactly one value; unknown flags are an error, as are missing
//! positionals.

use std::collections::HashMap;

/// Parsed invocation: command, positionals, and `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand name.
    pub command: String,
    /// Positional arguments after the command.
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut it = raw.into_iter();
        let command = it.next().ok_or_else(|| ArgError("missing command".into()))?;
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| ArgError(format!("flag --{key} needs a value")))?;
                if flags.insert(key.to_string(), value).is_some() {
                    return Err(ArgError(format!("flag --{key} given twice")));
                }
            } else {
                positional.push(a);
            }
        }
        Ok(Self { command, positional, flags })
    }

    /// The positional at `i`, or an error naming it.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, ArgError> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing <{name}> argument")))
    }

    /// An optional string flag.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A numeric flag with a default; errors on unparseable values.
    pub fn flag_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} {v:?} is not a valid number"))),
        }
    }

    /// Reject flags outside `allowed` (typo protection).
    pub fn check_flags(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{k} (allowed: {})",
                    allowed.iter().map(|a| format!("--{a}")).collect::<Vec<_>>().join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Args, ArgError> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_positionals_and_flags() {
        let a = parse(&["evaluate", "trace.csv", "--model", "LR", "--horizon", "6"]).expect("ok");
        assert_eq!(a.command, "evaluate");
        assert_eq!(a.positional(0, "file").expect("present"), "trace.csv");
        assert_eq!(a.flag("model"), Some("LR"));
        assert_eq!(a.flag_num("horizon", 1usize).expect("ok"), 6);
        assert_eq!(a.flag_num("history", 30usize).expect("ok"), 30);
    }

    #[test]
    fn missing_command_errors() {
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn flag_without_value_errors() {
        assert!(parse(&["x", "--oops"]).is_err());
    }

    #[test]
    fn duplicate_flag_errors() {
        assert!(parse(&["x", "--a", "1", "--a", "2"]).is_err());
    }

    #[test]
    fn bad_number_errors() {
        let a = parse(&["x", "--n", "abc"]).expect("parses");
        assert!(a.flag_num("n", 0usize).is_err());
    }

    #[test]
    fn unknown_flag_rejected() {
        let a = parse(&["x", "--bogus", "1"]).expect("parses");
        assert!(a.check_flags(&["real"]).is_err());
        assert!(a.check_flags(&["bogus"]).is_ok());
    }

    #[test]
    fn missing_positional_named_in_error() {
        let a = parse(&["x"]).expect("parses");
        let err = a.positional(0, "logfile").expect_err("missing");
        assert!(err.0.contains("logfile"));
    }
}
