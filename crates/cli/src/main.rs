//! `dbaugur` — command-line interface to the workload forecasting
//! system.
//!
//! ```text
//! dbaugur templates <log>                       list query templates by volume
//! dbaugur cluster <wide.csv> [--rho R]          DTW-cluster traces from a CSV
//! dbaugur evaluate <trace.csv> --model NAME     rolling-forecast one trace
//! dbaugur forecast <log> [--topk K]             full pipeline: log → forecasts
//! dbaugur synth <bustracker|alibaba> [--days N] emit a synthetic trace CSV
//! dbaugur checkpoint <dir> [--log FILE]         durable ingest + snapshot generation
//! dbaugur recover <dir>                         restore snapshot + replay WAL
//! dbaugur retrain <dir> --cluster N             synchronously refit one cluster
//! dbaugur lifecycle <dir> [--ticks N]           drift-triggered retrain/shadow/promote loop
//! dbaugur soak [--ticks N] [--seed S]           chaos/soak the serving governor
//! dbaugur soak --shards N [--kill-shard I]      sharded kill-matrix soak (bulkheads)
//! dbaugur soak --shards N --mem-budget BYTES    global memory-pressure drill
//! dbaugur shards <dir>                          per-shard health, lineage, bytes
//! dbaugur sim run <plan>                        deterministic full-system simulation
//! dbaugur sim shrink <plan>                     minimize a failing fault schedule
//! dbaugur sim swarm [--schedules N]             seeded compound-fault swarm
//! ```
//!
//! Logs use the `<epoch_secs>\t<sql>` format; trace CSVs use the formats
//! of `dbaugur_trace::io`.

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "usage: dbaugur <command> [args]

commands:
  templates <log>                          list query templates by volume
  cluster <wide.csv> [--rho R] [--min N]   DTW-cluster traces from a wide CSV
  evaluate <trace.csv> --model NAME        rolling forecast (LR|ARIMA|KR|MLP|LSTM|GRU|TCN|WFGAN|QB5000|DBAugur)
           [--history T] [--horizon H] [--split FRAC] [--epochs E]
  forecast <log> [--interval S] [--history T] [--horizon H] [--topk K] [--epochs E]
  synth <bustracker|alibaba|periodic|complex> [--days N] [--seed S]
  checkpoint <state-dir> [--log FILE] [--train 0|1] [pipeline flags]
             WAL-first ingest, optional (re)train, write snapshot generation
  recover <state-dir> [pipeline flags]
             restore newest good snapshot, replay WAL, report drift health
  retrain <state-dir> --cluster N [pipeline flags]
             synchronously refit one cluster's ensemble and checkpoint
  lifecycle <state-dir> [--ticks N] [--budget-ms MS] [--min-improve F]
            [--windows W] [--cooldown T] [pipeline flags]
             run the closed-loop lifecycle: reconcile promotions, retrain
             drift-flagged clusters, shadow-evaluate challengers against
             the incumbents, promote winners, checkpoint
  soak [--ticks N] [--seed S] [--base R] [--burst-every T] [--burst-mult M]
       [--forecasts F] [--budget BYTES] [--deadline MS]
             run a seeded overload scenario against the serving governor
             (admission, deadlines, shedding, eviction) in virtual time;
             exits non-zero if the soak's pass criteria fail
  soak --shards N [--kill-shard I] [--kill-kind panic|quarantine]
       [--kill-at FRAC] [--workers W] [--quota Q] [--ticks N] [--seed S]
             sharded kill-matrix soak: inject a one-shard fault and hold
             the bulkhead promises (siblings byte-identical to the
             fault-free run, bounded recovery, availability above gate);
             exits non-zero when any promise breaks
  soak --shards N --mem-budget BYTES [--templates T] [--ingest R]
       [--enospc-at t1,t2] [--eio-at t1,t2] [--spill-fault-at t1,t2]
       [--rebalance on|off] [--ticks N] [--seed S]
             global memory-pressure drill: flood past a hard global byte
             ceiling while seeded ENOSPC/EIO bursts hit the WAL, spill,
             and migration paths; exits non-zero if the ceiling is ever
             exceeded after enforcement, the intake books fail to
             reconcile, or any acknowledged observation is lost
  sim run <plan.plan> [--canary coarse-import|whole-drain]
             execute one deterministic fault schedule against the full
             sharded pipeline on a virtual timeline; every invariant is
             checked after every tick; exits non-zero on any violation
  sim replay <plan.plan> [--canary ...]
             run the plan twice and require byte-identical digests —
             the determinism contract, checked end to end
  sim shrink <plan.plan> [--out FILE] [--canary ...]
             delta-debug a failing schedule to a minimal reproducer that
             still trips the same invariant, then emit it as a `.plan`
  sim swarm [--schedules N] [--seed S] [--shrinks K]
            [--canary coarse-import|whole-drain] [--out-dir DIR]
             run a seeded swarm of generated compound-fault schedules
             (guaranteed ENOSPC-during-migration-under-pressure slots,
             replay-identity and bulkhead-isolation spot checks, MTTR
             distribution); shrinks failures and writes reproducers to
             --out-dir; exits non-zero unless the swarm is clean
  shards <state-dir> [--shards N] [pipeline flags]
             per-shard fault-domain status: snapshot lineage, resident
             bytes, WAL bytes, durability counters, derived health and
             breaker state, and any migration overrides in force

pipeline flags (must match between checkpoint and recover):
  [--interval S] [--history T] [--horizon H] [--topk K] [--epochs E]
  [--threads N]  worker threads for clustering/training (0 = all cores;
                 results are identical for any value)
  [--shards N]   shard fault domains for durable state (deployment
                 choice, never part of the snapshot fingerprint)
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        eprint!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "templates" => commands::templates(&args),
        "cluster" => commands::cluster(&args),
        "evaluate" => commands::evaluate(&args),
        "forecast" => commands::forecast(&args),
        "synth" => commands::synth(&args),
        "checkpoint" => commands::checkpoint(&args),
        "recover" => commands::recover(&args),
        "retrain" => commands::retrain(&args),
        "lifecycle" => commands::lifecycle(&args),
        "shards" => commands::shards(&args),
        "soak" => commands::soak(&args),
        "sim" => commands::sim(&args),
        other => Err(format!("unknown command {other:?}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
