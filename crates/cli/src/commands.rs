//! The CLI subcommand implementations.

use crate::args::Args;
use dbaugur::{DbAugur, DbAugurConfig, DurableDbAugur};
use dbaugur_cluster::{select_top_k, Descender, DescenderParams};
use dbaugur_dtw::DtwDistance;
use dbaugur_models::eval::rolling_forecast;
use dbaugur_models::{
    Arima, Forecaster, GruForecaster, KernelRegression, LinearRegression, LstmForecaster,
    MlpForecaster, Qb5000, TcnForecaster, TimeSensitiveEnsemble, Wfgan,
};
use dbaugur_exec::Deadline;
use dbaugur_lifecycle::{LifecycleConfig, LifecycleManager};
use dbaugur_serve::{run_soak, SoakConfig};
use dbaugur_shard::{
    run_pressure_soak, run_shard_soak, BreakerState, KillKind, PressureSoakConfig,
    RebalanceConfig, ShardSoakConfig, ShardState, ShardedDurable,
};
use dbaugur_sim::CanaryBug;
use dbaugur_sqlproc::TemplateRegistry;
use dbaugur_trace::{io as trace_io, synth, TraceKind, WindowSpec};
use std::error::Error;
use std::fs;
use std::path::Path;

type CmdResult = Result<(), Box<dyn Error>>;

/// Build the pipeline configuration from the shared flags. `checkpoint`
/// and `recover` must construct identical configurations or the
/// snapshot fingerprint check will (rightly) refuse to load.
fn pipeline_cfg(args: &Args) -> Result<DbAugurConfig, Box<dyn Error>> {
    let mut cfg = DbAugurConfig {
        interval_secs: args.flag_num("interval", 600)?,
        history: args.flag_num("history", 30)?,
        horizon: args.flag_num("horizon", 1)?,
        top_k: args.flag_num("topk", 5)?,
        epochs: args.flag_num("epochs", 10)?,
        // 0 = all cores; results are identical for any worker count,
        // so --threads never perturbs the snapshot fingerprint.
        threads: args.flag_num("threads", 0)?,
        // Shard fault domains. Like --threads, excluded from the
        // snapshot fingerprint: each shard directory carries its own
        // lineage, and the count is a deployment choice, not a
        // statement about the data.
        shards: args.flag_num("shards", 1)?,
        ..DbAugurConfig::default()
    };
    cfg.clustering.min_size = 1;
    Ok(cfg)
}

/// Print one per-cluster health line (training status + drift verdict).
fn print_health(sys: &DbAugur) {
    for h in sys.drift_report() {
        let ratio = match h.error_ratio {
            Some(r) => format!("{r:.2}"),
            None => "n/a".to_string(),
        };
        println!(
            "cluster {} ({}): {} | drift {} | error ratio {ratio}{}",
            h.cluster_id,
            h.representative,
            h.status,
            h.drift,
            if h.retrain_recommended { " | RETRAIN RECOMMENDED" } else { "" }
        );
    }
}

/// `templates <log>` — parse a query log and list templates by volume.
pub fn templates(args: &Args) -> CmdResult {
    args.check_flags(&["top"])?;
    let path = args.positional(0, "log")?;
    let text = fs::read_to_string(path)?;
    let mut reg = TemplateRegistry::new();
    let mut records = 0usize;
    for line in text.lines() {
        if let Some(rec) = dbaugur_sqlproc::parse_log_line(line) {
            reg.observe(&rec.sql, rec.ts_secs);
            records += 1;
        }
    }
    let top: usize = args.flag_num("top", 20)?;
    println!("{records} records → {} templates", reg.num_templates());
    println!("{:>10}  template", "count");
    for (id, count) in reg.by_volume_desc().into_iter().take(top) {
        println!("{count:>10}  {}", reg.template(id));
    }
    Ok(())
}

/// `cluster <wide.csv>` — DTW-cluster equal-length traces.
pub fn cluster(args: &Args) -> CmdResult {
    args.check_flags(&["rho", "min", "window", "interval", "threads"])?;
    let path = args.positional(0, "wide.csv")?;
    let text = fs::read_to_string(path)?;
    let interval: u64 = args.flag_num("interval", 600)?;
    let traces = trace_io::parse_wide(&text, TraceKind::Query, interval)?;
    let params = DescenderParams {
        rho: args.flag_num("rho", 3.0)?,
        min_size: args.flag_num("min", 2)?,
        normalize: true,
    };
    let window: usize = args.flag_num("window", 14)?;
    let threads: usize = args.flag_num("threads", 0)?;
    let mut descender = Descender::new(params, DtwDistance::new(window));
    if threads != 0 {
        descender = descender
            .with_executor(std::sync::Arc::new(dbaugur::exec::Executor::new(threads)));
    }
    let clustering = descender.cluster(&traces);
    println!(
        "{} traces → {} clusters, {} outliers",
        traces.len(),
        clustering.num_clusters,
        clustering.outliers().len()
    );
    for summary in select_top_k(&traces, &clustering, usize::MAX) {
        let names: Vec<&str> =
            summary.members.iter().map(|&m| traces[m].name.as_str()).collect();
        println!(
            "cluster {} (volume {:.0}): {}",
            summary.cluster_id,
            summary.volume,
            names.join(", ")
        );
    }
    for o in clustering.outliers() {
        println!("outlier: {}", traces[o].name);
    }
    Ok(())
}

/// Build a named model with a CLI-chosen epoch budget.
fn make_model(name: &str, epochs: usize) -> Result<Box<dyn Forecaster>, Box<dyn Error>> {
    Ok(match name {
        "LR" => Box::new(LinearRegression::default()),
        "ARIMA" => Box::new(Arima::paper_default()),
        "KR" => Box::new(KernelRegression::default()),
        "MLP" => Box::new(MlpForecaster::new(0).with_epochs(epochs)),
        "LSTM" => Box::new(LstmForecaster::new(0).with_epochs(epochs)),
        "GRU" => Box::new(GruForecaster::new(0).with_epochs(epochs)),
        "TCN" => Box::new(TcnForecaster::new(0).with_epochs(epochs)),
        "WFGAN" => Box::new(Wfgan::new(0).with_epochs(epochs)),
        "QB5000" => Box::new(Qb5000::new(0)),
        "DBAugur" => Box::new(TimeSensitiveEnsemble::dbaugur(0)),
        other => return Err(format!("unknown model {other:?}").into()),
    })
}

/// `evaluate <trace.csv> --model NAME` — rolling forecast over the tail.
pub fn evaluate(args: &Args) -> CmdResult {
    args.check_flags(&["model", "history", "horizon", "split", "epochs", "interval"])?;
    let path = args.positional(0, "trace.csv")?;
    let text = fs::read_to_string(path)?;
    let interval: u64 = args.flag_num("interval", 600)?;
    let trace = trace_io::parse_single(&text, path, TraceKind::Query, interval)?;
    let history: usize = args.flag_num("history", 30)?;
    let horizon: usize = args.flag_num("horizon", 1)?;
    let split_frac: f64 = args.flag_num("split", 0.7)?;
    let epochs: usize = args.flag_num("epochs", 20)?;
    let model_name = args.flag("model").ok_or("--model is required")?;
    let mut model = make_model(model_name, epochs)?;
    let split = (trace.len() as f64 * split_frac) as usize;
    let spec = WindowSpec::new(history, horizon);
    let rep = rolling_forecast(model.as_mut(), trace.values(), split, spec)
        .ok_or("trace too short for this history/horizon")?;
    println!(
        "{model_name} on {path}: {} test points, MSE {:.6}, MAE {:.6}",
        rep.targets.len(),
        rep.mse,
        rep.mae
    );
    Ok(())
}

/// `forecast <log>` — full pipeline from a query log.
pub fn forecast(args: &Args) -> CmdResult {
    args.check_flags(&["interval", "history", "horizon", "topk", "epochs", "threads", "shards"])?;
    let path = args.positional(0, "log")?;
    let text = fs::read_to_string(path)?;
    let cfg = pipeline_cfg(args)?;
    let mut system = DbAugur::new(cfg);
    let ingest = system.ingest_log_report(&text);
    let n = ingest.ingested;
    if n == 0 {
        return Err("no parseable records in the log".into());
    }
    if ingest.skipped > 0 {
        println!("warning: {} damaged log lines skipped", ingest.skipped);
    }
    // Train over the observed time span.
    let (start, end) = {
        let mut min = u64::MAX;
        let mut max = 0u64;
        for line in text.lines() {
            if let Some(rec) = dbaugur_sqlproc::parse_log_line(line) {
                min = min.min(rec.ts_secs);
                max = max.max(rec.ts_secs);
            }
        }
        (min, max + 1)
    };
    println!("{n} records, {} templates, span {}s", system.num_templates(), end - start);
    let report = system.train(start, end)?;
    if !report.is_fully_healthy() {
        println!(
            "training: {} healthy / {} degraded / {} failed clusters, {} samples repaired, {} short traces dropped",
            report.healthy_count(),
            report.degraded_count(),
            report.failed_count(),
            report.repaired_samples,
            report.dropped_traces
        );
        for c in report.clusters.iter().filter(|c| c.detail.is_some()) {
            println!(
                "  cluster {} ({}): {} — {}",
                c.cluster_id,
                c.representative,
                c.status,
                c.detail.as_deref().unwrap_or("")
            );
        }
    }
    for (i, cluster) in system.clusters().iter().enumerate() {
        let f = system.forecast_cluster(i).expect("trained cluster");
        println!(
            "cluster {i} [{} | drift {}]: {} traces, volume {:.0}, next-interval forecast {:.2}",
            cluster.status(),
            cluster.drift_state(),
            cluster.summary.members.len(),
            cluster.summary.volume,
            f
        );
    }
    Ok(())
}

/// `checkpoint <state-dir>` — open (or create) a durable state
/// directory, optionally ingest a log through the write-ahead log,
/// optionally (re)train, and fold everything into a new snapshot
/// generation.
pub fn checkpoint(args: &Args) -> CmdResult {
    args.check_flags(&["log", "train", "interval", "history", "horizon", "topk", "epochs", "threads", "shards"])?;
    let dir = args.positional(0, "state-dir")?;
    let cfg = pipeline_cfg(args)?;
    let (mut durable, report) = DurableDbAugur::open(Path::new(dir), cfg)?;
    if let Some(gen) = report.generation {
        println!("opened generation {gen}, {} wal entries replayed", report.wal_applied);
    }
    let mut span: Option<(u64, u64)> = None;
    if let Some(log_path) = args.flag("log") {
        let text = fs::read_to_string(log_path)?;
        let ingest = durable.ingest_log_text(&text)?;
        println!("{} records ingested durably, {} damaged lines skipped", ingest.ingested, ingest.skipped);
        if let Some(off) = ingest.first_skipped_offset {
            println!("warning: first damaged line at byte offset {off} of {log_path}");
        }
        let mut min = u64::MAX;
        let mut max = 0u64;
        for line in text.lines() {
            if let Some(rec) = dbaugur_sqlproc::parse_log_line(line) {
                min = min.min(rec.ts_secs);
                max = max.max(rec.ts_secs);
            }
        }
        if min <= max {
            span = Some((min, max + 1));
        }
    }
    let train: usize = args.flag_num("train", 1)?;
    if train != 0 {
        if let Some((start, end)) = span {
            let report = durable.system_mut().train(start, end)?;
            println!(
                "trained: {} healthy / {} degraded / {} failed clusters",
                report.healthy_count(),
                report.degraded_count(),
                report.failed_count()
            );
        }
    }
    let gen = durable.checkpoint()?;
    println!(
        "checkpoint generation {gen} written, wal truncated ({} templates, {} clusters)",
        durable.system().num_templates(),
        durable.system().clusters().len()
    );
    print_health(durable.system());
    Ok(())
}

/// `recover <state-dir>` — restore the newest good snapshot, replay the
/// write-ahead log, and report the health of what came back.
pub fn recover(args: &Args) -> CmdResult {
    args.check_flags(&["interval", "history", "horizon", "topk", "epochs", "threads", "shards"])?;
    let dir = args.positional(0, "state-dir")?;
    let cfg = pipeline_cfg(args)?;
    let (sys, report) = DbAugur::recover(Path::new(dir), cfg)?;
    match report.generation {
        Some(gen) => println!("restored generation {gen}"),
        None => println!("no usable snapshot, started empty"),
    }
    if report.corrupted_generations > 0 {
        println!("warning: {} corrupted generations skipped", report.corrupted_generations);
    }
    println!(
        "wal: {} entries replayed, {} already in snapshot{}",
        report.wal_applied,
        report.wal_skipped,
        if report.wal_torn { ", torn tail discarded" } else { "" }
    );
    println!(
        "state: {} templates, {} resource traces, {} trained clusters",
        sys.num_templates(),
        sys.resources().len(),
        sys.clusters().len()
    );
    print_health(&sys);
    Ok(())
}

/// `retrain <state-dir> --cluster N` — synchronously refit one
/// cluster's ensemble on its representative plus buffered recent
/// observations, fold the result into a new snapshot generation, and
/// report drift health. The manual escape hatch when an operator wants
/// a retrain *now* rather than waiting for the lifecycle loop.
pub fn retrain(args: &Args) -> CmdResult {
    args.check_flags(&["cluster", "interval", "history", "horizon", "topk", "epochs", "threads", "shards"])?;
    let dir = args.positional(0, "state-dir")?;
    let cfg = pipeline_cfg(args)?;
    let (mut durable, report) = DurableDbAugur::open(Path::new(dir), cfg)?;
    match report.generation {
        Some(gen) => println!("opened generation {gen}, {} wal entries replayed", report.wal_applied),
        None => return Err("no trained state in this directory (run checkpoint first)".into()),
    }
    let i: usize = args
        .flag("cluster")
        .ok_or("--cluster is required")?
        .parse()
        .map_err(|_| "--cluster must be a cluster index")?;
    let rep = durable
        .system_mut()
        .retrain_cluster(i)
        .map_err(|e| format!("retrain of cluster {i} failed: {e}"))?;
    println!(
        "cluster {i} ({}) retrained: {}{}",
        rep.representative,
        rep.status,
        rep.detail.as_deref().map(|d| format!(" — {d}")).unwrap_or_default()
    );
    let gen = durable.checkpoint()?;
    println!("checkpoint generation {gen} written");
    print_health(durable.system());
    Ok(())
}

/// `lifecycle <state-dir>` — run the closed-loop model lifecycle over
/// recovered state: reconcile any promotions newer than the snapshot,
/// then scan for drift, train challengers, shadow-evaluate them
/// against the incumbents, and promote the winners. Finishes with a
/// checkpoint so the registry and snapshot agree on disk.
pub fn lifecycle(args: &Args) -> CmdResult {
    args.check_flags(&[
        "ticks", "budget-ms", "min-improve", "windows", "cooldown", "interval", "history",
        "horizon", "topk", "epochs", "threads", "shards",
    ])?;
    let dir = args.positional(0, "state-dir")?;
    let cfg = pipeline_cfg(args)?;
    let (mut durable, report) = DurableDbAugur::open(Path::new(dir), cfg)?;
    match report.generation {
        Some(gen) => println!("opened generation {gen}, {} wal entries replayed", report.wal_applied),
        None => return Err("no trained state in this directory (run checkpoint first)".into()),
    }

    let defaults = LifecycleConfig::default();
    let lc_cfg = LifecycleConfig {
        min_improvement: args.flag_num("min-improve", defaults.min_improvement)?,
        min_eval_windows: args.flag_num("windows", defaults.min_eval_windows)?,
        cooldown_ticks: args.flag_num("cooldown", defaults.cooldown_ticks)?,
        ..defaults
    };
    lc_cfg.validate()?;
    let mut mgr = LifecycleManager::open(lc_cfg, Path::new(dir));
    if mgr.registry_corrupt() {
        println!("warning: lifecycle registry was corrupt; starting a fresh one (champions keep serving)");
    }
    let applied = mgr.reconcile(durable.system_mut());
    if applied > 0 {
        println!("reconciled {applied} promotion(s) newer than the recovered snapshot");
    }

    let ticks: u64 = args.flag_num("ticks", 4)?;
    let budget_ms: u64 = args.flag_num("budget-ms", 0)?;
    for _ in 0..ticks {
        let deadline =
            if budget_ms == 0 { Deadline::none() } else { Deadline::in_millis(budget_ms) };
        let rep = mgr.tick(durable.system_mut(), &deadline);
        println!(
            "tick {}: {} scanned, {} flagged ({} cooling, {} deferred), {} retrained → {} promoted, {} rejected, {} expired, {} failed",
            rep.tick,
            rep.scanned,
            rep.flagged,
            rep.cooling,
            rep.deferred,
            rep.attempted,
            rep.promoted.len(),
            rep.rejected.len(),
            rep.expired,
            rep.failed
        );
    }

    for ev in mgr.events() {
        println!(
            "event: tick {} cluster {} {} (champion sMAPE {:.2}, challenger {:.2}) → generation {}",
            ev.tick, ev.cluster, ev.kind, ev.champion_smape, ev.challenger_smape, ev.generation
        );
    }
    for c in mgr.report(durable.system()) {
        println!(
            "cluster {} ({}): drift {} | generation {} | {} archived | cooldown {}{}",
            c.cluster,
            c.representative,
            c.drift,
            c.generation,
            c.archived,
            c.cooldown_remaining,
            if c.retrain_recommended { " | RETRAIN RECOMMENDED" } else { "" }
        );
    }
    let s = mgr.stats();
    println!(
        "lifecycle: {} promotions, {} rejections, {} rollbacks, {} expired, {} failed",
        s.promotions, s.rejections, s.rollbacks, s.expired, s.failed
    );
    let gen = durable.checkpoint()?;
    println!("checkpoint generation {gen} written");
    Ok(())
}

/// `soak` — run a seeded overload scenario against the serving
/// governor in virtual time and report how it held up. Exits non-zero
/// when the pass criteria (books reconcile, memory bounded, recovery
/// after the burst) do not hold, so it can gate CI.
pub fn soak(args: &Args) -> CmdResult {
    args.check_flags(&[
        "seed", "ticks", "base", "burst-every", "burst-mult", "forecasts", "budget", "deadline",
        "shards", "kill-shard", "kill-at", "kill-kind", "workers", "quota", "mem-budget",
        "templates", "ingest", "enospc-at", "eio-at", "spill-fault-at", "rebalance",
    ])?;
    // `--shards N` (N > 0) switches to the sharded kill-matrix soak:
    // bulkhead isolation under an injected one-shard fault. Adding
    // `--mem-budget BYTES` switches again, to the global
    // memory-pressure drill: budget arbiter + degradation ladder +
    // storage-fault injection.
    let shards: usize = args.flag_num("shards", 0)?;
    if shards > 0 {
        if args.flag("mem-budget").is_some() {
            return pressure_soak(args, shards);
        }
        return shard_soak(args, shards);
    }
    let mut cfg = SoakConfig {
        seed: args.flag_num("seed", SoakConfig::default().seed)?,
        ticks: args.flag_num("ticks", 400)?,
        base_ingest_per_tick: args.flag_num("base", 20)?,
        burst_every: args.flag_num("burst-every", 40)?,
        burst_mult: args.flag_num("burst-mult", 10)?,
        forecasts_per_tick: args.flag_num("forecasts", 4)?,
        ..SoakConfig::default()
    };
    cfg.serve.memory_budget_bytes =
        args.flag_num("budget", cfg.serve.memory_budget_bytes)?;
    cfg.serve.forecast_deadline_ms =
        args.flag_num("deadline", cfg.serve.forecast_deadline_ms)?;

    let rep = run_soak(&cfg);
    let s = &rep.stats;
    println!(
        "soak: seed {:#x}, {} ticks ({} virtual ms), burst x{} every {} ticks",
        cfg.seed, cfg.ticks, rep.virtual_ms, cfg.burst_mult, cfg.burst_every
    );
    println!(
        "forecasts: {} offered / {} admitted / {} shed (queue {} + rate {}), {} fresh + {} degraded",
        s.offered_forecasts,
        s.admitted_forecasts,
        s.shed_forecast_queue_full + s.shed_forecast_rate_limited,
        s.shed_forecast_queue_full,
        s.shed_forecast_rate_limited,
        s.completed_fresh,
        s.completed_degraded
    );
    println!(
        "ingest:    {} offered / {} admitted / {} shed (queue {} + rate {}), {} applied",
        s.offered_ingest,
        s.admitted_ingest,
        s.shed_ingest_queue_full + s.shed_ingest_rate_limited,
        s.shed_ingest_queue_full,
        s.shed_ingest_rate_limited,
        s.ingested
    );
    println!(
        "latency:   forecast p50 {:.1} ms, p99 {:.1} ms (deadline {} ms)",
        rep.latency_p50_ms, rep.latency_p99_ms, cfg.serve.forecast_deadline_ms
    );
    println!(
        "memory:    high water {} bytes vs budget {} ({} eviction passes, {} bytes freed)",
        rep.memory_high_water, cfg.serve.memory_budget_bytes, s.eviction_passes, s.eviction_bytes
    );
    println!(
        "health:    {} healthy / {} shedding / {} saturated ticks; tail: {} fresh, {} degraded, {} shed",
        rep.health_ticks.0,
        rep.health_ticks.1,
        rep.health_ticks.2,
        rep.tail_fresh,
        rep.tail_degraded,
        rep.tail_shed
    );
    if rep.passed(&cfg) {
        println!("soak: PASS (books reconcile, memory bounded, recovered after burst)");
        Ok(())
    } else {
        Err(format!(
            "soak: FAIL (reconciled={}, memory_bounded={}, recovered={})",
            rep.reconciled,
            rep.memory_high_water_within(&cfg),
            rep.recovered()
        )
        .into())
    }
}

/// The sharded arm of `soak`: run the seeded workload once fault-free
/// and once with the requested fault, then hold the bulkhead promises —
/// books reconcile, surviving shards serve byte-identical answers,
/// the victim recovers within a bounded number of ticks, and
/// availability through the outage stays above the gate.
fn shard_soak(args: &Args, shards: usize) -> CmdResult {
    let kill_shard = match args.flag("kill-shard") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("--kill-shard {v:?} is not a valid shard index"))?,
        ),
        None => None,
    };
    if let Some(k) = kill_shard {
        if k >= shards {
            return Err(format!("--kill-shard {k} out of range for {shards} shards").into());
        }
    }
    let kill_kind = match args.flag("kill-kind").unwrap_or("quarantine") {
        "panic" => KillKind::PanicMidTick,
        "quarantine" => KillKind::ForceQuarantine,
        other => return Err(format!("--kill-kind {other:?} (panic|quarantine)").into()),
    };
    let cfg = ShardSoakConfig {
        shards,
        seed: args.flag_num("seed", ShardSoakConfig::default().seed)?,
        ticks: args.flag_num("ticks", 60)?,
        workers: args.flag_num("workers", 1)?,
        tenant_quota_per_tick: args.flag_num("quota", 0)?,
        kill_at_frac: args.flag_num("kill-at", 0.25)?,
        kill_shard,
        kill_kind,
        ..ShardSoakConfig::default()
    };
    println!(
        "shard soak: seed {:#x}, {} shards, {} ticks, {} workers{}",
        cfg.seed,
        cfg.shards,
        cfg.ticks,
        cfg.workers,
        match kill_shard {
            Some(k) => format!(", killing shard {k} ({kill_kind:?}) at {:.0}% ", cfg.kill_at_frac * 100.0),
            None => ", fault-free".into(),
        }
    );
    let report = run_shard_soak(&cfg);
    for i in 0..cfg.shards {
        let s = &report.per_shard_stats[i];
        println!(
            "shard {i}: state {} | digest {:016x} | forecasts {}/{} | ingest {}/{} | {} fresh + {} degraded",
            report.final_states[i],
            report.per_shard_digests[i],
            s.admitted_forecasts,
            s.offered_forecasts,
            s.admitted_ingest,
            s.offered_ingest,
            s.completed_fresh,
            s.completed_degraded
        );
    }
    let sup = &report.supervisor;
    println!(
        "supervisor: {} floors answered, {} panics caught, {} in-flight lost, shed {} (quota) + {} (unavailable)",
        sup.failover_floors, sup.panics_caught, sup.lost_in_flight,
        sup.shed_tenant_quota, sup.shed_shard_unavailable
    );

    let mut failures: Vec<String> = Vec::new();
    if !report.reconciled {
        failures.push("books do not reconcile".into());
    }
    if let Some(victim) = kill_shard {
        // The bulkhead promise is relative to the same run without the
        // fault: siblings must not even notice.
        let clean = run_shard_soak(&ShardSoakConfig { kill_shard: None, ..cfg.clone() });
        let divergent: Vec<usize> = (0..cfg.shards)
            .filter(|&i| i != victim && clean.per_shard_digests[i] != report.per_shard_digests[i])
            .collect();
        if !divergent.is_empty() {
            failures.push(format!("sibling shards {divergent:?} diverged from the fault-free run"));
        }
        match report.recovery_ticks {
            Some(t) if t <= 8 => println!(
                "recovery:   shard {victim} hurt at tick {:?}, healthy again after {t} ticks",
                report.kill_tick
            ),
            Some(t) => failures.push(format!("recovery took {t} ticks (budget 8)")),
            None => failures.push("victim never recovered in-run".into()),
        }
        match report.outage {
            Some(o) => {
                println!(
                    "outage:     ticks {}..{}: {}/{} answered (availability {:.3}, shed rate {:.3})",
                    o.from_tick,
                    o.to_tick,
                    o.answered,
                    o.offered,
                    o.availability(),
                    o.shed_rate()
                );
                if o.availability() < 0.5 {
                    failures.push(format!("availability {:.3} below 0.5 gate", o.availability()));
                }
            }
            None => failures.push("no outage window observed".into()),
        }
    }
    if failures.is_empty() {
        println!("shard soak: PASS (isolation, bounded recovery, availability)");
        Ok(())
    } else {
        Err(format!("shard soak: FAIL ({})", failures.join("; ")).into())
    }
}

/// The memory-pressure arm of `soak` (`--shards N --mem-budget BYTES`):
/// flood a sharded store past a hard global byte ceiling while seeded
/// ENOSPC/EIO bursts hit the WAL, the spill path, and in-flight
/// migrations, then hold the defense promises — the ceiling is never
/// exceeded after enforcement, intake books reconcile per shard and
/// globally, and no acknowledged observation is lost.
///
/// Drill flags: `--enospc-at t1,t2` / `--eio-at ...` arm front-door
/// bursts at those ticks, `--spill-fault-at ...` arms ENOSPC between
/// intake and the eviction/spill pass (full-disk drill), and
/// `--rebalance off` disables the heat-driven auto-rebalance.
fn pressure_soak(args: &Args, shards: usize) -> CmdResult {
    let ticks_at = |flag: &str| -> Result<Vec<u64>, String> {
        match args.flag(flag) {
            None => Ok(Vec::new()),
            Some(v) => v
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| s.parse::<u64>().map_err(|_| format!("--{flag} {v:?}: bad tick {s:?}")))
                .collect(),
        }
    };
    let rebalance = match args.flag("rebalance").unwrap_or("on") {
        "on" => Some(RebalanceConfig::default()),
        "off" => None,
        other => return Err(format!("--rebalance {other:?} (on|off)").into()),
    };
    let defaults = PressureSoakConfig::default();
    let cfg = PressureSoakConfig {
        shards,
        seed: args.flag_num("seed", defaults.seed)?,
        ticks: args.flag_num("ticks", 40)?,
        templates: args.flag_num("templates", 20_000)?,
        ingest_per_tick: args.flag_num("ingest", 10_000)?,
        global_budget_bytes: args.flag_num("mem-budget", defaults.global_budget_bytes)?,
        min_grant_bytes: (args.flag_num::<usize>("mem-budget", defaults.global_budget_bytes)?
            / (4 * shards))
            .max(1),
        rebalance,
        enospc_ticks: ticks_at("enospc-at")?,
        eio_ticks: ticks_at("eio-at")?,
        spill_fault_ticks: ticks_at("spill-fault-at")?,
        ..defaults
    };
    cfg.validate().map_err(|e| format!("pressure soak config: {e}"))?;
    println!(
        "pressure soak: seed {:#x}, {} shards, {} ticks, {} templates, budget {} bytes",
        cfg.seed, cfg.shards, cfg.ticks, cfg.templates, cfg.global_budget_bytes
    );
    let r = run_pressure_soak(&cfg);
    println!(
        "intake:    {} offered / {} acked, shed {} (pressure) + {} (breaker) + {} (io)",
        r.offered, r.acked, r.shed_pressure, r.shed_breaker, r.shed_io
    );
    println!(
        "ceiling:   peak {} vs budget {} ({} breaches), {} regrants reclaimed {} bytes",
        r.resident_peak,
        cfg.global_budget_bytes,
        r.ceiling_breaches,
        r.arbiter.regrants,
        r.arbiter.reclaimed_bytes
    );
    println!(
        "ladder:    {} obs spilled to {} files ({} writes bounced, {} pending at end), {} sheds engaged, {} quarantines",
        r.spilled_observations,
        r.spill_files,
        r.spill_write_failures,
        r.pending_spills_final,
        r.arbiter.pressure_sheds_engaged,
        r.quarantines
    );
    println!(
        "faults:    {} injected ({} ENOSPC + {} EIO)",
        r.faults_injected, r.enospc_injected, r.eio_injected
    );
    println!(
        "rebalance: {} migrations moved {} obs ({} failed mid-flight and resumed, {} refused), heat max/mean tail {:.3}",
        r.migrations_completed,
        r.migration_observations,
        r.migrations_failed,
        r.migrations_refused,
        r.heat_ratio_tail
    );
    println!(
        "loss:      {} acked = {} resident + {} spilled + {} dropped-by-cap ({} lost)",
        r.acked,
        r.resident_observations,
        r.spilled_observations,
        r.dropped_by_cap,
        r.lost_observations
    );
    let mut failures: Vec<String> = Vec::new();
    if r.ceiling_breaches > 0 {
        failures.push(format!("{} post-enforcement ceiling breaches", r.ceiling_breaches));
    }
    if !r.books_ok {
        failures.push("intake books do not reconcile".into());
    }
    if r.lost_observations > 0 {
        failures.push(format!("{} acked observations lost", r.lost_observations));
    }
    if r.pending_spills_final > 0 {
        failures.push(format!("{} spill blobs still pending at settle", r.pending_spills_final));
    }
    if failures.is_empty() {
        println!("pressure soak: PASS (ceiling held, books reconcile, nothing acked was lost)");
        Ok(())
    } else {
        Err(format!("pressure soak: FAIL ({})", failures.join("; ")).into())
    }
}

/// `shards <state-dir>` — per-shard fault-domain status: snapshot
/// lineage, resident footprint, WAL size, durability counters, and the
/// health/breaker state the supervisor would derive from the recovery
/// evidence. Shard count comes from `--shards`, or is inferred from the
/// `shard-*` directories already on disk.
pub fn shards(args: &Args) -> CmdResult {
    args.check_flags(&["interval", "history", "horizon", "topk", "epochs", "threads", "shards"])?;
    let dir = args.positional(0, "state-dir")?;
    let mut cfg = pipeline_cfg(args)?;
    if args.flag("shards").is_none() {
        let found = count_shard_dirs(Path::new(dir));
        if found > 0 {
            cfg.shards = found;
        }
    }
    let sys = ShardedDurable::open(Path::new(dir), cfg)?;
    println!("{} shards under {dir}", sys.num_shards());
    for i in 0..sys.num_shards() {
        let report = &sys.recovery_reports()[i];
        let d = sys.durability(i);
        // Offline view: quarantine is a run-time serving decision, so
        // the strongest statement recovery evidence supports is
        // healthy-or-degraded with the breaker closed.
        let (health, breaker) = if report.wal_torn || report.corrupted_generations > 0 {
            (ShardState::Degraded, BreakerState::Closed)
        } else {
            (ShardState::Healthy, BreakerState::Closed)
        };
        let registry = sys.shard(i).system().registry();
        println!(
            "shard {i}: {health} (breaker {breaker}) | gen {} | {} templates, {} bytes resident | WAL {} bytes",
            report.generation.map_or("none".to_string(), |g| g.to_string()),
            registry.num_templates(),
            registry.approx_bytes(),
            sys.shard(i).wal_len_bytes()?
        );
        println!(
            "         recovery: {} applied + {} skipped{}{}",
            report.wal_applied,
            report.wal_skipped,
            if report.wal_torn {
                ", torn tail salvaged".to_string()
            } else {
                String::new()
            },
            if report.corrupted_generations > 0 {
                format!(", {} corrupt generation(s) skipped", report.corrupted_generations)
            } else {
                String::new()
            },
        );
        println!(
            "         io: retries {} ok / {} exhausted | snapshot fallbacks {} | torn-tail salvages {}",
            d.io_retries, d.retry_exhausted, d.snapshot_fallbacks, d.wal_torn_salvages
        );
        if d.wal_group_flushes_coalesced + d.wal_group_flushes_forced > 0 {
            let flushes = d.wal_group_flushes_coalesced + d.wal_group_flushes_forced;
            let hist: Vec<String> = ["1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"]
                .iter()
                .zip(d.wal_group_batch_hist.iter())
                .filter(|(_, &n)| n > 0)
                .map(|(label, n)| format!("{label}:{n}"))
                .collect();
            println!(
                "         group commit: {} records / {} fsyncs ({} coalesced, {} forced) | batch sizes {}",
                d.wal_group_records,
                flushes,
                d.wal_group_flushes_coalesced,
                d.wal_group_flushes_forced,
                hist.join(" ")
            );
        }
    }
    if sys.overrides().is_empty() {
        println!("routing: all templates on their hash-home shards");
    } else {
        println!("routing: {} migration override(s) in force", sys.overrides().len());
        let mut moved: Vec<(&String, &usize)> = sys.overrides().iter().collect();
        moved.sort();
        for (template, shard) in moved {
            println!("  {template:?} -> shard {shard}");
        }
    }
    Ok(())
}

/// Count consecutive `shard-<i>` directories under `root` (the layout
/// [`ShardedDurable`] writes), so `shards` can be invoked without
/// repeating `--shards` on every call.
fn count_shard_dirs(root: &Path) -> usize {
    let mut n = 0;
    while root.join(format!("shard-{n}")).is_dir() {
        n += 1;
    }
    n
}

/// `synth <kind>` — print a synthetic trace as single-metric CSV.
pub fn synth(args: &Args) -> CmdResult {
    args.check_flags(&["days", "seed", "out"])?;
    let kind = args.positional(0, "kind")?;
    let days: usize = args.flag_num("days", 7)?;
    let seed: u64 = args.flag_num("seed", 42)?;
    let trace = match kind {
        "bustracker" => synth::bustracker(seed, days),
        "alibaba" => synth::alibaba_disk(seed, days),
        "periodic" => synth::periodic_workload(seed, days, 300.0, 200.0),
        "complex" => synth::complex_workload(seed, days, 300.0),
        other => return Err(format!("unknown synthetic kind {other:?}").into()),
    };
    let csv = trace_io::format_single(&trace);
    match args.flag("out") {
        Some(path) => {
            fs::write(path, csv)?;
            println!("wrote {} samples to {path}", trace.len());
        }
        None => print!("{csv}"),
    }
    Ok(())
}

/// Parse a `--canary` flag into the planted-bug selector.
fn parse_canary(args: &Args) -> Result<CanaryBug, Box<dyn Error>> {
    Ok(match args.flag("canary") {
        None | Some("none") => CanaryBug::None,
        Some("coarse-import") => CanaryBug::CoarseImportCheck,
        Some("whole-drain") => CanaryBug::WholeHistoryDrain,
        Some(other) => {
            return Err(format!(
                "unknown canary {other:?} (coarse-import, whole-drain, none)"
            )
            .into())
        }
    })
}

/// Print the headline counters of one simulation run.
fn print_sim_report(run: &dbaugur_sim::SimReport) {
    println!(
        "ticks {} | offered {} acked {} | shed pressure/breaker/io {}/{}/{}",
        run.ticks_run, run.offered, run.acked, run.shed_pressure, run.shed_breaker, run.shed_io
    );
    println!(
        "faults {} | crashes {} (retried recoveries {}) | migrations ok/failed/refused {}/{}/{}",
        run.faults_injected,
        run.crashes,
        run.recovery_retries,
        run.migrations_completed,
        run.migrations_failed,
        run.migrations_refused
    );
    println!(
        "spilled obs {} (write failures {}) | quarantines {} recoveries {} | digest {:016x}",
        run.spilled_observations, run.spill_write_failures, run.quarantines, run.recoveries,
        run.digest
    );
    for v in &run.violations {
        println!("VIOLATION {v}");
    }
}

/// `sim run|replay|shrink|swarm` — deterministic whole-system
/// simulation: execute a `.plan` fault schedule against the full
/// sharded pipeline on a virtual timeline, check invariants after
/// every tick, and shrink failures to minimal reproducers.
pub fn sim(args: &Args) -> CmdResult {
    use dbaugur_sim::{run_plan_with, run_swarm, shrink, SimOptions, SimPlan, SwarmConfig};
    let sub = args.positional(0, "run|replay|shrink|swarm")?;
    match sub {
        "run" | "replay" => {
            args.check_flags(&["canary"])?;
            let path = args.positional(1, "plan")?;
            let plan = SimPlan::parse(&fs::read_to_string(path)?)?;
            let opts = SimOptions { canary: parse_canary(args)?, stop_at_first_violation: false };
            let run = run_plan_with(&plan, &opts);
            print_sim_report(&run);
            if sub == "replay" {
                // The determinism contract, checked end to end: a second
                // execution of the same plan must land on the same digest.
                let again = run_plan_with(&plan, &opts);
                if again.digest == run.digest {
                    println!("replay digest {:016x} — byte-identical", again.digest);
                } else {
                    return Err(format!(
                        "replay diverged: {:016x} then {:016x}",
                        run.digest, again.digest
                    )
                    .into());
                }
            }
            if run.passed() {
                println!("PASS: every invariant held on every tick");
                Ok(())
            } else {
                Err(format!("{} invariant violation(s)", run.violations.len()).into())
            }
        }
        "shrink" => {
            args.check_flags(&["canary", "out"])?;
            let path = args.positional(1, "plan")?;
            let plan = SimPlan::parse(&fs::read_to_string(path)?)?;
            let opts = SimOptions { canary: parse_canary(args)?, stop_at_first_violation: true };
            match shrink(&plan, &opts) {
                None => {
                    println!("plan passes every checker — nothing to shrink");
                    Ok(())
                }
                Some(rep) => {
                    println!(
                        "shrunk {} → {} events, {} → {} ticks in {} oracle runs (trips {})",
                        rep.from_events, rep.to_events, rep.from_ticks, rep.to_ticks, rep.runs,
                        rep.check
                    );
                    let encoded = rep.plan.encode();
                    match args.flag("out") {
                        Some(out) => {
                            fs::write(out, &encoded)?;
                            println!("reproducer written to {out}");
                        }
                        None => print!("{encoded}"),
                    }
                    Ok(())
                }
            }
        }
        "swarm" => {
            args.check_flags(&["schedules", "seed", "canary", "out-dir", "shrinks"])?;
            let cfg = SwarmConfig {
                schedules: args.flag_num("schedules", 200u64)?,
                seed: args.flag_num("seed", 0xD5_5EEDu64)?,
                canary: parse_canary(args)?,
                shrink_failures: true,
                max_shrinks: args.flag_num("shrinks", 4usize)?,
            };
            let report = run_swarm(&cfg);
            println!(
                "swarm: {} schedules, {} passed, {} failed | faults {} crashes {} acked {}",
                report.schedules, report.passed, report.failed, report.faults_injected,
                report.crashes, report.acked
            );
            println!(
                "replay checks {}/{} identical | sibling checks {}/{} isolated",
                report.replay_checked - report.replay_mismatches,
                report.replay_checked,
                report.sibling_checked - report.sibling_mismatches,
                report.sibling_checked
            );
            println!(
                "mttr: {} samples ({} censored) p50 {} p99 {} max {} ticks",
                report.mttr.samples, report.mttr.censored, report.mttr.p50_ticks,
                report.mttr.p99_ticks, report.mttr.max_ticks
            );
            for f in &report.failures {
                println!("FAIL schedule {}: {} — {}", f.index, f.check, f.detail);
                if let Some(s) = &f.shrunk {
                    println!(
                        "  shrunk {} → {} events ({} oracle runs)",
                        s.from_events, s.to_events, s.runs
                    );
                    if let Some(dir) = args.flag("out-dir") {
                        fs::create_dir_all(dir)?;
                        let path = Path::new(dir).join(format!("repro-{}.plan", f.index));
                        fs::write(&path, s.plan.encode())?;
                        println!("  reproducer written to {}", path.display());
                    }
                }
            }
            if report.clean() {
                println!("PASS: swarm clean");
                Ok(())
            } else {
                Err("swarm found violations".into())
            }
        }
        other => Err(format!("unknown sim subcommand {other:?}").into()),
    }
}
