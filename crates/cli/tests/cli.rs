//! End-to-end tests of the `dbaugur` binary: real process, real files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dbaugur"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbaugur_cli_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn no_args_prints_usage() {
    let out = bin().output().expect("runs");
    assert!(out.status.success());
    assert!(stderr(&out).contains("usage: dbaugur"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = bin().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn synth_then_evaluate_roundtrip() {
    let dir = tmpdir("synth_eval");
    let csv = dir.join("bt.csv");
    let out = bin()
        .args(["synth", "bustracker", "--days", "3", "--seed", "7", "--out"])
        .arg(&csv)
        .output()
        .expect("runs");
    assert!(out.status.success(), "synth failed: {}", stderr(&out));
    assert!(stdout(&out).contains("432 samples"));

    let out = bin()
        .arg("evaluate")
        .arg(&csv)
        .args(["--model", "LR", "--horizon", "3", "--history", "12"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "evaluate failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("MSE"), "got: {text}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn evaluate_rejects_unknown_model() {
    let dir = tmpdir("bad_model");
    let csv = dir.join("t.csv");
    std::fs::write(&csv, "1\n2\n3\n4\n5\n6\n7\n8\n").expect("write");
    let out = bin()
        .arg("evaluate")
        .arg(&csv)
        .args(["--model", "GPT9000"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown model"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn templates_lists_by_volume() {
    let dir = tmpdir("templates");
    let log = dir.join("app.log");
    let mut text = String::new();
    for i in 0..5u64 {
        text.push_str(&format!("{i}\tSELECT a FROM t WHERE id = {i}\n"));
    }
    text.push_str("9\tSELECT b FROM u\n");
    text.push_str("not a record\n");
    std::fs::write(&log, text).expect("write");
    let out = bin().arg("templates").arg(&log).output().expect("runs");
    assert!(out.status.success(), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("6 records → 2 templates"), "got: {s}");
    let a_pos = s.find("SELECT a FROM t").expect("template a listed");
    let b_pos = s.find("SELECT b FROM u").expect("template b listed");
    assert!(a_pos < b_pos, "higher-volume template first");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn cluster_groups_twins_and_flags_outliers() {
    let dir = tmpdir("cluster");
    let csv = dir.join("wide.csv");
    let mut text = String::from("a,b,odd\n");
    for j in 0..48 {
        let base = (j as f64 * 0.3).sin() * 50.0 + 100.0;
        let odd = (j % 7) as f64 * 20.0;
        text.push_str(&format!("{base},{:.3},{odd}\n", base + 1.0));
    }
    std::fs::write(&csv, text).expect("write");
    let out = bin()
        .arg("cluster")
        .arg(&csv)
        .args(["--rho", "2.0", "--window", "5", "--min", "2"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("1 clusters"), "got: {s}");
    assert!(s.contains("outlier: odd"), "got: {s}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn forecast_pipeline_runs_on_small_log() {
    let dir = tmpdir("forecast");
    let log = dir.join("app.log");
    let mut text = String::new();
    for m in 0..240u64 {
        let n = 2 + (m % 8);
        for k in 0..n {
            text.push_str(&format!("{}\tSELECT x FROM t WHERE id = {k}\n", m * 60 + k));
        }
    }
    std::fs::write(&log, text).expect("write");
    let out = bin()
        .arg("forecast")
        .arg(&log)
        .args(["--interval", "600", "--history", "8", "--topk", "2", "--epochs", "1"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("next-interval forecast"), "got: {s}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn checkpoint_then_recover_roundtrip() {
    let dir = tmpdir("ckpt");
    let state = dir.join("state");
    let log = dir.join("app.log");
    let mut text = String::new();
    for m in 0..240u64 {
        let n = 2 + (m % 8);
        for k in 0..n {
            text.push_str(&format!("{}\tSELECT x FROM t WHERE id = {k}\n", m * 60 + k));
        }
    }
    text.push_str("damaged line\n");
    std::fs::write(&log, text).expect("write");

    let flags = ["--interval", "600", "--history", "8", "--topk", "2", "--epochs", "1"];
    let out = bin()
        .arg("checkpoint")
        .arg(&state)
        .arg("--log")
        .arg(&log)
        .args(flags)
        .output()
        .expect("runs");
    assert!(out.status.success(), "checkpoint failed: {}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("records ingested durably"), "got: {s}");
    assert!(s.contains("first damaged line at byte offset"), "got: {s}");
    assert!(s.contains("checkpoint generation 1 written"), "got: {s}");

    let out = bin().arg("recover").arg(&state).args(flags).output().expect("runs");
    assert!(out.status.success(), "recover failed: {}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("restored generation 1"), "got: {s}");
    assert!(s.contains("trained clusters"), "got: {s}");
    assert!(s.contains("drift"), "drift health in output: {s}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn retrain_and_lifecycle_run_on_checkpointed_state() {
    let dir = tmpdir("lifecycle");
    let state = dir.join("state");
    let log = dir.join("app.log");
    let mut text = String::new();
    for m in 0..240u64 {
        let n = 2 + (m % 8);
        for k in 0..n {
            text.push_str(&format!("{}\tSELECT x FROM t WHERE id = {k}\n", m * 60 + k));
        }
    }
    std::fs::write(&log, text).expect("write");
    let flags = ["--interval", "600", "--history", "8", "--topk", "2", "--epochs", "1"];
    let out = bin()
        .arg("checkpoint")
        .arg(&state)
        .arg("--log")
        .arg(&log)
        .args(flags)
        .output()
        .expect("runs");
    assert!(out.status.success(), "checkpoint failed: {}", stderr(&out));

    // Missing --cluster is a clean error, not a panic.
    let out = bin().arg("retrain").arg(&state).args(flags).output().expect("runs");
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--cluster is required"), "got: {}", stderr(&out));

    let out = bin()
        .arg("retrain")
        .arg(&state)
        .args(["--cluster", "0"])
        .args(flags)
        .output()
        .expect("runs");
    assert!(out.status.success(), "retrain failed: {}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("retrained"), "got: {s}");
    assert!(s.contains("checkpoint generation 2 written"), "got: {s}");

    let out = bin()
        .arg("lifecycle")
        .arg(&state)
        .args(["--ticks", "2"])
        .args(flags)
        .output()
        .expect("runs");
    assert!(out.status.success(), "lifecycle failed: {}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("tick 1:"), "got: {s}");
    assert!(s.contains("tick 2:"), "got: {s}");
    assert!(s.contains("generation"), "got: {s}");
    assert!(s.contains("checkpoint generation 3 written"), "got: {s}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn recover_refuses_mismatched_configuration() {
    let dir = tmpdir("ckpt_mismatch");
    let state = dir.join("state");
    let log = dir.join("app.log");
    let mut text = String::new();
    for m in 0..120u64 {
        text.push_str(&format!("{}\tSELECT y FROM t\n", m * 60));
    }
    std::fs::write(&log, text).expect("write");
    let out = bin()
        .arg("checkpoint")
        .arg(&state)
        .arg("--log")
        .arg(&log)
        .args(["--interval", "600", "--history", "8", "--topk", "2", "--epochs", "1"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "checkpoint failed: {}", stderr(&out));

    // Same directory, different window shape: the fingerprint gate must
    // refuse rather than import weights into mis-shaped networks.
    let out = bin()
        .arg("recover")
        .arg(&state)
        .args(["--interval", "600", "--history", "12", "--topk", "2"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(stderr(&out).contains("fingerprint"), "got: {}", stderr(&out));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn recover_on_empty_directory_starts_empty() {
    let dir = tmpdir("ckpt_empty");
    let out = bin().arg("recover").arg(dir.join("state")).output().expect("runs");
    assert!(out.status.success(), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("no usable snapshot"), "got: {s}");
    assert!(s.contains("0 templates"), "got: {s}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn soak_reports_and_passes_under_default_flood() {
    let out = bin().args(["soak", "--ticks", "200"]).output().expect("runs");
    assert!(out.status.success(), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("soak: PASS"), "got: {s}");
    assert!(s.contains("offered"), "got: {s}");
    assert!(s.contains("high water"), "got: {s}");
    assert!(s.contains("p99"), "got: {s}");
}

#[test]
fn soak_is_deterministic_across_runs() {
    let run = || {
        let out =
            bin().args(["soak", "--ticks", "150", "--seed", "9"]).output().expect("runs");
        assert!(out.status.success(), "{}", stderr(&out));
        stdout(&out)
    };
    assert_eq!(run(), run(), "same seed, same report");
}

#[test]
fn soak_rejects_unknown_flags() {
    let out = bin().args(["soak", "--bogus", "1"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown flag"), "got: {}", stderr(&out));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = bin().args(["templates", "/nonexistent/nowhere.log"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(stderr(&out).starts_with("error:"));
}
