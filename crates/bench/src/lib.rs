//! Shared harness for the experiment binaries.
//!
//! Every figure/table of the paper has one binary under `src/bin/`; they
//! share the dataset definitions ([`datasets`]), the budgeted model
//! factory ([`zoo`]) and the table/CSV reporting ([`report`]).
//!
//! Scale control: set `DBAUGUR_SCALE` to `quick` (smoke-test sizes),
//! `standard` (default; minutes per figure on one core) or `full`
//! (paper-sized data and epochs).

pub mod datasets;
pub mod kernels;
pub mod parallel;
pub mod report;
pub mod zoo;
