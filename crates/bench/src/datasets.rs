//! Evaluation datasets and experiment scale.

use dbaugur_trace::synth;
use dbaugur_trace::Trace;

/// Experiment scale, selected by the `DBAUGUR_SCALE` environment
/// variable (`quick` / `standard` / `full`).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Human-readable name.
    pub name: &'static str,
    /// BusTracker-like dataset length in days (paper: 58).
    pub bustracker_days: usize,
    /// Alibaba-like dataset length in days (paper: 6).
    pub alibaba_days: usize,
    /// MLP training epochs.
    pub epochs_mlp: usize,
    /// LSTM training epochs.
    pub epochs_lstm: usize,
    /// TCN training epochs.
    pub epochs_tcn: usize,
    /// WFGAN training epochs.
    pub epochs_wfgan: usize,
    /// Per-epoch example cap for every neural model.
    pub max_examples: usize,
    /// Forecasting horizons (in 10-minute intervals) for BusTracker.
    pub horizons_bus: Vec<usize>,
    /// Forecasting horizons for the Alibaba disk trace.
    pub horizons_ali: Vec<usize>,
}

impl Scale {
    /// Resolve from `DBAUGUR_SCALE` (defaults to `standard`).
    pub fn from_env() -> Self {
        match std::env::var("DBAUGUR_SCALE").as_deref() {
            Ok("quick") => Self::quick(),
            Ok("full") => Self::full(),
            _ => Self::standard(),
        }
    }

    /// Smoke-test scale: seconds per figure.
    pub fn quick() -> Self {
        Self {
            name: "quick",
            bustracker_days: 4,
            alibaba_days: 3,
            epochs_mlp: 5,
            epochs_lstm: 3,
            epochs_tcn: 3,
            epochs_wfgan: 3,
            max_examples: 200,
            horizons_bus: vec![1, 6],
            horizons_ali: vec![1, 6],
        }
    }

    /// Default scale: minutes per figure on one core; enough data and
    /// epochs for the paper's orderings to emerge.
    pub fn standard() -> Self {
        Self {
            name: "standard",
            bustracker_days: 21,
            alibaba_days: 6,
            epochs_mlp: 30,
            epochs_lstm: 18,
            epochs_tcn: 25,
            epochs_wfgan: 18,
            max_examples: 1000,
            horizons_bus: vec![1, 3, 9, 18, 36],
            horizons_ali: vec![1, 3, 6, 12, 24],
        }
    }

    /// Paper-sized scale (hours of CPU).
    pub fn full() -> Self {
        Self {
            name: "full",
            bustracker_days: 58,
            alibaba_days: 6,
            epochs_mlp: 40,
            epochs_lstm: 50,
            epochs_tcn: 50,
            epochs_wfgan: 50,
            max_examples: 4000,
            horizons_bus: vec![1, 3, 6, 18, 36, 72],
            horizons_ali: vec![1, 3, 6, 12, 24, 48],
        }
    }
}

/// Fixed seed so every run of every binary sees identical data.
pub const DATA_SEED: u64 = 42;

/// The BusTracker-like query-rate dataset.
pub fn bustracker(scale: &Scale) -> Trace {
    synth::bustracker(DATA_SEED, scale.bustracker_days)
}

/// The Alibaba-like disk-utilization dataset.
pub fn alibaba(scale: &Scale) -> Trace {
    synth::alibaba_disk(DATA_SEED.wrapping_add(1), scale.alibaba_days)
}

/// The paper's 70/30 chronological split point.
pub fn split_point(trace: &Trace) -> usize {
    (trace.len() as f64 * 0.7).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let q = Scale::quick();
        let s = Scale::standard();
        let f = Scale::full();
        assert!(q.bustracker_days < s.bustracker_days);
        assert!(s.bustracker_days <= f.bustracker_days);
        assert!(q.epochs_wfgan <= s.epochs_wfgan);
    }

    #[test]
    fn datasets_are_deterministic() {
        let s = Scale::quick();
        assert_eq!(bustracker(&s).values(), bustracker(&s).values());
        assert_eq!(alibaba(&s).values(), alibaba(&s).values());
    }

    #[test]
    fn split_is_seventy_percent() {
        let s = Scale::quick();
        let t = bustracker(&s);
        let cut = split_point(&t);
        assert!((cut as f64 / t.len() as f64 - 0.7).abs() < 0.01);
    }
}
