//! Shared workloads for the parallel-execution benchmarks.
//!
//! Both the criterion bench (`benches/parallel.rs`) and the
//! `BENCH_3.json` emitter (`src/bin/bench3.rs`) measure the same three
//! things — DTW distance-matrix clustering, full-pipeline training, and
//! forecast latency — so the workload construction lives here and the
//! two harnesses cannot drift apart.

use crate::datasets::Scale;
use dbaugur::{DbAugur, DbAugurConfig};
use dbaugur_trace::{synth, Trace, TraceKind};

/// Distance-matrix workload size (the acceptance floor is 200 traces).
pub const MATRIX_TRACES: usize = 200;

/// `n` noisy variants of five base shapes — dense enough that the
/// LB_Keogh prefilter leaves real DTW work behind.
pub fn matrix_workload(n: usize) -> Vec<Trace> {
    (0..n)
        .map(|i| synth::add_noise(&synth::bustracker(i as u64 % 5, 1), 10.0, i as u64))
        .collect()
}

/// Worker counts to sweep: 1 (sequential baseline), 2, 4, and all
/// available cores (deduplicated, ascending).
pub fn worker_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut sweep = vec![1usize, 2, 4, max];
    sweep.retain(|&w| w <= max.max(4));
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

/// Ingest a mixed query + resource workload and train end-to-end with
/// the given worker count (`0` = all cores). Scale-aware via
/// `DBAUGUR_SCALE` so the CI smoke job stays fast.
pub fn trained_pipeline(workers: usize) -> DbAugur {
    let scale = Scale::from_env();
    let minutes = (scale.bustracker_days as u64) * 60;
    let mut cfg = DbAugurConfig {
        interval_secs: 60,
        history: 10,
        horizon: 1,
        top_k: 4,
        threads: workers,
        epochs: scale.epochs_mlp.min(5),
        max_examples: scale.max_examples.min(200),
        ..DbAugurConfig::default()
    };
    cfg.clustering.min_size = 1;
    let mut sys = DbAugur::new(cfg);
    for m in 0..minutes {
        let lockstep = 3 + (m % 12);
        for k in 0..lockstep {
            sys.ingest_record(m * 60 + k, "SELECT a FROM t1 WHERE id = 1");
            sys.ingest_record(m * 60 + k + 1, "SELECT b FROM t2 WHERE id = 2");
        }
        let other = 2 + (m % 7);
        for k in 0..other {
            sys.ingest_record(m * 60 + 30 + k, "UPDATE t3 SET x = 1 WHERE id = 3");
        }
    }
    sys.add_resource_trace(Trace::new(
        "cpu",
        TraceKind::Resource,
        60,
        (0..minutes).map(|i| 0.3 + 0.1 * ((i % 12) as f64 / 12.0)).collect(),
    ));
    sys.train(0, minutes * 60).expect("benchmark workload trains");
    sys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_workload_has_requested_size() {
        let traces = matrix_workload(8);
        assert_eq!(traces.len(), 8);
        assert!(traces.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn worker_sweep_starts_sequential() {
        let sweep = worker_sweep();
        assert_eq!(sweep[0], 1);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }
}
