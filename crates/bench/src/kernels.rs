//! Shared workloads and timers for the compute-kernel microbenchmarks.
//!
//! The criterion bench (`benches/kernels.rs`) and the `BENCH_8.json`
//! emitter (`src/bin/bench8.rs`) measure the same kernels — blocked
//! matmul vs the naive reference, the banded DTW inner loop vs the
//! pre-optimization kernel, and batched vs looped forecast inference —
//! so workload construction lives here and the harnesses cannot drift.

use dbaugur_dtw::{
    dtw_distance_early_abandon_reference, dtw_distance_early_abandon_scratch, DtwScratch,
};
use dbaugur_nn::Mat;
use std::time::Instant;

/// Deterministic xorshift stream in `[-10, 10)` — no RNG dependency so
/// the workload is identical everywhere.
pub struct SeededStream(u64);

impl SeededStream {
    /// Stream seeded so different call sites can diverge.
    pub fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    /// Next value in `[-10, 10)`.
    pub fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0
    }
}

/// A seeded `rows × cols` matrix.
pub fn seeded_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut s = SeededStream::new(seed);
    Mat::from_fn(rows, cols, |_, _| s.next_f64())
}

/// A seeded series of length `len` (smooth + noise, like a binned
/// arrival-rate trace).
pub fn seeded_series(len: usize, seed: u64) -> Vec<f64> {
    let mut s = SeededStream::new(seed);
    (0..len)
        .map(|i| 50.0 + 30.0 * (i as f64 * 0.07).sin() + s.next_f64() * 0.5)
        .collect()
}

/// Best-of-`reps` wall time of `f`, in seconds.
pub fn time_best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// GFLOP/s of an `m×k×n` matmul that took `secs`.
pub fn matmul_gflops(m: usize, k: usize, n: usize, secs: f64) -> f64 {
    (2.0 * m as f64 * k as f64 * n as f64) / secs / 1e9
}

/// Approximate DTW cells touched for one `n × m` comparison under band
/// half-width `w` (the banded kernel's actual work; the reference also
/// pays an O(m) fill per row on top of this).
pub fn dtw_band_cells(n: usize, m: usize, w: usize) -> usize {
    let width = (2 * w + 1).min(m);
    n * width
}

/// One matmul microbench: `(naive_secs, blocked_secs, bitwise_match)`.
/// `which` selects the kernel: 0 = `matmul`, 1 = `t_matmul`,
/// 2 = `matmul_t`.
pub fn matmul_case(a: &Mat, b: &Mat, which: usize, reps: usize) -> (f64, f64, bool) {
    let (naive, fast): (Mat, Mat) = match which {
        0 => (a.matmul_reference(b), a.matmul(b)),
        1 => (a.t_matmul_reference(b), a.t_matmul(b)),
        _ => (a.matmul_t_reference(b), a.matmul_t(b)),
    };
    let matches = naive
        .as_slice()
        .iter()
        .zip(fast.as_slice())
        .all(|(x, y)| x.to_bits() == y.to_bits());
    let naive_secs = time_best_of(reps, || match which {
        0 => {
            std::hint::black_box(a.matmul_reference(std::hint::black_box(b)));
        }
        1 => {
            std::hint::black_box(a.t_matmul_reference(std::hint::black_box(b)));
        }
        _ => {
            std::hint::black_box(a.matmul_t_reference(std::hint::black_box(b)));
        }
    });
    let fast_secs = time_best_of(reps, || match which {
        0 => {
            std::hint::black_box(a.matmul(std::hint::black_box(b)));
        }
        1 => {
            std::hint::black_box(a.t_matmul(std::hint::black_box(b)));
        }
        _ => {
            std::hint::black_box(a.matmul_t(std::hint::black_box(b)));
        }
    });
    (naive_secs, fast_secs, matches)
}

/// DTW pairwise microbench over `pairs` seeded series of length `len`
/// under band half-width `window`: `(reference_secs, banded_secs,
/// bitwise_match)`. Full-work comparison (no cutoff), matching the
/// distance-matrix hot loop's worst case.
pub fn dtw_case(len: usize, pairs: usize, window: usize, reps: usize) -> (f64, f64, bool) {
    let series: Vec<Vec<f64>> =
        (0..pairs).map(|i| seeded_series(len, 0x9e37 + i as u64 * 7919)).collect();
    let mut scratch = DtwScratch::new();
    let mut matches = true;
    for i in 0..pairs {
        let j = (i + 1) % pairs;
        let r = dtw_distance_early_abandon_reference(
            &series[i],
            &series[j],
            window,
            f64::INFINITY,
        );
        let b = dtw_distance_early_abandon_scratch(
            &series[i],
            &series[j],
            window,
            f64::INFINITY,
            &mut scratch,
        );
        matches &= r.to_bits() == b.to_bits();
    }
    let reference_secs = time_best_of(reps, || {
        let mut acc = 0.0;
        for i in 0..pairs {
            let j = (i + 1) % pairs;
            acc += dtw_distance_early_abandon_reference(
                std::hint::black_box(&series[i]),
                std::hint::black_box(&series[j]),
                window,
                f64::INFINITY,
            );
        }
        std::hint::black_box(acc);
    });
    let banded_secs = time_best_of(reps, || {
        let mut acc = 0.0;
        for i in 0..pairs {
            let j = (i + 1) % pairs;
            acc += dtw_distance_early_abandon_scratch(
                std::hint::black_box(&series[i]),
                std::hint::black_box(&series[j]),
                window,
                f64::INFINITY,
                &mut scratch,
            );
        }
        std::hint::black_box(acc);
    });
    (reference_secs, banded_secs, matches)
}

/// `p`-th percentile (0–100) of an unsorted sample, nearest-rank.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_workloads_are_deterministic() {
        assert_eq!(seeded_mat(4, 5, 7).as_slice(), seeded_mat(4, 5, 7).as_slice());
        assert_eq!(seeded_series(16, 3), seeded_series(16, 3));
    }

    #[test]
    fn matmul_case_reports_bitwise_match() {
        let a = seeded_mat(13, 9, 1);
        let b = seeded_mat(9, 11, 2);
        for which in 0..3 {
            let at = a.transpose();
            let bt = b.transpose();
            let (l, r) = match which {
                1 => (&at, &b),
                2 => (&a, &bt),
                _ => (&a, &b),
            };
            let (naive, fast, ok) = matmul_case(l, r, which, 1);
            assert!(ok, "kernel {which} diverged from reference");
            assert!(naive > 0.0 && fast > 0.0);
        }
    }

    #[test]
    fn dtw_case_reports_bitwise_match() {
        let (r, b, ok) = dtw_case(64, 4, 8, 1);
        assert!(ok);
        assert!(r > 0.0 && b > 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&mut s, 50.0), 50.0);
        assert_eq!(percentile(&mut s, 99.0), 99.0);
        assert_eq!(percentile(&mut s, 100.0), 100.0);
    }
}
