//! `BENCH_10.json` — the streaming front door gate: sustained per-event
//! ingest through `StreamFront` (fingerprint-cached template matching,
//! amortized online clustering, group-committed WAL) must beat the bulk
//! fsync-per-record path by ≥10× on events/sec, hold its p99 per-event
//! ingest latency under budget through a seeded burst plan, produce a
//! forecast digest byte-identical to the bulk path on the same seed,
//! and pass a crash matrix that kills the WAL at offsets *inside* a
//! coalesced batch (acked-only-after-fsync + torn-batch salvage).
//!
//! Usage: `cargo run --release -p dbaugur-bench --bin bench10`
//! Scale: `DBAUGUR_SCALE=quick|standard|full` (CI uses `quick`).
//! Output: `BENCH_10.json` in the working directory, or the path in
//! `DBAUGUR_BENCH_OUT`. Exit status is non-zero when any gate fails.

use dbaugur::wal::scan_bytes;
use dbaugur::{
    real_vfs, DbAugur, DbAugurConfig, DurableDbAugur, GroupCommitConfig, MemVfs, WAL_FILE,
};
use dbaugur_bench::datasets::Scale;
use dbaugur_shard::ShardedDurable;
use dbaugur_stream::{run_stream_soak, StreamConfig, StreamFront, StreamSoakConfig};
use dbaugur_trace::FaultInjector;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Speedup the streaming path must sustain over fsync-per-record bulk.
const SPEEDUP_MIN: f64 = 10.0;
/// p99 per-event ingest latency budget, microseconds. Group commit puts
/// roughly one fsync in every `max_records` events, so the budget
/// absorbs a real-disk fsync plus CI jitter without masking a stall.
const P99_BUDGET_US: u64 = 50_000;

fn pipeline_cfg(shards: usize) -> DbAugurConfig {
    let mut cfg = DbAugurConfig {
        shards,
        interval_secs: 60,
        history: 8,
        horizon: 1,
        top_k: 3,
        ..DbAugurConfig::default()
    };
    cfg.clustering.min_size = 1;
    cfg.fast();
    cfg
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbaugur_bench10_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The shared throughput workload: `shapes` templatized statement
/// shapes with per-event literals, so every event exercises the
/// matching layer (full canonicalization on the bulk path, the
/// fingerprint fast path on the streaming one).
fn workload_sql(i: usize, shapes: usize) -> String {
    let s = i % shapes;
    format!("SELECT c{s} FROM stream_rel_{s} WHERE key = {i} AND tenant = {}", i % 7)
}

struct ThroughputArm {
    events: usize,
    secs: f64,
    eps: f64,
}

/// Bulk arm: one canonicalization + one WAL append + one fsync per
/// event — the pre-streaming front door, timed on a real filesystem.
fn run_bulk(events: usize, shapes: usize) -> ThroughputArm {
    let dir = tmpdir("bulk");
    let vfs = real_vfs();
    let mut store =
        ShardedDurable::open_with_vfs(&vfs, &dir, pipeline_cfg(2)).expect("open bulk store");
    let t0 = Instant::now();
    for i in 0..events {
        let sql = workload_sql(i, shapes);
        store.ingest_record((i / 200) as u64, &sql).expect("bulk ingest");
    }
    let secs = t0.elapsed().as_secs_f64();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    ThroughputArm { events, secs, eps: events as f64 / secs.max(1e-9) }
}

struct StreamArm {
    arm: ThroughputArm,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
    flushes: u64,
    records_per_fsync: f64,
    route_cache_hits: u64,
    route_cache_misses: u64,
    shed: u64,
}

/// Streaming arm: the same workload through `StreamFront` — per-event
/// latency sampled around every `ingest_event` call.
fn run_stream(events: usize, shapes: usize) -> StreamArm {
    let dir = tmpdir("stream");
    let vfs = real_vfs();
    let store =
        ShardedDurable::open_with_vfs(&vfs, &dir, pipeline_cfg(2)).expect("open stream store");
    let mut scfg = StreamConfig::from_db(&pipeline_cfg(2));
    scfg.group_commit = GroupCommitConfig { max_records: 64, max_delay_us: 2_000 };
    let mut front = StreamFront::new(store, scfg);

    let mut lat_ns: Vec<u64> = Vec::with_capacity(events);
    let t0 = Instant::now();
    for i in 0..events {
        let sql = workload_sql(i, shapes);
        // Sustained load: 10 µs of virtual time per event, so batches
        // fill (64 records in 640 µs) well inside the 2 ms timer and
        // flushes are size-triggered; stragglers timer-flush on poll.
        let now_us = i as u64 * 10;
        let t = Instant::now();
        front.ingest_event(now_us, (i / 200) as u64, &sql).expect("stream ingest");
        lat_ns.push(t.elapsed().as_nanos() as u64);
        if i % 256 == 255 {
            front.poll(now_us).expect("poll");
        }
        if i % 4_096 == 4_095 {
            front.maintain((i / 200) as u64);
        }
    }
    front.flush().expect("final barrier");
    let secs = t0.elapsed().as_secs_f64();

    let stats = front.stats();
    assert_eq!(front.unacked(), 0, "the barrier left nothing in flight");
    let store = front.into_store().expect("teardown");
    let flushed: u64 = (0..2).map(|i| store.durability(i).wal_group_records).sum();
    assert_eq!(flushed as usize, events, "every event durably landed");
    drop(store);
    std::fs::remove_dir_all(&dir).ok();

    lat_ns.sort_unstable();
    let pick = |q: f64| lat_ns[((lat_ns.len() - 1) as f64 * q) as usize] / 1_000;
    StreamArm {
        arm: ThroughputArm { events, secs, eps: events as f64 / secs.max(1e-9) },
        p50_us: pick(0.50),
        p99_us: pick(0.99),
        max_us: lat_ns[lat_ns.len() - 1] / 1_000,
        flushes: stats.flushes,
        records_per_fsync: stats.flushed_records as f64 / stats.flushes.max(1) as f64,
        route_cache_hits: stats.route_cache_hits,
        route_cache_misses: stats.route_cache_misses,
        shed: stats.shed,
    }
}

/// FNV-1a fold of a store's registry state and per-cluster forecasts:
/// bitwise, so "identical" means identical.
fn forecast_digest(store: &mut ShardedDurable, shards: usize) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let fold = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for i in 0..shards {
        let trained = store.shard_mut(i).system_mut().train(0, 121 * 60).is_ok();
        let sys: &DbAugur = store.shard(i).system();
        let reg = sys.registry();
        let mut items: Vec<(String, usize, u64)> = (0..reg.num_templates())
            .map(|id| {
                let tid = dbaugur_sqlproc::TemplateId(id as u32);
                (reg.template(tid).to_string(), reg.count(tid), reg.last_seen(tid))
            })
            .collect();
        items.sort_unstable();
        for (sql, count, last_seen) in items {
            fold(&mut h, sql.as_bytes());
            fold(&mut h, &(count as u64).to_le_bytes());
            fold(&mut h, &last_seen.to_le_bytes());
        }
        if trained {
            for c in 0..sys.clusters().len() {
                let f = sys.forecast_cluster(c).expect("cluster");
                fold(&mut h, &f.to_bits().to_le_bytes());
            }
        }
    }
    h
}

/// Same seed, two front doors: the streaming path must reach the exact
/// registry state and forecasts the bulk path reaches.
fn run_digest_check() -> (u64, u64) {
    // A paper-shaped workload: periodic arrival patterns per shape so
    // training has real structure to cluster and forecast.
    let mut events: Vec<(u64, String)> = Vec::new();
    for m in 0..120u64 {
        for s in 0..6u64 {
            let n = 2 + ((m + s) % 5) + 4 * u64::from((m + 2 * s) % 12 < 6);
            for k in 0..n {
                events.push((m * 60 + k, format!("SELECT v{s} FROM periodic_{s} WHERE id = {m}")));
            }
        }
    }

    let bulk_vfs: dbaugur::DynVfs = Arc::new(MemVfs::new());
    let mut bulk =
        ShardedDurable::open_with_vfs(&bulk_vfs, Path::new("/digest/bulk"), pipeline_cfg(2))
            .expect("open");
    for (ts, sql) in &events {
        bulk.ingest_record(*ts, sql).expect("ingest");
    }

    let stream_vfs: dbaugur::DynVfs = Arc::new(MemVfs::new());
    let store =
        ShardedDurable::open_with_vfs(&stream_vfs, Path::new("/digest/stream"), pipeline_cfg(2))
            .expect("open");
    let mut scfg = StreamConfig::from_db(&pipeline_cfg(2));
    scfg.group_commit = GroupCommitConfig { max_records: 64, max_delay_us: 2_000 };
    let mut front = StreamFront::new(store, scfg);
    for (i, (ts, sql)) in events.iter().enumerate() {
        front.ingest_event(i as u64 * 1_000, *ts, sql).expect("ingest");
    }
    let mut stream = front.into_store().expect("barrier");

    (forecast_digest(&mut bulk, 2), forecast_digest(&mut stream, 2))
}

/// Kill the WAL at seeded offsets inside a coalesced batch; recovery
/// must salvage exactly the framed prefix and nothing unacked.
fn run_crash_matrix() -> (usize, usize) {
    let dir = tmpdir("crash");
    let (mut durable, _) = DurableDbAugur::open(&dir, pipeline_cfg(1)).expect("open");
    for m in 0..30u64 {
        durable.ingest_record(m * 60, "SELECT a FROM base WHERE id = 1").expect("ingest");
    }
    durable.checkpoint().expect("checkpoint");
    durable.stream_enable(GroupCommitConfig { max_records: 8, max_delay_us: 1_000_000 });
    let mut batch1_len = 0u64;
    for i in 0..20u64 {
        let report = durable
            .stream_submit(i, 2_000 + i, &format!("SELECT g{i} FROM gc_only{i}"))
            .expect("submit");
        if report.is_some() && batch1_len == 0 {
            batch1_len = std::fs::metadata(dir.join(WAL_FILE)).expect("wal").len();
        }
    }
    drop(durable); // 4 buffered records die unacked

    let wal_bytes = std::fs::read(dir.join(WAL_FILE)).expect("read wal");
    let span = wal_bytes.len() - batch1_len as usize;
    let mut inj = FaultInjector::new(0xC0FFEE);
    let mut cuts: Vec<usize> = inj
        .kill_offsets(span.saturating_sub(1), 16)
        .into_iter()
        .map(|o| batch1_len as usize + 1 + o % span.max(1))
        .filter(|&c| c < wal_bytes.len())
        .collect();
    cuts.sort_unstable();
    cuts.dedup();

    let mut passed = 0usize;
    for &cut in &cuts {
        let case = tmpdir(&format!("crash_cut_{cut}"));
        for entry in std::fs::read_dir(&dir).expect("read dir") {
            let entry = entry.expect("entry");
            std::fs::copy(entry.path(), case.join(entry.file_name())).expect("copy");
        }
        std::fs::write(case.join(WAL_FILE), &wal_bytes[..cut]).expect("torn wal");
        let salvage = scan_bytes(&wal_bytes[..cut]);
        let ok = match DbAugur::recover(&case, pipeline_cfg(1)) {
            Ok((_, report)) => {
                report.wal_applied + report.wal_skipped == salvage.entries.len()
                    && salvage.entries.len() >= 8
                    && salvage.entries.len() < 16
            }
            Err(e) => {
                eprintln!("crash matrix: recovery failed at cut {cut}: {e}");
                false
            }
        };
        if ok {
            passed += 1;
        } else {
            eprintln!("crash matrix: contract violated at cut {cut}");
        }
        std::fs::remove_dir_all(&case).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
    (cuts.len(), passed)
}

fn main() {
    let scale = Scale::from_env();
    let (events, shapes) = match scale.name {
        "quick" => (8_000usize, 48usize),
        "full" => (120_000, 96),
        _ => (40_000, 64),
    };
    eprintln!("bench10: scale={} events={events} shapes={shapes}", scale.name);

    let bulk = run_bulk(events, shapes);
    eprintln!("bulk:   {:.0} events/s ({:.2}s)", bulk.eps, bulk.secs);
    let stream = run_stream(events, shapes);
    eprintln!(
        "stream: {:.0} events/s ({:.2}s) p50 {}us p99 {}us max {}us, {:.1} records/fsync",
        stream.arm.eps, stream.arm.secs, stream.p50_us, stream.p99_us, stream.max_us,
        stream.records_per_fsync
    );

    // Seeded burst plan: conservation through 10× bursts, books exact.
    let t0 = Instant::now();
    let soak = run_stream_soak(StreamSoakConfig::default());
    let soak_secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "soak:   offered {} acked {} shed {} flushes {} ({:.2}s)",
        soak.offered, soak.acked, soak.shed, soak.flushes, soak_secs
    );

    let (digest_bulk, digest_stream) = run_digest_check();
    let digests_equal = digest_bulk == digest_stream;
    eprintln!("digest: bulk {digest_bulk:016x} stream {digest_stream:016x} equal={digests_equal}");

    let (cuts, cuts_passed) = run_crash_matrix();
    let crash_pass = cuts >= 8 && cuts_passed == cuts;
    eprintln!("crash matrix: {cuts_passed}/{cuts} batch-interior cuts recovered");

    let speedup = stream.arm.eps / bulk.eps.max(1e-9);
    let speedup_pass = speedup >= SPEEDUP_MIN;
    let p99_pass = stream.p99_us <= P99_BUDGET_US;
    let soak_pass = soak.offered == soak.acked + soak.shed && soak.replayed == soak.acked;
    let status = if speedup_pass && p99_pass && soak_pass && digests_equal && crash_pass {
        "pass"
    } else {
        "fail"
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"stream_front_door\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.name);
    let _ = writeln!(json, "  \"bulk\": {{");
    let _ = writeln!(json, "    \"events\": {},", bulk.events);
    let _ = writeln!(json, "    \"secs\": {:.3},", bulk.secs);
    let _ = writeln!(json, "    \"events_per_sec\": {:.1}", bulk.eps);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"stream\": {{");
    let _ = writeln!(json, "    \"events\": {},", stream.arm.events);
    let _ = writeln!(json, "    \"secs\": {:.3},", stream.arm.secs);
    let _ = writeln!(json, "    \"events_per_sec\": {:.1},", stream.arm.eps);
    let _ = writeln!(json, "    \"p50_us\": {},", stream.p50_us);
    let _ = writeln!(json, "    \"p99_us\": {},", stream.p99_us);
    let _ = writeln!(json, "    \"max_us\": {},", stream.max_us);
    let _ = writeln!(json, "    \"flushes\": {},", stream.flushes);
    let _ = writeln!(json, "    \"records_per_fsync\": {:.2},", stream.records_per_fsync);
    let _ = writeln!(json, "    \"route_cache_hits\": {},", stream.route_cache_hits);
    let _ = writeln!(json, "    \"route_cache_misses\": {},", stream.route_cache_misses);
    let _ = writeln!(json, "    \"shed\": {}", stream.shed);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"burst_soak\": {{");
    let _ = writeln!(json, "    \"offered\": {},", soak.offered);
    let _ = writeln!(json, "    \"acked\": {},", soak.acked);
    let _ = writeln!(json, "    \"shed\": {},", soak.shed);
    let _ = writeln!(json, "    \"flushes\": {},", soak.flushes);
    let _ = writeln!(json, "    \"bins_closed\": {},", soak.bins_closed);
    let _ = writeln!(json, "    \"cluster_points\": {},", soak.cluster_points);
    let _ = writeln!(json, "    \"replayed_on_reopen\": {},", soak.replayed);
    let _ = writeln!(json, "    \"secs\": {soak_secs:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"digest\": {{");
    let _ = writeln!(json, "    \"bulk\": \"{digest_bulk:016x}\",");
    let _ = writeln!(json, "    \"stream\": \"{digest_stream:016x}\",");
    let _ = writeln!(json, "    \"forecasts_equal\": {digests_equal}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"crash_matrix\": {{");
    let _ = writeln!(json, "    \"batch_interior_cuts\": {cuts},");
    let _ = writeln!(json, "    \"passed\": {cuts_passed}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"gate\": {{");
    let _ = writeln!(json, "    \"speedup\": {speedup:.2},");
    let _ = writeln!(json, "    \"speedup_min\": {SPEEDUP_MIN:.1},");
    let _ = writeln!(json, "    \"speedup_pass\": {speedup_pass},");
    let _ = writeln!(json, "    \"p99_us\": {},", stream.p99_us);
    let _ = writeln!(json, "    \"p99_budget_us\": {P99_BUDGET_US},");
    let _ = writeln!(json, "    \"p99_pass\": {p99_pass},");
    let _ = writeln!(json, "    \"burst_books_exact\": {soak_pass},");
    let _ = writeln!(json, "    \"digests_equal\": {digests_equal},");
    let _ = writeln!(json, "    \"crash_matrix_pass\": {crash_pass},");
    let _ = writeln!(json, "    \"status\": \"{status}\"");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let out = std::env::var("DBAUGUR_BENCH_OUT").unwrap_or_else(|_| "BENCH_10.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("[json] {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    print!("{json}");

    if status != "pass" {
        eprintln!(
            "FAIL: speedup {speedup:.2}x (need {SPEEDUP_MIN:.0}x) p99 {}us (budget {}us) \
             books-exact={soak_pass} digests-equal={digests_equal} crash-matrix={cuts_passed}/{cuts}",
            stream.p99_us, P99_BUDGET_US
        );
        std::process::exit(1);
    }
}
