//! Figure 8 — Case study: index selection.
//!
//! A BusTracker-style application runs on the cost-model database with
//! AutoAdmin choosing indexes. The workload's template mix shifts at
//! 08:00 of the evaluation day (as in the paper's Fig. 8):
//!
//! * **Static** — indexes chosen once from the historical workload;
//! * **Auto (QB5000)** / **Auto (DBAugur)** — each period, AutoAdmin is
//!   re-run on the forecasted per-template arrival rates (one-hour-ahead
//!   forecasts, produced causally via rolling evaluation); newly
//!   recommended indexes are built online, with the build work charged
//!   against that period's budget (the early-morning throughput dip).
//!
//! Reported: per-period query throughput and mean latency for each
//! strategy, plus before/after-shift averages.

use dbaugur_bench::datasets::Scale;
use dbaugur_bench::report::ResultTable;
use dbaugur_bench::zoo;
use dbaugur_dbsim::index::{Predicate, QueryTemplate};
use dbaugur_dbsim::{run_period, AutoAdmin, Catalog, CostModel, IndexSet, PeriodBudget, Workload};
use dbaugur_models::eval::rolling_forecast;
use dbaugur_models::{combine_fixed, combine_time_sensitive};
use dbaugur_trace::synth::SAMPLES_PER_DAY;
use dbaugur_trace::WindowSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const HISTORY: usize = 30;
/// One-hour-ahead forecasts at the 10-minute interval.
const FORECAST_H: usize = 6;
const INDEX_BUDGET: usize = 3;
const WORK_BUDGET: f64 = 8e5;
const PERIOD_SECS: f64 = 600.0;

/// Per-template arrival-rate traces: `train_days` of pattern A, then an
/// evaluation day that switches to pattern B at 08:00.
fn template_traces(train_days: usize, seed: u64) -> (Vec<Vec<f64>>, usize, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let eval_start = train_days * SAMPLES_PER_DAY;
    let total = eval_start + SAMPLES_PER_DAY;
    let shift_at = eval_start + SAMPLES_PER_DAY / 3; // 08:00
    // Pattern A rates per template, pattern B rates per template.
    let a: [f64; 4] = [1200.0, 120.0, 900.0, 80.0];
    let b: [f64; 4] = [150.0, 1400.0, 100.0, 1100.0];
    let mut traces = vec![Vec::with_capacity(total); a.len()];
    for t in 0..total {
        let tod = (t % SAMPLES_PER_DAY) as f64 / SAMPLES_PER_DAY as f64;
        let day_cycle = 0.6 + 0.4 * (std::f64::consts::TAU * (tod - 0.25)).sin().max(0.0);
        let rates = if t >= shift_at { &b } else { &a };
        for (tr, &r) in traces.iter_mut().zip(rates) {
            let noise = 1.0 + rng.gen_range(-0.08f64..0.08);
            tr.push((r * day_cycle * noise).max(0.0));
        }
    }
    (traces, eval_start, shift_at)
}

fn build_schema() -> (Catalog, Vec<QueryTemplate>) {
    let mut cat = Catalog::new();
    let trips = cat.add_table(200_000, vec![200_000, 100, 500]);
    let stops = cat.add_table(20_000, vec![20_000, 40]);
    let tickets = cat.add_table(100_000, vec![100_000, 5_000]);
    let templates = vec![
        // Pattern A favourites: point lookups on trips.id and stops.id.
        QueryTemplate { table: trips, predicates: vec![Predicate::Eq((trips, 0))] },
        // Pattern B favourites: trips by route, tickets by user.
        QueryTemplate { table: trips, predicates: vec![Predicate::Eq((trips, 1))] },
        QueryTemplate { table: stops, predicates: vec![Predicate::Eq((stops, 0))] },
        QueryTemplate { table: tickets, predicates: vec![Predicate::Eq((tickets, 1))] },
    ];
    (cat, templates)
}

/// Forecast every template's arrival trace with the named ensemble,
/// returning `preds[template][k]` aligned with `indices[k]` (absolute
/// trace positions).
fn forecast_all(
    kind: &str,
    traces: &[Vec<f64>],
    split: usize,
    scale: &Scale,
) -> (Vec<Vec<f64>>, Vec<usize>) {
    let spec = WindowSpec::new(HISTORY, FORECAST_H);
    let mut all = Vec::new();
    let mut indices = Vec::new();
    for trace in traces {
        let members: &[&str] =
            if kind == "QB5000" { &["LR", "LSTM", "KR"] } else { &["WFGAN", "TCN", "MLP"] };
        let mut member_preds = Vec::new();
        let mut targets = Vec::new();
        for name in members {
            let mut model = zoo::standalone(name, scale);
            let rep =
                rolling_forecast(model.as_mut(), trace, split, spec).expect("test region");
            targets = rep.targets.clone();
            indices = rep.indices.clone();
            member_preds.push(rep.predictions);
        }
        let combined = if kind == "QB5000" {
            combine_fixed(&member_preds)
        } else {
            combine_time_sensitive(&member_preds, &targets, 0.9)
        };
        all.push(combined);
    }
    (all, indices)
}

struct Strategy {
    name: &'static str,
    indexes: IndexSet,
    /// `None` = static (never re-advise); `Some(preds)` = forecasted
    /// rates per template aligned with the eval indices.
    forecasts: Option<Vec<Vec<f64>>>,
    tput: Vec<f64>,
    lat: Vec<f64>,
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {}", scale.name);
    let train_days = if scale.name == "quick" { 2 } else { 4 };
    let (traces, eval_start, shift_at) = template_traces(train_days, 11);
    let (catalog, templates) = build_schema();
    let cost = CostModel::default();
    let advisor = AutoAdmin::new(INDEX_BUDGET);

    // Historical (pattern A) workload for the Static strategy.
    let hist = Workload::new(
        traces.iter().map(|t| t[..eval_start].iter().sum::<f64>() / eval_start as f64).collect(),
    );
    let static_indexes = advisor.recommend(&catalog, &templates, &hist);
    eprintln!("[fig8] static indexes: {:?}", static_indexes.iter().collect::<Vec<_>>());

    // Forecast series for the two Auto strategies.
    let t0 = Instant::now();
    let (qb_preds, indices) = forecast_all("QB5000", &traces, eval_start, &scale);
    eprintln!("[fig8] QB5000 forecasts in {:.1}s", t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    let (db_preds, _) = forecast_all("DBAugur", &traces, eval_start, &scale);
    eprintln!("[fig8] DBAugur forecasts in {:.1}s", t0.elapsed().as_secs_f64());

    let mut strategies = vec![
        Strategy {
            name: "Static",
            indexes: static_indexes,
            forecasts: None,
            tput: Vec::new(),
            lat: Vec::new(),
        },
        Strategy {
            name: "Auto(QB5000)",
            indexes: IndexSet::new(),
            forecasts: Some(qb_preds),
            tput: Vec::new(),
            lat: Vec::new(),
        },
        Strategy {
            name: "Auto(DBAugur)",
            indexes: IndexSet::new(),
            forecasts: Some(db_preds),
            tput: Vec::new(),
            lat: Vec::new(),
        },
    ];

    // Simulate the evaluation day period by period.
    for (k, &period) in indices.iter().enumerate() {
        let actual = Workload::new(traces.iter().map(|t| t[period]).collect());
        for s in &mut strategies {
            let mut build = 0.0;
            if let Some(preds) = &s.forecasts {
                let predicted =
                    Workload::new(preds.iter().map(|p| p[k].max(0.0)).collect());
                let want = advisor.recommend(&catalog, &templates, &predicted);
                // Build what's newly recommended; drop what fell out.
                for col in want.iter() {
                    if s.indexes.add(col) {
                        build += cost.build_cost(&catalog, col);
                    }
                }
                let stale: Vec<_> = s.indexes.iter().filter(|c| !want.contains(*c)).collect();
                for col in stale {
                    s.indexes.remove(col);
                }
            }
            let (tput, lat) = run_period(
                &catalog,
                &cost,
                &templates,
                &actual,
                &s.indexes,
                PeriodBudget { build_cost: build, work_budget: WORK_BUDGET, period_secs: PERIOD_SECS },
            );
            s.tput.push(tput);
            s.lat.push(lat);
        }
    }

    // Series CSV.
    let mut series = ResultTable::new(
        "Fig. 8: per-period series",
        &["period", "static_tput", "qb_tput", "db_tput", "static_lat", "qb_lat", "db_lat"],
    );
    for (k, idx) in indices.iter().enumerate() {
        series.add_row(vec![
            idx.to_string(),
            format!("{:.1}", strategies[0].tput[k]),
            format!("{:.1}", strategies[1].tput[k]),
            format!("{:.1}", strategies[2].tput[k]),
            format!("{:.1}", strategies[0].lat[k]),
            format!("{:.1}", strategies[1].lat[k]),
            format!("{:.1}", strategies[2].lat[k]),
        ]);
    }
    series.write_csv("fig8_series");

    // Summary: before/after the 08:00 shift.
    let shift_k = indices.iter().position(|&p| p >= shift_at).unwrap_or(0);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let warmup = 12.min(shift_k); // the first two hours of the eval day
    let mut summary = ResultTable::new(
        format!("Fig. 8: index selection — throughput (qps) and latency (work units) ({} scale)", scale.name),
        &[
            "strategy",
            "tput first 2h",
            "tput pre-shift",
            "tput post-shift",
            "lat pre-shift",
            "lat post-shift",
        ],
    );
    for s in &strategies {
        summary.add_row(vec![
            s.name.into(),
            format!("{:.2}", mean(&s.tput[..warmup])),
            format!("{:.2}", mean(&s.tput[..shift_k])),
            format!("{:.2}", mean(&s.tput[shift_k..])),
            format!("{:.1}", mean(&s.lat[..shift_k])),
            format!("{:.1}", mean(&s.lat[shift_k..])),
        ]);
    }
    summary.print();
    summary.write_csv("fig8_summary");

    let post = |i: usize| mean(&strategies[i].tput[shift_k..]);
    println!(
        "[shape] post-shift throughput: Static {:.1} vs Auto(QB5000) {:.1} vs Auto(DBAugur) {:.1} \
         (paper: Auto overtakes Static after the workload shifts; DBAugur ≥ QB5000)",
        post(0),
        post(1),
        post(2)
    );
}
