//! Table II — Computation and Storage Efficiency.
//!
//! Per-epoch training CPU time on both datasets, single-prediction
//! inference latency, and serialized model size for LR, MLP, LSTM, TCN
//! and WFGAN. (As in the paper, ARIMA is excluded as an on-time
//! algorithm and QB5000/DBAugur are derivable from their members.)

use dbaugur_bench::datasets::{alibaba, bustracker, split_point, Scale};
use dbaugur_bench::report::{fmt_bytes, fmt_secs, ResultTable};
use dbaugur_bench::zoo;
use dbaugur_models::util::prepare;
use dbaugur_models::Forecaster;
use dbaugur_nn::Adam;
use dbaugur_trace::{Trace, WindowSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const HISTORY: usize = 30;

/// Median-of-3 timing of one closure.
fn time_once(mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(3);
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    samples[1]
}

/// One-epoch train time for `name` on `trace` (full fit time for LR,
/// which has no epochs).
fn epoch_time(name: &str, trace: &Trace, scale: &Scale, spec: WindowSpec) -> f64 {
    let train = &trace.values()[..split_point(trace)];
    match name {
        "LR" => {
            let mut m = zoo::lr();
            time_once(|| m.fit(train, spec))
        }
        "MLP" => {
            let mut m = zoo::mlp(scale);
            m.fit(train, spec); // initialize nets & scaler
            let data = prepare(train, spec).expect("train data");
            let mut rng = StdRng::seed_from_u64(0);
            let mut opt = Adam::new(1e-3);
            time_once(|| {
                m.train_epoch(&data, &mut rng, &mut opt);
            })
        }
        "LSTM" => {
            let mut m = zoo::lstm(scale);
            m.fit(train, spec);
            let data = prepare(train, spec).expect("train data");
            let mut rng = StdRng::seed_from_u64(0);
            let mut opt = Adam::new(1e-3);
            time_once(|| {
                m.train_epoch(&data, &mut rng, &mut opt);
            })
        }
        "TCN" => {
            let mut m = zoo::tcn(scale);
            m.fit(train, spec);
            let data = prepare(train, spec).expect("train data");
            let mut rng = StdRng::seed_from_u64(0);
            let mut opt = Adam::new(1e-3);
            time_once(|| {
                m.train_epoch(&data, &mut rng, &mut opt);
            })
        }
        "WFGAN" => {
            let mut m = zoo::wfgan(scale);
            m.fit(train, spec);
            let data = prepare(train, spec).expect("train data");
            let mut rng = StdRng::seed_from_u64(0);
            let mut g = Adam::new(1e-3);
            let mut d = Adam::new(1e-3);
            time_once(|| {
                m.train_epoch(&data, &mut rng, &mut g, &mut d);
            })
        }
        other => panic!("unknown model {other}"),
    }
}

/// Mean single-window inference time + storage for a fitted model.
fn inference_and_storage(name: &str, trace: &Trace, scale: &Scale, spec: WindowSpec) -> (f64, usize) {
    let train = &trace.values()[..split_point(trace)];
    let mut model = zoo::standalone(name, scale);
    model.fit(train, spec);
    let window = &train[train.len() - HISTORY..];
    // Warm up, then time a batch of predictions.
    let mut sink = 0.0;
    for _ in 0..10 {
        sink += model.predict(window);
    }
    let reps = 200;
    let t0 = Instant::now();
    for _ in 0..reps {
        sink += model.predict(window);
    }
    let per = t0.elapsed().as_secs_f64() / reps as f64;
    assert!(sink.is_finite());
    (per, model.storage_bytes())
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {}", scale.name);
    let spec = WindowSpec::new(HISTORY, 1);
    let bus = bustracker(&scale);
    let ali = alibaba(&scale);

    let mut table = ResultTable::new(
        format!("Table II: computation and storage efficiency ({} scale)", scale.name),
        &["model", "CPU time/epoch BusTrac", "CPU time/epoch AliClus", "inference", "storage"],
    );
    for name in ["LR", "MLP", "LSTM", "TCN", "WFGAN"] {
        eprintln!("[table2] timing {name}…");
        let t_bus = epoch_time(name, &bus, &scale, spec);
        let t_ali = epoch_time(name, &ali, &scale, spec);
        let (infer, storage) = inference_and_storage(name, &bus, &scale, spec);
        table.add_row(vec![
            name.into(),
            fmt_secs(t_bus),
            fmt_secs(t_ali),
            fmt_secs(infer),
            fmt_bytes(storage),
        ]);
    }
    table.print();
    table.write_csv("table2_efficiency");
    println!(
        "[shape] expected orderings (paper Table II): LR < MLP < LSTM ≤ TCN ≤ WFGAN in \
         train time; TCN largest in storage; inference ≪ training."
    );
}
