//! Ablation A3 — cluster representative: element-wise mean (paper) vs
//! DTW barycenter averaging (extension).
//!
//! The paper trains each cluster's forecaster on "the average workload
//! of traces within each cluster". When DTW clustering has grouped
//! *time-shifted* twins, that mean blurs their shared peaks. This
//! ablation builds such a cluster, compares both representatives by (i)
//! mean DTW distance to the members and (ii) downstream forecast error
//! when the cluster forecast is projected back onto each member.

use dbaugur_bench::datasets::Scale;
use dbaugur_bench::report::ResultTable;
use dbaugur_bench::zoo;
use dbaugur_cluster::{select_top_k, select_top_k_dba, Descender, DescenderParams};
use dbaugur_dtw::{mean_dtw_to, DtwDistance};
use dbaugur_models::eval::rolling_forecast;
use dbaugur_trace::{mse, synth, Trace, WindowSpec};

const HISTORY: usize = 30;
const HORIZON: usize = 6;
const DTW_W: usize = 10;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {}", scale.name);
    // A cluster of time-shifted noisy twins of one bursty workload.
    let days = if scale.name == "quick" { 3 } else { 8 };
    let base = synth::bustracker(31, days);
    let traces: Vec<Trace> = (0..5)
        .map(|k| synth::add_noise(&synth::time_shift(&base, (k as i64 - 2) * 4), 10.0, k as u64))
        .collect();
    let clustering = Descender::new(
        DescenderParams { rho: 6.0, min_size: 3, normalize: true },
        DtwDistance::new(DTW_W),
    )
    .cluster(&traces);
    assert_eq!(clustering.num_clusters, 1, "the twins must form one cluster");

    let mean_rep = select_top_k(&traces, &clustering, 1).remove(0);
    let dba_rep = select_top_k_dba(&traces, &clustering, 1, DTW_W, 4).remove(0);
    let members: Vec<&[f64]> = traces.iter().map(|t| t.values()).collect();

    let mut table = ResultTable::new(
        "Ablation A3: cluster representative — mean vs DTW barycenter",
        &["representative", "mean DTW to members", "projected member MSE (MLP forecaster)"],
    );

    for (name, rep) in [("element-wise mean", &mean_rep), ("DBA barycenter", &dba_rep)] {
        let d = mean_dtw_to(rep.representative.values(), &members, DTW_W);
        // Downstream: fit one forecaster on the representative, project
        // the cluster forecast onto each member, measure MSE against the
        // member's actual values.
        let split = rep.representative.len() * 7 / 10;
        let spec = WindowSpec::new(HISTORY, HORIZON);
        let mut model = zoo::standalone("MLP", &scale);
        let rep_eval = rolling_forecast(&mut model, rep.representative.values(), split, spec)
            .expect("test region");
        let mut member_mses = Vec::new();
        for (mi, member) in rep.members.iter().enumerate() {
            let projected: Vec<f64> =
                rep_eval.predictions.iter().map(|&p| rep.project(mi, p)).collect();
            let actual: Vec<f64> =
                rep_eval.indices.iter().map(|&i| traces[*member].values()[i]).collect();
            member_mses.push(mse(&projected, &actual));
        }
        let avg_mse = member_mses.iter().sum::<f64>() / member_mses.len() as f64;
        table.add_row(vec![name.into(), format!("{d:.2}"), format!("{avg_mse:.1}")]);
    }
    table.print();
    table.write_csv("ablation_dba");
    println!(
        "[shape] expected: DBA sits closer to the members in DTW; downstream forecast \
         error is comparable or better (the mean's blurred peaks under-predict bursts)."
    );
}
