//! `BENCH_9.json` — the DetSim deterministic-simulation gate: a clean
//! swarm of seeded compound-fault schedules (including the guaranteed
//! ENOSPC-during-migration-under-pressure slots) that must pass every
//! invariant on every tick, plus two canary swarms that plant a known
//! bug in the migration protocol and require the harness to catch it,
//! shrink it to a ≤5-event reproducer, and replay that reproducer
//! byte-identically.
//!
//! Usage: `cargo run --release -p dbaugur-bench --bin bench9`
//! Scale: `DBAUGUR_SCALE=quick|standard|full` (CI uses `quick`).
//! Output: `BENCH_9.json` in the working directory, or the path in
//! `DBAUGUR_BENCH_OUT`; shrunk `.plan` reproducers land in
//! `DBAUGUR_SIM_REPRO_DIR` (default `sim-repros/`). Exit status is
//! non-zero when the clean swarm finds a violation, any replay or
//! sibling spot check diverges, or either canary escapes detection.

use dbaugur_bench::datasets::Scale;
use dbaugur_sim::{run_plan_with, run_swarm, CanaryBug, SimOptions, SwarmConfig, SwarmReport};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// One canary swarm's verdict against the self-test gate.
struct CanaryVerdict {
    name: &'static str,
    report: SwarmReport,
    caught: bool,
    /// Every shrunk reproducer stayed within the event budget.
    shrunk_small: bool,
    /// Smallest reproducer's event count (the headline shrink result).
    min_events: usize,
    /// Event-count shrink ratios, `from → to`, one per shrunk failure.
    ratios: Vec<(usize, usize)>,
    /// Each reproducer replays to the same digest twice.
    replay_identical: bool,
    secs: f64,
}

/// The acceptance bar: a planted bug must shrink to this few events.
const SHRINK_EVENT_BUDGET: usize = 5;

fn run_canary(name: &'static str, canary: CanaryBug, schedules: u64, repro_dir: &Path) -> CanaryVerdict {
    let t0 = Instant::now();
    let cfg = SwarmConfig { schedules, canary, max_shrinks: 4, ..SwarmConfig::default() };
    let report = run_swarm(&cfg);
    let opts = SimOptions { canary, stop_at_first_violation: true };
    let mut shrunk_small = true;
    let mut replay_identical = true;
    let mut min_events = usize::MAX;
    let mut ratios = Vec::new();
    for f in &report.failures {
        let Some(s) = &f.shrunk else { continue };
        ratios.push((s.from_events, s.to_events));
        min_events = min_events.min(s.to_events);
        if s.to_events > SHRINK_EVENT_BUDGET {
            shrunk_small = false;
        }
        // The reproducer must hold the determinism contract on its own.
        let a = run_plan_with(&s.plan, &opts);
        let b = run_plan_with(&s.plan, &opts);
        if a.digest != b.digest {
            replay_identical = false;
        }
        let path = repro_dir.join(format!("canary-{name}-{}.plan", f.index));
        if let Err(e) = std::fs::write(&path, s.plan.encode()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
    let caught = report.failed > 0 && ratios.iter().any(|_| true);
    CanaryVerdict {
        name,
        report,
        caught,
        shrunk_small,
        min_events: if min_events == usize::MAX { 0 } else { min_events },
        ratios,
        replay_identical,
        secs: t0.elapsed().as_secs_f64(),
    }
}

fn swarm_json(json: &mut String, key: &str, r: &SwarmReport, secs: f64) {
    let _ = writeln!(json, "  \"{key}\": {{");
    let _ = writeln!(json, "    \"schedules\": {},", r.schedules);
    let _ = writeln!(json, "    \"passed\": {},", r.passed);
    let _ = writeln!(json, "    \"failed\": {},", r.failed);
    let _ = writeln!(json, "    \"faults_injected\": {},", r.faults_injected);
    let _ = writeln!(json, "    \"crashes\": {},", r.crashes);
    let _ = writeln!(json, "    \"acked_observations\": {},", r.acked);
    let _ = writeln!(json, "    \"replay_checked\": {},", r.replay_checked);
    let _ = writeln!(json, "    \"replay_mismatches\": {},", r.replay_mismatches);
    let _ = writeln!(json, "    \"sibling_checked\": {},", r.sibling_checked);
    let _ = writeln!(json, "    \"sibling_mismatches\": {},", r.sibling_mismatches);
    let _ = writeln!(json, "    \"mttr\": {{");
    let _ = writeln!(json, "      \"samples\": {},", r.mttr.samples);
    let _ = writeln!(json, "      \"censored\": {},", r.mttr.censored);
    let _ = writeln!(json, "      \"p50_ticks\": {},", r.mttr.p50_ticks);
    let _ = writeln!(json, "      \"p99_ticks\": {},", r.mttr.p99_ticks);
    let _ = writeln!(json, "      \"max_ticks\": {}", r.mttr.max_ticks);
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"secs\": {secs:.3}");
    let _ = writeln!(json, "  }},");
}

fn main() {
    let scale = Scale::from_env();
    // Clean-swarm breadth scales with the tier; canary swarms stay
    // small because each planted bug only needs to be caught once.
    let (clean_n, canary_n) = match scale.name {
        "quick" => (60u64, 16u64),
        "full" => (500, 32),
        _ => (200, 24),
    };
    let repro_dir = std::env::var("DBAUGUR_SIM_REPRO_DIR").unwrap_or_else(|_| "sim-repros".into());
    let repro_dir = Path::new(&repro_dir);
    if let Err(e) = std::fs::create_dir_all(repro_dir) {
        eprintln!("error: cannot create {}: {e}", repro_dir.display());
        std::process::exit(1);
    }
    eprintln!("bench9: scale={} clean={clean_n} canary={canary_n}x2", scale.name);

    // 1. The clean swarm: the real system under compound fault
    // schedules must hold every invariant on every tick.
    let t0 = Instant::now();
    let clean_cfg = SwarmConfig { schedules: clean_n, ..SwarmConfig::default() };
    let clean = run_swarm(&clean_cfg);
    let clean_secs = t0.elapsed().as_secs_f64();
    for f in &clean.failures {
        eprintln!("clean swarm FAIL schedule {}: {} — {}", f.index, f.check, f.detail);
        if let Some(s) = &f.shrunk {
            let path = repro_dir.join(format!("clean-{}.plan", f.index));
            let _ = std::fs::write(&path, s.plan.encode());
            eprintln!("  reproducer ({} events) written to {}", s.to_events, path.display());
        }
    }
    eprintln!(
        "clean swarm: {}/{} passed in {clean_secs:.1}s (mttr p50 {} p99 {} ticks)",
        clean.passed, clean.schedules, clean.mttr.p50_ticks, clean.mttr.p99_ticks
    );

    // 2. Canary swarms: plant a known migration bug and demand the
    // harness catch it, shrink it small, and replay it exactly.
    let coarse = run_canary("coarse-import", CanaryBug::CoarseImportCheck, canary_n, repro_dir);
    let drain = run_canary("whole-drain", CanaryBug::WholeHistoryDrain, canary_n, repro_dir);
    for v in [&coarse, &drain] {
        eprintln!(
            "canary {}: caught={} failed {}/{} min-repro {} events replay-identical={} ({:.1}s)",
            v.name, v.caught, v.report.failed, v.report.schedules, v.min_events,
            v.replay_identical, v.secs
        );
    }

    let clean_pass = clean.clean();
    let canary_pass = [&coarse, &drain].iter().all(|v| {
        v.caught && v.shrunk_small && v.replay_identical
    });
    let status = if clean_pass && canary_pass { "pass" } else { "fail" };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"detsim\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.name);
    let _ = writeln!(json, "  \"swarm_seed\": {},", clean_cfg.seed);
    swarm_json(&mut json, "clean_swarm", &clean, clean_secs);
    for v in [&coarse, &drain] {
        let key = format!("canary_{}", v.name.replace('-', "_"));
        swarm_json(&mut json, &key, &v.report, v.secs);
        let ratios: Vec<String> = v
            .ratios
            .iter()
            .map(|(from, to)| format!("{{\"from_events\": {from}, \"to_events\": {to}}}"))
            .collect();
        let _ = writeln!(json, "  \"{key}_shrink\": {{");
        let _ = writeln!(json, "    \"caught\": {},", v.caught);
        let _ = writeln!(json, "    \"event_budget\": {SHRINK_EVENT_BUDGET},");
        let _ = writeln!(json, "    \"min_reproducer_events\": {},", v.min_events);
        let _ = writeln!(json, "    \"ratios\": [{}],", ratios.join(", "));
        let _ = writeln!(json, "    \"replay_identical\": {}", v.replay_identical);
        let _ = writeln!(json, "  }},");
    }
    let _ = writeln!(json, "  \"gate\": {{");
    let _ = writeln!(json, "    \"clean_swarm_clean\": {clean_pass},");
    let _ = writeln!(json, "    \"canaries_caught_and_shrunk\": {canary_pass},");
    let _ = writeln!(json, "    \"status\": \"{status}\"");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let out = std::env::var("DBAUGUR_BENCH_OUT").unwrap_or_else(|_| "BENCH_9.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("[json] {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    print!("{json}");

    if !clean_pass {
        eprintln!(
            "FAIL: clean swarm — {} violation(s), {} replay mismatch(es), {} sibling leak(s)",
            clean.failed, clean.replay_mismatches, clean.sibling_mismatches
        );
        std::process::exit(1);
    }
    if !canary_pass {
        eprintln!("FAIL: a planted canary bug escaped detection, shrank poorly, or replayed unstably");
        std::process::exit(1);
    }
}
