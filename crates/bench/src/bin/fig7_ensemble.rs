//! Figure 7 — Ensemble Method Evaluation.
//!
//! Time-sensitive (dynamic, δ = 0.9) versus fixed equal weighting of the
//! same fitted WFGAN + TCN + MLP members on the BusTracker trace, across
//! horizons. Members are fit once per horizon; both weightings combine
//! the identical recorded member predictions, isolating the weighting
//! policy — exactly the comparison the paper's Fig. 7 makes.

use dbaugur_bench::datasets::{bustracker, split_point, Scale};
use dbaugur_bench::report::ResultTable;
use dbaugur_bench::zoo;
use dbaugur_models::eval::rolling_forecast;
use dbaugur_models::{combine_fixed, combine_time_sensitive};
use dbaugur_trace::{mse, WindowSpec};
use std::time::Instant;

const HISTORY: usize = 30;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {}", scale.name);
    let trace = bustracker(&scale);
    let split = split_point(&trace);
    let horizons = scale.horizons_bus.clone();

    let mut dynamic_mse = Vec::new();
    let mut fixed_mse = Vec::new();
    for &h in &horizons {
        let spec = WindowSpec::new(HISTORY, h);
        let t0 = Instant::now();
        let mut member_preds = Vec::new();
        let mut targets = Vec::new();
        for name in ["WFGAN", "TCN", "MLP"] {
            let mut model = zoo::standalone(name, &scale);
            let rep = rolling_forecast(model.as_mut(), trace.values(), split, spec)
                .expect("test region");
            targets = rep.targets.clone();
            member_preds.push(rep.predictions);
        }
        let dynamic = combine_time_sensitive(&member_preds, &targets, 0.9);
        let fixed = combine_fixed(&member_preds);
        dynamic_mse.push(mse(&dynamic, &targets));
        fixed_mse.push(mse(&fixed, &targets));
        eprintln!("[fig7] horizon {h}: {:.1}s", t0.elapsed().as_secs_f64());
    }

    let mut headers: Vec<String> = vec!["weighting".into()];
    headers.extend(horizons.iter().map(|h| format!("H={}min", h * 10)));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(
        format!("Fig. 7: dynamic vs fixed ensemble weights — bustracker ({} scale)", scale.name),
        &headers_ref,
    );
    table.add_numeric_row("dynamic (δ=0.9)", &dynamic_mse, 5);
    table.add_numeric_row("fixed (equal)", &fixed_mse, 5);
    table.print();
    table.write_csv("fig7_ensemble");

    let wins = dynamic_mse.iter().zip(&fixed_mse).filter(|(d, f)| d <= f).count();
    println!(
        "[shape] dynamic ≤ fixed at {wins}/{} horizons \
         (paper: 'the dynamic ensemble method outperforms the fixed method \
         both on short and long term forecasting horizons')",
        horizons.len()
    );
}
