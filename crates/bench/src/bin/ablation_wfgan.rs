//! Ablation A2 — WFGAN supervised-auxiliary weight λ.
//!
//! DESIGN.md documents one deliberate deviation from the paper: the
//! generator loss is `adv + λ·MSE` (λ = 0 recovers the paper's pure
//! adversarial objective of Eqn. 5). This binary sweeps λ on the
//! BusTracker trace so the effect of the stabilization is measured, not
//! assumed, and also reports the adversarial loss trajectory so
//! convergence of the pure-adversarial mode is visible.

use dbaugur_bench::datasets::{bustracker, split_point, Scale};
use dbaugur_bench::report::ResultTable;
use dbaugur_bench::zoo::MODEL_SEED;
use dbaugur_models::eval::rolling_forecast;
use dbaugur_models::{Wfgan, WfganConfig};
use dbaugur_trace::WindowSpec;
use std::time::Instant;

const HISTORY: usize = 30;
const HORIZON: usize = 6;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {}", scale.name);
    let trace = bustracker(&scale);
    let split = split_point(&trace);
    let spec = WindowSpec::new(HISTORY, HORIZON);

    let lambdas = [0.0, 0.2, 0.7, 2.0];
    let mut table = ResultTable::new(
        format!(
            "Ablation A2: WFGAN generator loss = adversarial + λ·MSE, horizon {}min ({} scale)",
            HORIZON * 10,
            scale.name
        ),
        &["λ", "MSE", "MAE", "final D loss", "final G adv loss"],
    );
    for &lambda in &lambdas {
        let t0 = Instant::now();
        let mut gan = Wfgan::with_config(WfganConfig {
            epochs: scale.epochs_wfgan,
            max_examples: scale.max_examples,
            seed: MODEL_SEED.wrapping_add(3),
            supervised_weight: lambda,
            ..WfganConfig::default()
        });
        let rep = rolling_forecast(&mut gan, trace.values(), split, spec).expect("test region");
        let (d_loss, g_loss) = gan.loss_history.last().copied().unwrap_or((f64::NAN, f64::NAN));
        table.add_row(vec![
            format!("{lambda:.1}"),
            format!("{:.4}", rep.mse),
            format!("{:.4}", rep.mae),
            format!("{d_loss:.3}"),
            format!("{g_loss:.3}"),
        ]);
        eprintln!("[ablation_wfgan] λ={lambda}: {:.1}s", t0.elapsed().as_secs_f64());
    }
    table.print();
    table.write_csv("ablation_wfgan_lambda");
    println!(
        "[shape] expected: λ = 0 (pure Eqn. 5) trains but with higher variance; a moderate λ \
         tightens MSE without collapsing the adversarial signal (D loss stays near 2·ln 2 ≈ 1.386 \
         at equilibrium)."
    );
}
