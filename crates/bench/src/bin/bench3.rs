//! `BENCH_3.json` — machine-readable performance trajectory for the
//! bounded-executor PR: DTW distance-matrix clustering across worker
//! counts, full-pipeline training across worker counts, and forecast
//! latency. Future PRs append `BENCH_<n>.json` files so perf changes
//! stay visible.
//!
//! Usage: `cargo run --release -p dbaugur-bench --bin bench3`
//! Scale: `DBAUGUR_SCALE=quick|standard|full` (CI uses `quick`).
//! Output: `BENCH_3.json` in the working directory, or the path in
//! `DBAUGUR_BENCH_OUT`.

use dbaugur::exec::Executor;
use dbaugur::DbAugur;
use dbaugur_bench::datasets::Scale;
use dbaugur_bench::kernels::percentile;
use dbaugur_bench::parallel::{matrix_workload, trained_pipeline, worker_sweep, MATRIX_TRACES};
use dbaugur_bench::report::fmt_secs;
use dbaugur_cluster::{Descender, DescenderParams};
use dbaugur_dtw::DtwDistance;
use dbaugur_trace::Trace;
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// One timed run at a given worker count.
struct Run {
    workers: usize,
    secs: f64,
}

fn time_best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn cluster_matrix(traces: &[Trace], workers: usize, reps: usize) -> f64 {
    let exec = Arc::new(Executor::new(workers));
    time_best_of(reps, || {
        let params = DescenderParams { rho: 6.0, min_size: 3, normalize: true };
        let clustering = Descender::new(params, DtwDistance::new(10))
            .with_executor(Arc::clone(&exec))
            .cluster(black_box(traces));
        black_box(clustering);
    })
}

/// Speedup of the fastest multi-worker run over the sequential run.
fn best_speedup(runs: &[Run]) -> (usize, f64) {
    let seq = runs.iter().find(|r| r.workers == 1).map_or(f64::NAN, |r| r.secs);
    runs.iter()
        .filter(|r| r.workers > 1)
        .map(|r| (r.workers, seq / r.secs))
        .fold((1, 1.0), |acc, cur| if cur.1 > acc.1 { cur } else { acc })
}

fn runs_json(runs: &[Run]) -> String {
    let items: Vec<String> = runs
        .iter()
        .map(|r| format!("{{\"workers\": {}, \"secs\": {:.6}}}", r.workers, r.secs))
        .collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let scale = Scale::from_env();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sweep = worker_sweep();
    let reps = if scale.name == "quick" { 1 } else { 3 };
    eprintln!("bench3: scale={} cores={cores} sweep={sweep:?}", scale.name);

    // 1. DTW distance matrix (Descender clustering, LB-prefiltered).
    let traces = matrix_workload(MATRIX_TRACES);
    let matrix_runs: Vec<Run> = sweep
        .iter()
        .map(|&workers| {
            let secs = cluster_matrix(&traces, workers, reps);
            eprintln!("  dtw_matrix workers={workers}: {}", fmt_secs(secs));
            Run { workers, secs }
        })
        .collect();
    let (mw, ms) = best_speedup(&matrix_runs);

    // 2. Full-pipeline training.
    let train_runs: Vec<Run> = sweep
        .iter()
        .map(|&workers| {
            let secs = time_best_of(1, || {
                black_box(trained_pipeline(workers));
            });
            eprintln!("  pipeline_train workers={workers}: {}", fmt_secs(secs));
            Run { workers, secs }
        })
        .collect();
    let (tw, ts) = best_speedup(&train_runs);

    // 3. Forecast latency on a trained system — per-call samples so
    // the tail (p50/p99) is reported, not just a mean that hides it.
    let sys: DbAugur = trained_pipeline(0);
    let calls = 10_000usize;
    let mut samples = Vec::with_capacity(2 * calls);
    for _ in 0..calls {
        let start = Instant::now();
        black_box(sys.forecast_template(black_box("SELECT a FROM t1 WHERE id = 1")));
        samples.push(start.elapsed().as_secs_f64() * 1e6);
        let start = Instant::now();
        black_box(sys.forecast_trace(black_box("cpu")));
        samples.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let mean_usecs = samples.iter().sum::<f64>() / samples.len() as f64;
    let p50 = percentile(&mut samples, 50.0);
    let p99 = percentile(&mut samples, 99.0);
    eprintln!("  forecast_latency: mean {mean_usecs:.2} p50 {p50:.2} p99 {p99:.2} µs/call");

    // A 1-core host cannot demonstrate (or refute) multi-worker
    // scaling; marking the gate skipped is honest where the historical
    // `best_speedup: 1.0` read as a silent pass.
    let gate = |workers: usize, speedup: f64| {
        if cores < 2 {
            "\"skipped_single_core\"".to_string()
        } else {
            format!("{{\"workers\": {workers}, \"speedup\": {speedup:.3}}}")
        }
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"BENCH_3\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.name);
    let _ = writeln!(json, "  \"available_cores\": {cores},");
    let _ = writeln!(json, "  \"dtw_matrix\": {{");
    let _ = writeln!(json, "    \"traces\": {MATRIX_TRACES},");
    let _ = writeln!(json, "    \"runs\": {},", runs_json(&matrix_runs));
    let _ = writeln!(json, "    \"speedup_gate\": {}", gate(mw, ms));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"pipeline_train\": {{");
    let _ = writeln!(json, "    \"runs\": {},", runs_json(&train_runs));
    let _ = writeln!(json, "    \"speedup_gate\": {}", gate(tw, ts));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"forecast_latency\": {{");
    let _ = writeln!(json, "    \"calls\": {},", 2 * calls);
    let _ = writeln!(json, "    \"mean_usecs\": {mean_usecs:.3},");
    let _ = writeln!(json, "    \"p50_usecs\": {p50:.3},");
    let _ = writeln!(json, "    \"p99_usecs\": {p99:.3}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let out = std::env::var("DBAUGUR_BENCH_OUT").unwrap_or_else(|_| "BENCH_3.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("[json] {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    print!("{json}");
}
