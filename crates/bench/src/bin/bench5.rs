//! `BENCH_5.json` — the closed-loop model lifecycle: retrain latency
//! percentiles, shadow-evaluation throughput, promotion/rejection/
//! rollback counts under repeated injected regime shifts, and the
//! serving governor's drift-shift soak. The burst sweep re-runs the
//! BENCH_4 scenarios verbatim so the two reports are directly
//! comparable — lifecycle support must not move the serving-path
//! latency envelope.
//!
//! Usage: `cargo run --release -p dbaugur-bench --bin bench5`
//! Scale: `DBAUGUR_SCALE=quick|standard|full` (CI uses `quick`).
//! Output: `BENCH_5.json` in the working directory, or the path in
//! `DBAUGUR_BENCH_OUT`.

use dbaugur::{DbAugur, DbAugurConfig};
use dbaugur_bench::datasets::Scale;
use dbaugur_exec::Deadline;
use dbaugur_lifecycle::{LifecycleConfig, LifecycleManager};
use dbaugur_models::{rolling_origin_splits, shadow_backtest};
use dbaugur_serve::{run_soak, SoakConfig, SoakReport};
use dbaugur_trace::WindowSpec;
use std::fmt::Write as _;
use std::time::Instant;

/// One overload scenario's measurements, ready for JSON.
struct Row {
    burst_mult: usize,
    report: SoakReport,
    wall_secs: f64,
}

/// Identical to bench4's scenario builder so forecast percentiles are
/// comparable run-to-run.
fn scenario(ticks: usize, burst_mult: usize) -> SoakConfig {
    SoakConfig {
        ticks,
        burst_mult,
        burst_every: if burst_mult <= 1 { 0 } else { 40 },
        ..SoakConfig::default()
    }
}

fn row_json(r: &Row) -> String {
    let s = &r.report.stats;
    let shed_rate = if s.offered_ingest + s.offered_forecasts > 0 {
        s.shed_total() as f64 / (s.offered_ingest + s.offered_forecasts) as f64
    } else {
        0.0
    };
    let mut j = String::new();
    let _ = writeln!(j, "    {{");
    let _ = writeln!(j, "      \"burst_mult\": {},", r.burst_mult);
    let _ = writeln!(j, "      \"completed_fresh\": {},", s.completed_fresh);
    let _ = writeln!(j, "      \"completed_degraded\": {},", s.completed_degraded);
    let _ = writeln!(j, "      \"shed_rate\": {shed_rate:.4},");
    let _ = writeln!(j, "      \"forecast_p50_ms\": {:.3},", r.report.latency_p50_ms);
    let _ = writeln!(j, "      \"forecast_p99_ms\": {:.3},", r.report.latency_p99_ms);
    let _ = writeln!(j, "      \"memory_high_water_bytes\": {},", r.report.memory_high_water);
    let _ = writeln!(j, "      \"recovered\": {},", r.report.recovered());
    let _ = writeln!(j, "      \"wall_secs\": {:.6}", r.wall_secs);
    let _ = write!(j, "    }}");
    j
}

/// The small-but-learnable pipeline the lifecycle scenario drives: one
/// square-wave template, enough training budget that a fresh challenger
/// can actually learn a shifted regime.
fn lifecycle_cfg() -> DbAugurConfig {
    let mut cfg = DbAugurConfig {
        interval_secs: 60,
        history: 8,
        horizon: 1,
        top_k: 3,
        ..DbAugurConfig::default()
    };
    cfg.clustering.min_size = 1;
    cfg.fast();
    cfg.epochs = 12;
    cfg.max_examples = 256;
    cfg
}

fn trained_system() -> DbAugur {
    let mut sys = DbAugur::new(lifecycle_cfg());
    for minute in 0..120u64 {
        let n = 2 + 5 * u64::from(minute % 10 < 5);
        for q in 0..n {
            sys.ingest_record(minute * 60 + q, "SELECT * FROM t WHERE a = 1");
        }
    }
    sys.train(0, 120 * 60).expect("trains");
    sys
}

/// Drive cluster 0 into quarantine on a fresh regime (alternating by
/// cycle so the reigning champion — which learned the previous regime —
/// is always wrong about the next one).
fn inject_shift(sys: &DbAugur, cycle: usize) {
    let history = sys.config().history;
    let c = &sys.clusters()[0];
    let warm = sys.config().drift.warmup + sys.config().drift.window;
    for _ in 0..warm {
        let f = c.forecast(history);
        c.observe(history, f);
    }
    let (base, amp) = if cycle % 2 == 0 { (50.0, 15.0) } else { (120.0, 25.0) };
    for k in 0..320 {
        c.observe(history, base + amp * f64::from(k % 10 < 5));
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

fn main() {
    let scale = Scale::from_env();
    let (ticks, cycles, shadow_reps) = match scale.name {
        "quick" => (200, 3, 50),
        "full" => (2000, 10, 500),
        _ => (400, 6, 200),
    };
    eprintln!("bench5: scale={} ticks={ticks} cycles={cycles}", scale.name);

    // Part 1: the BENCH_4 burst sweep, verbatim, for p99 comparability.
    let sweep = [1usize, 5, 10, 20];
    let rows: Vec<Row> = sweep
        .iter()
        .map(|&burst_mult| {
            let cfg = scenario(ticks, burst_mult);
            let start = Instant::now();
            let report = run_soak(&cfg);
            let wall_secs = start.elapsed().as_secs_f64();
            eprintln!(
                "  burst x{burst_mult}: p99 {:.1} ms, {} fresh, {:.1} ms wall",
                report.latency_p99_ms,
                report.stats.completed_fresh,
                wall_secs * 1e3
            );
            Row { burst_mult, report, wall_secs }
        })
        .collect();

    // Part 2: repeated regime shifts through the lifecycle loop —
    // retrain latency and promotion outcomes.
    let mut sys = trained_system();
    let mut mgr = LifecycleManager::new(LifecycleConfig {
        min_improvement: 0.01,
        min_eval_windows: 2,
        shadow_folds: 6,
        cooldown_ticks: 1,
        ..LifecycleConfig::default()
    });
    let mut retrain_ms: Vec<f64> = Vec::new();
    for cycle in 0..cycles {
        inject_shift(&sys, cycle);
        let start = Instant::now();
        let rep = mgr.tick(&mut sys, &Deadline::none());
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if rep.attempted > 0 {
            retrain_ms.push(ms / rep.attempted as f64);
        }
        eprintln!(
            "  cycle {cycle}: {} retrained in {ms:.0} ms → {} promoted, {} rejected",
            rep.attempted,
            rep.promoted.len(),
            rep.rejected.len()
        );
        // Burn the cooldown so the next cycle is eligible again.
        mgr.tick(&mut sys, &Deadline::none());
    }
    // A strict gate rejects even a good challenger: exercise the
    // rejection path explicitly.
    let mut strict = LifecycleManager::new(LifecycleConfig {
        min_improvement: 0.99,
        min_eval_windows: 2,
        shadow_folds: 6,
        cooldown_ticks: 1,
        ..LifecycleConfig::default()
    });
    inject_shift(&sys, cycles);
    strict.tick(&mut sys, &Deadline::none());
    // And one operator rollback, if the registry has a predecessor.
    let rollback_ok = mgr.rollback(&mut sys, 0).is_ok();

    retrain_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let lstats = mgr.stats();
    let sstats = strict.stats();

    // Part 3: shadow-evaluation throughput (predict-only backtests of
    // the reigning champion over rolling origins).
    let series = sys.cluster_series(0).expect("trained cluster");
    let spec = WindowSpec::new(sys.config().history, sys.config().horizon);
    let splits = rolling_origin_splits(series.len(), 32, spec.horizon);
    let start = Instant::now();
    let mut windows = 0u64;
    for _ in 0..shadow_reps {
        let score = shadow_backtest(
            |w| sys.clusters()[0].predict_window(w),
            &series,
            &splits,
            spec,
        );
        windows += score.map_or(0, |s| s.windows as u64);
    }
    let shadow_secs = start.elapsed().as_secs_f64();
    let shadow_windows_per_sec =
        if shadow_secs > 0.0 { windows as f64 / shadow_secs } else { 0.0 };

    // Part 4: the serving governor under a mid-run regime shift.
    let shift_cfg = SoakConfig {
        ticks,
        drift_shift_at_frac: 0.5,
        drift_shift_mult: 2,
        ..SoakConfig::default()
    };
    let shift = run_soak(&shift_cfg);
    eprintln!(
        "  drift-shift soak: shift at tick {:?}, recovery in {:?} ticks, shed {:.4} → {:.4}",
        shift.shift_tick,
        shift.post_shift_recovery_ticks,
        shift.pre_shift_shed_rate,
        shift.post_shift_shed_rate
    );

    let base = &rows[0].report;
    let flood = &rows.iter().find(|r| r.burst_mult == 10).expect("10x row").report;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"BENCH_5\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.name);
    let _ = writeln!(json, "  \"ticks\": {ticks},");
    let _ = writeln!(json, "  \"seed\": {},", SoakConfig::default().seed);
    let _ = writeln!(json, "  \"scenarios\": [");
    let _ = writeln!(json, "{}", rows.iter().map(row_json).collect::<Vec<_>>().join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"lifecycle\": {{");
    let _ = writeln!(json, "    \"retrain_cycles\": {},", cycles);
    let _ = writeln!(json, "    \"retrain_p50_ms\": {:.3},", percentile(&retrain_ms, 0.5));
    let _ = writeln!(json, "    \"retrain_p99_ms\": {:.3},", percentile(&retrain_ms, 0.99));
    let _ = writeln!(json, "    \"shadow_windows_per_sec\": {shadow_windows_per_sec:.1},");
    let _ = writeln!(json, "    \"promotions\": {},", lstats.promotions);
    let _ = writeln!(json, "    \"rejections\": {},", lstats.rejections + sstats.rejections);
    let _ = writeln!(json, "    \"rollbacks\": {},", lstats.rollbacks);
    let _ = writeln!(json, "    \"rollback_ok\": {rollback_ok},");
    let _ = writeln!(json, "    \"expired\": {},", lstats.expired + sstats.expired);
    let _ = writeln!(json, "    \"failed\": {}", lstats.failed + sstats.failed);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"drift_shift_soak\": {{");
    let _ = writeln!(
        json,
        "    \"shift_tick\": {},",
        shift.shift_tick.map_or("null".into(), |t| t.to_string())
    );
    let _ = writeln!(
        json,
        "    \"recovery_ticks\": {},",
        shift.post_shift_recovery_ticks.map_or("null".into(), |t| t.to_string())
    );
    let _ = writeln!(json, "    \"pre_shift_shed_rate\": {:.4},", shift.pre_shift_shed_rate);
    let _ = writeln!(json, "    \"post_shift_shed_rate\": {:.4},", shift.post_shift_shed_rate);
    let _ = writeln!(json, "    \"forecast_p99_ms\": {:.3},", shift.latency_p99_ms);
    let _ = writeln!(json, "    \"reconciled\": {}", shift.reconciled);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"summary\": {{");
    let _ = writeln!(json, "    \"baseline_p99_ms\": {:.3},", base.latency_p99_ms);
    let _ = writeln!(json, "    \"flood_p99_ms\": {:.3},", flood.latency_p99_ms);
    let _ = writeln!(json, "    \"promotion_loop_closed\": {}", lstats.promotions > 0);
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let out = std::env::var("DBAUGUR_BENCH_OUT").unwrap_or_else(|_| "BENCH_5.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("[json] {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    print!("{json}");
}
