//! Figure 6 — Forecasting Horizon Evaluation.
//!
//! Predicted-vs-actual BusTracker series under three horizons:
//! (a) 60 minutes, (b) 12 hours, (c) 1 day, at the 10-minute interval.
//! DBAugur (time-sensitive WFGAN + TCN + MLP) produces the prediction
//! series; the binary prints per-horizon MSE/MAE and writes the full
//! series to CSV so the figure can be re-plotted.

use dbaugur_bench::datasets::{bustracker, split_point, Scale};
use dbaugur_bench::report::ResultTable;
use dbaugur_bench::zoo;
use dbaugur_models::eval::rolling_forecast;
use dbaugur_models::{combine_time_sensitive, Forecaster};
use dbaugur_trace::{mae, mse, WindowSpec};
use std::time::Instant;

const HISTORY: usize = 30;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {}", scale.name);
    let trace = bustracker(&scale);
    let split = split_point(&trace);
    // (label, horizon in 10-minute intervals); quick scale shrinks the
    // long horizons so they still fit the tiny dataset.
    let horizons: Vec<(&str, usize)> = if scale.name == "quick" {
        vec![("60min", 6), ("4h", 24), ("8h", 48)]
    } else {
        vec![("60min", 6), ("12h", 72), ("1day", 144)]
    };

    let mut summary = ResultTable::new(
        format!("Fig. 6: DBAugur under growing horizons — bustracker ({} scale)", scale.name),
        &["panel", "horizon", "MSE", "MAE", "test points"],
    );

    for (i, &(label, h)) in horizons.iter().enumerate() {
        let spec = WindowSpec::new(HISTORY, h);
        let t0 = Instant::now();
        let mut member_preds = Vec::new();
        let mut targets = Vec::new();
        let mut indices = Vec::new();
        for name in ["WFGAN", "TCN", "MLP"] {
            let mut model = zoo::standalone(name, &scale);
            let rep = rolling_forecast(model.as_mut(), trace.values(), split, spec)
                .expect("test region");
            targets = rep.targets.clone();
            indices = rep.indices.clone();
            member_preds.push(rep.predictions);
        }
        let preds = combine_time_sensitive(&member_preds, &targets, 0.9);
        let panel = ["(a)", "(b)", "(c)"][i.min(2)];
        summary.add_row(vec![
            panel.into(),
            label.into(),
            format!("{:.4}", mse(&preds, &targets)),
            format!("{:.4}", mae(&preds, &targets)),
            format!("{}", targets.len()),
        ]);
        eprintln!("[fig6] {label}: done in {:.1}s", t0.elapsed().as_secs_f64());

        let mut series = ResultTable::new(
            format!("Fig. 6{panel}: series at horizon {label}"),
            &["index", "actual", "predicted"],
        );
        for ((idx, a), p) in indices.iter().zip(&targets).zip(&preds) {
            series.add_row(vec![idx.to_string(), format!("{a:.3}"), format!("{p:.3}")]);
        }
        series.write_csv(&format!("fig6_{label}"));
    }
    summary.print();
    summary.write_csv("fig6_summary");
    println!(
        "[shape] expected: accuracy deteriorates as the horizon grows \
         (paper: 'increasing the forecasting horizon will decrease the accuracy')."
    );

    // Sanity replication of the paper's qualitative claim: the naive
    // random-walk baseline is shown for context at the longest horizon.
    let (_, h) = horizons[horizons.len() - 1];
    let spec = WindowSpec::new(HISTORY, h);
    let mut naive = dbaugur_models::forecaster::Naive;
    let rep = rolling_forecast(&mut naive, trace.values(), split, spec).expect("test region");
    println!("[context] naive last-value MSE at longest horizon: {:.4}", rep.mse);
    let _ = naive.predict(&trace.values()[..HISTORY]);
}
