//! `BENCH_4.json` — the serving layer under overload: admitted/shed
//! rates, forecast latency percentiles, memory high water, and health
//! posture across a sweep of burst intensities. The soak runs in
//! virtual time, so every scenario is deterministic from its seed and
//! finishes in milliseconds of wall clock regardless of scale.
//!
//! Usage: `cargo run --release -p dbaugur-bench --bin bench4`
//! Scale: `DBAUGUR_SCALE=quick|standard|full` (CI uses `quick`).
//! Output: `BENCH_4.json` in the working directory, or the path in
//! `DBAUGUR_BENCH_OUT`.

use dbaugur_bench::datasets::Scale;
use dbaugur_serve::{run_soak, SoakConfig, SoakReport};
use std::fmt::Write as _;
use std::time::Instant;

/// One overload scenario's measurements, ready for JSON.
struct Row {
    burst_mult: usize,
    report: SoakReport,
    wall_secs: f64,
}

fn scenario(ticks: usize, burst_mult: usize) -> SoakConfig {
    SoakConfig {
        ticks,
        burst_mult,
        // burst_mult 1 means "no flood": disable bursts entirely so the
        // baseline row measures the uncontended serving path.
        burst_every: if burst_mult <= 1 { 0 } else { 40 },
        ..SoakConfig::default()
    }
}

fn row_json(r: &Row) -> String {
    let s = &r.report.stats;
    let admit_rate = if s.offered_forecasts > 0 {
        s.admitted_forecasts as f64 / s.offered_forecasts as f64
    } else {
        1.0
    };
    let shed_rate = if s.offered_ingest + s.offered_forecasts > 0 {
        s.shed_total() as f64 / (s.offered_ingest + s.offered_forecasts) as f64
    } else {
        0.0
    };
    let mut j = String::new();
    let _ = writeln!(j, "    {{");
    let _ = writeln!(j, "      \"burst_mult\": {},", r.burst_mult);
    let _ = writeln!(j, "      \"offered_forecasts\": {},", s.offered_forecasts);
    let _ = writeln!(j, "      \"admitted_forecasts\": {},", s.admitted_forecasts);
    let _ = writeln!(j, "      \"completed_fresh\": {},", s.completed_fresh);
    let _ = writeln!(j, "      \"completed_degraded\": {},", s.completed_degraded);
    let _ = writeln!(j, "      \"offered_ingest\": {},", s.offered_ingest);
    let _ = writeln!(j, "      \"admitted_ingest\": {},", s.admitted_ingest);
    let _ = writeln!(j, "      \"shed_total\": {},", s.shed_total());
    let _ = writeln!(j, "      \"forecast_admit_rate\": {admit_rate:.4},");
    let _ = writeln!(j, "      \"shed_rate\": {shed_rate:.4},");
    let _ = writeln!(j, "      \"forecast_p50_ms\": {:.3},", r.report.latency_p50_ms);
    let _ = writeln!(j, "      \"forecast_p99_ms\": {:.3},", r.report.latency_p99_ms);
    let _ = writeln!(j, "      \"memory_high_water_bytes\": {},", r.report.memory_high_water);
    let _ = writeln!(j, "      \"eviction_passes\": {},", s.eviction_passes);
    let _ = writeln!(j, "      \"eviction_bytes\": {},", s.eviction_bytes);
    let _ = writeln!(
        j,
        "      \"health_ticks\": {{\"healthy\": {}, \"shedding\": {}, \"saturated\": {}}},",
        r.report.health_ticks.0, r.report.health_ticks.1, r.report.health_ticks.2
    );
    let _ = writeln!(j, "      \"recovered\": {},", r.report.recovered());
    let _ = writeln!(j, "      \"virtual_ms\": {},", r.report.virtual_ms);
    let _ = writeln!(j, "      \"wall_secs\": {:.6}", r.wall_secs);
    let _ = write!(j, "    }}");
    j
}

fn main() {
    let scale = Scale::from_env();
    let ticks = match scale.name {
        "quick" => 200,
        "full" => 2000,
        _ => 400,
    };
    eprintln!("bench4: scale={} ticks={ticks}", scale.name);

    let sweep = [1usize, 5, 10, 20];
    let rows: Vec<Row> = sweep
        .iter()
        .map(|&burst_mult| {
            let cfg = scenario(ticks, burst_mult);
            let start = Instant::now();
            let report = run_soak(&cfg);
            let wall_secs = start.elapsed().as_secs_f64();
            eprintln!(
                "  burst x{burst_mult}: shed {} / {} offered, p99 {:.1} ms, high water {} B, {:.1} ms wall",
                report.stats.shed_total(),
                report.stats.offered_forecasts + report.stats.offered_ingest,
                report.latency_p99_ms,
                report.memory_high_water,
                wall_secs * 1e3
            );
            Row { burst_mult, report, wall_secs }
        })
        .collect();

    let base = &rows[0].report;
    let flood = &rows.iter().find(|r| r.burst_mult == 10).expect("10x row").report;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"BENCH_4\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.name);
    let _ = writeln!(json, "  \"ticks\": {ticks},");
    let _ = writeln!(json, "  \"seed\": {},", SoakConfig::default().seed);
    let _ = writeln!(json, "  \"scenarios\": [");
    let _ = writeln!(
        json,
        "{}",
        rows.iter().map(row_json).collect::<Vec<_>>().join(",\n")
    );
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"summary\": {{");
    let _ = writeln!(
        json,
        "    \"baseline_p99_ms\": {:.3},",
        base.latency_p99_ms
    );
    let _ = writeln!(json, "    \"flood_p99_ms\": {:.3},", flood.latency_p99_ms);
    let _ = writeln!(
        json,
        "    \"flood_memory_bounded\": {},",
        flood.memory_high_water_within(&scenario(ticks, 10))
    );
    let _ = writeln!(json, "    \"flood_recovered\": {}", flood.recovered());
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let out = std::env::var("DBAUGUR_BENCH_OUT").unwrap_or_else(|_| "BENCH_4.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("[json] {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    print!("{json}");
}
