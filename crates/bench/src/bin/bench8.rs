//! `BENCH_8.json` — performance trajectory for the fast-kernel PR:
//! blocked matmul and banded DTW microbenchmarks against the naive
//! reference kernels (GFLOP/s, cells/sec), batched vs looped forecast
//! inference, the bench3 worker sweep rerun, and forecast latency with
//! p50/p99 — plus a regression gate that fails the process on a
//! reference mismatch or a lost speedup.
//!
//! Usage: `cargo run --release -p dbaugur-bench --bin bench8`
//! Scale: `DBAUGUR_SCALE=quick|standard|full` (CI uses `quick`).
//! Output: `BENCH_8.json` in the working directory, or the path in
//! `DBAUGUR_BENCH_OUT`. Exit status is non-zero when any kernel output
//! diverges from its reference or the speedup gate is breached.

use dbaugur::exec::Executor;
use dbaugur::DbAugur;
use dbaugur_bench::datasets::Scale;
use dbaugur_bench::kernels::{
    dtw_band_cells, dtw_case, matmul_case, matmul_gflops, percentile, seeded_mat, time_best_of,
};
use dbaugur_bench::parallel::{matrix_workload, trained_pipeline, worker_sweep, MATRIX_TRACES};
use dbaugur_bench::report::fmt_secs;
use dbaugur_cluster::{Descender, DescenderParams};
use dbaugur_dtw::DtwDistance;
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

struct KernelRow {
    name: &'static str,
    naive_secs: f64,
    fast_secs: f64,
    naive_rate: f64,
    fast_rate: f64,
    rate_unit: &'static str,
    matches: bool,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.naive_secs / self.fast_secs
    }
}

fn main() {
    let scale = Scale::from_env();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Single-thread kernel speedup the gate demands: the acceptance bar
    // is 2× at bench scale; the quick CI scale keeps a looser bar so
    // noisy shared runners don't flake.
    let (dim, reps, gate_min) = match scale.name {
        "quick" => (128usize, 3usize, 1.3f64),
        "full" => (384, 5, 2.0),
        _ => (256, 5, 2.0),
    };
    let (dtw_len, dtw_pairs) = match scale.name {
        "quick" => (256usize, 32usize),
        "full" => (1024, 64),
        _ => (512, 48),
    };
    // Production clustering runs `DtwDistance::new(10)`; the microbench
    // uses the same band so its speedup reflects the deployed workload.
    let dtw_window = 10usize;
    eprintln!("bench8: scale={} cores={cores} matmul={dim}³ dtw={dtw_len}x{dtw_pairs}", scale.name);

    // 1. Matmul kernels: blocked vs naive reference, single thread.
    let a = seeded_mat(dim, dim, 11);
    let b = seeded_mat(dim, dim, 23);
    let mut rows: Vec<KernelRow> = Vec::new();
    for (which, name) in [(0usize, "matmul"), (1, "t_matmul"), (2, "matmul_t")] {
        let (naive_secs, fast_secs, matches) = matmul_case(&a, &b, which, reps);
        rows.push(KernelRow {
            name,
            naive_secs,
            fast_secs,
            naive_rate: matmul_gflops(dim, dim, dim, naive_secs),
            fast_rate: matmul_gflops(dim, dim, dim, fast_secs),
            rate_unit: "gflops",
            matches,
        });
        let r = rows.last().unwrap();
        eprintln!(
            "  {name}: naive {} ({:.2} GF/s) blocked {} ({:.2} GF/s) x{:.2} match={}",
            fmt_secs(naive_secs),
            r.naive_rate,
            fmt_secs(fast_secs),
            r.fast_rate,
            r.speedup(),
            matches
        );
    }

    // 2. Banded DTW kernel vs the pre-optimization reference.
    let (ref_secs, banded_secs, dtw_matches) = dtw_case(dtw_len, dtw_pairs, dtw_window, reps);
    let cells = (dtw_band_cells(dtw_len, dtw_len, dtw_window) * dtw_pairs) as f64;
    rows.push(KernelRow {
        name: "dtw_banded",
        naive_secs: ref_secs,
        fast_secs: banded_secs,
        naive_rate: cells / ref_secs / 1e6,
        fast_rate: cells / banded_secs / 1e6,
        rate_unit: "mcells_per_sec",
        matches: dtw_matches,
    });
    {
        let r = rows.last().unwrap();
        eprintln!(
            "  dtw: reference {} ({:.1} Mc/s) banded {} ({:.1} Mc/s) x{:.2} match={}",
            fmt_secs(ref_secs),
            r.naive_rate,
            fmt_secs(banded_secs),
            r.fast_rate,
            r.speedup(),
            dtw_matches
        );
    }

    // 3. Batched vs looped forecast inference on a trained pipeline.
    let sys: DbAugur = trained_pipeline(0);
    let sqls: Vec<&str> = vec![
        "SELECT a FROM t1 WHERE id = 7",
        "SELECT b FROM t2 WHERE id = 9",
        "UPDATE t3 SET x = 2 WHERE id = 4",
        "SELECT a FROM t1 WHERE id = 8",
        "SELECT b FROM t2 WHERE id = 1",
    ];
    let batch_reps = 2000usize;
    let looped: Vec<Option<f64>> = sqls.iter().map(|s| sys.forecast_template(s)).collect();
    let batched = sys.forecast_template_batch(&sqls);
    let batch_matches = looped
        .iter()
        .zip(&batched)
        .all(|(l, b)| l.map(f64::to_bits) == b.map(f64::to_bits));
    let looped_secs = time_best_of(3, || {
        for _ in 0..batch_reps {
            for s in &sqls {
                black_box(sys.forecast_template(black_box(s)));
            }
        }
    });
    let batched_secs = time_best_of(3, || {
        for _ in 0..batch_reps {
            black_box(sys.forecast_template_batch(black_box(&sqls)));
        }
    });
    let looped_usecs = looped_secs * 1e6 / batch_reps as f64;
    let batched_usecs = batched_secs * 1e6 / batch_reps as f64;
    eprintln!(
        "  batched_forecast: looped {looped_usecs:.2} µs/batch batched {batched_usecs:.2} µs/batch x{:.2} match={batch_matches}",
        looped_usecs / batched_usecs
    );

    // 4. Worker sweep rerun (bench3's DTW matrix) with the chunked
    // row-block granularity underneath.
    let traces = matrix_workload(MATRIX_TRACES);
    let sweep = worker_sweep();
    let matrix_runs: Vec<(usize, f64)> = sweep
        .iter()
        .map(|&workers| {
            let exec = Arc::new(Executor::new(workers));
            let secs = time_best_of(if scale.name == "quick" { 1 } else { 3 }, || {
                let params = DescenderParams { rho: 6.0, min_size: 3, normalize: true };
                let clustering = Descender::new(params, DtwDistance::new(10))
                    .with_executor(Arc::clone(&exec))
                    .cluster(black_box(&traces));
                black_box(clustering);
            });
            eprintln!("  dtw_matrix workers={workers}: {}", fmt_secs(secs));
            (workers, secs)
        })
        .collect();
    let seq_secs = matrix_runs.iter().find(|r| r.0 == 1).map_or(f64::NAN, |r| r.1);
    let best_multi = matrix_runs
        .iter()
        .filter(|r| r.0 > 1)
        .map(|r| (r.0, seq_secs / r.1))
        .fold((1usize, f64::NAN), |acc, cur| if acc.1.is_nan() || cur.1 > acc.1 { cur } else { acc });

    // 5. Forecast latency distribution (p50/p99, not just the mean).
    let calls = 10_000usize;
    let mut samples = Vec::with_capacity(calls);
    for _ in 0..calls {
        let start = Instant::now();
        black_box(sys.forecast_template(black_box("SELECT a FROM t1 WHERE id = 1")));
        samples.push(start.elapsed().as_secs_f64() * 1e6);
    }
    let mean_usecs = samples.iter().sum::<f64>() / samples.len() as f64;
    let p50 = percentile(&mut samples, 50.0);
    let p99 = percentile(&mut samples, 99.0);
    eprintln!("  forecast_latency: mean {mean_usecs:.2} p50 {p50:.2} p99 {p99:.2} µs");

    // Gates.
    let all_match = rows.iter().all(|r| r.matches) && batch_matches;
    let best_kernel = rows
        .iter()
        .map(|r| (r.name, r.speedup()))
        .fold(("none", 0.0f64), |acc, cur| if cur.1 > acc.1 { cur } else { acc });
    let kernel_gate_pass = best_kernel.1 >= gate_min;
    let multi_gate = if cores < 2 {
        // No second core: report the honest skip marker instead of a
        // fake 1.0 "pass" (the BENCH_3 trap this PR retires).
        "\"skipped_single_core\"".to_string()
    } else {
        format!(
            "{{\"best_workers\": {}, \"best_speedup\": {:.3}, \"status\": \"{}\"}}",
            best_multi.0,
            best_multi.1,
            if best_multi.1 > 1.0 { "pass" } else { "fail" }
        )
    };
    // NaN (no multi-worker run) must also count as a failure, hence
    // the explicit non-NaN pass condition rather than `> 1.0` alone.
    let multi_pass = best_multi.1 > 1.0;
    let multi_gate_fail = cores >= 2 && !multi_pass;

    let kernel_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"kernel\": \"{}\", \"naive_secs\": {:.6}, \"fast_secs\": {:.6}, \"naive_{u}\": {:.3}, \"fast_{u}\": {:.3}, \"speedup\": {:.3}, \"bitwise_match\": {}}}",
                r.name,
                r.naive_secs,
                r.fast_secs,
                r.naive_rate,
                r.fast_rate,
                r.speedup(),
                r.matches,
                u = r.rate_unit,
            )
        })
        .collect();
    let matrix_json: Vec<String> = matrix_runs
        .iter()
        .map(|(w, s)| format!("{{\"workers\": {w}, \"secs\": {s:.6}}}"))
        .collect();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"BENCH_8\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.name);
    let _ = writeln!(json, "  \"available_cores\": {cores},");
    let _ = writeln!(json, "  \"kernels\": [");
    let _ = writeln!(json, "{}", kernel_rows.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"matmul_dim\": {dim},");
    let _ = writeln!(json, "  \"dtw\": {{\"len\": {dtw_len}, \"pairs\": {dtw_pairs}, \"window\": {dtw_window}}},");
    let _ = writeln!(json, "  \"batched_forecast\": {{");
    let _ = writeln!(json, "    \"statements\": {},", sqls.len());
    let _ = writeln!(json, "    \"looped_usecs_per_batch\": {looped_usecs:.3},");
    let _ = writeln!(json, "    \"batched_usecs_per_batch\": {batched_usecs:.3},");
    let _ = writeln!(json, "    \"speedup\": {:.3},", looped_usecs / batched_usecs);
    let _ = writeln!(json, "    \"values_match\": {batch_matches}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"dtw_matrix\": {{");
    let _ = writeln!(json, "    \"traces\": {MATRIX_TRACES},");
    let _ = writeln!(json, "    \"runs\": [{}],", matrix_json.join(", "));
    let _ = writeln!(json, "    \"speedup_gate\": {multi_gate}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"forecast_latency\": {{");
    let _ = writeln!(json, "    \"calls\": {calls},");
    let _ = writeln!(json, "    \"mean_usecs\": {mean_usecs:.3},");
    let _ = writeln!(json, "    \"p50_usecs\": {p50:.3},");
    let _ = writeln!(json, "    \"p99_usecs\": {p99:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"regression_gate\": {{");
    let _ = writeln!(json, "    \"min_kernel_speedup\": {gate_min},");
    let _ = writeln!(
        json,
        "    \"best_kernel\": {{\"kernel\": \"{}\", \"speedup\": {:.3}}},",
        best_kernel.0, best_kernel.1
    );
    let _ = writeln!(json, "    \"all_bitwise_match\": {all_match},");
    let _ = writeln!(
        json,
        "    \"status\": \"{}\"",
        if all_match && kernel_gate_pass && !multi_gate_fail { "pass" } else { "fail" }
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let out = std::env::var("DBAUGUR_BENCH_OUT").unwrap_or_else(|_| "BENCH_8.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("[json] {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    print!("{json}");

    if !all_match {
        eprintln!("FAIL: a kernel output diverged from its f64 reference");
        std::process::exit(1);
    }
    if !kernel_gate_pass {
        eprintln!(
            "FAIL: best kernel speedup {:.3} below the {gate_min} regression gate",
            best_kernel.1
        );
        std::process::exit(1);
    }
    if multi_gate_fail {
        eprintln!("FAIL: multi-worker speedup {:.3} not above 1.0 on a {cores}-core host", best_multi.1);
        std::process::exit(1);
    }
}
