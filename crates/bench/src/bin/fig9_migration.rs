//! Figure 9 — Case study: data region migration.
//!
//! A horizontally partitioned cluster (4 servers × 8 regions) rebalances
//! hourly. Per-region loads follow (a) a periodic workload and (b) a
//! complex workload (trend + seasonality + weekday + holiday + noise),
//! with region phases spread across the day so the hot set rotates.
//!
//! * **Static** — one global migration plan computed from the historical
//!   (training-window) average region loads, then frozen — "input the
//!   historical workload data into the load balancing algorithm to infer
//!   a global migration strategy";
//! * **Auto (QB5000 / DBAugur)** — migrations planned from the
//!   forecasted loads of the *coming* hour (causal one-hour-ahead
//!   forecasts from rolling evaluation).
//!
//! Reported: the load-balancing difference (coefficient of variation of
//! server loads) per hour under each strategy, and its mean.

use dbaugur_bench::datasets::Scale;
use dbaugur_bench::report::ResultTable;
use dbaugur_bench::zoo;
use dbaugur_dbsim::{balance_metric, Cluster, MigrationPlanner};
use dbaugur_models::eval::rolling_forecast;
use dbaugur_models::{combine_fixed, combine_time_sensitive};
use dbaugur_trace::synth::{self, SAMPLES_PER_DAY};
use dbaugur_trace::{Trace, WindowSpec};
use std::time::Instant;

const HISTORY: usize = 30;
const FORECAST_H: usize = 6; // one hour at the 10-minute interval
const SERVERS: usize = 4;
const REGIONS: usize = 8;
const REBALANCE_EVERY: usize = 6; // hourly

/// Region load traces with uneven phases and amplitudes, so the hot set
/// rotates irregularly and no fixed assignment can stay balanced.
fn region_traces(kind: &str, days: usize) -> Vec<Trace> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    (0..REGIONS)
        .map(|r| {
            let base_level = 200.0 + 60.0 * (r % 3) as f64;
            let amplitude = 150.0 + 35.0 * (r % 4) as f64;
            let base = match kind {
                "periodic" => {
                    synth::periodic_workload(100 + r as u64, days, base_level, amplitude)
                }
                _ => synth::complex_workload(200 + r as u64, days, base_level),
            };
            // Irregular stagger: random phase in the day.
            let shift = rng.gen_range(0..SAMPLES_PER_DAY) as i64;
            synth::time_shift(&base, shift)
        })
        .collect()
}

/// Rolling one-hour-ahead forecasts per region for one ensemble kind.
fn forecast_regions(
    kind: &str,
    traces: &[Trace],
    split: usize,
    scale: &Scale,
) -> (Vec<Vec<f64>>, Vec<usize>) {
    let spec = WindowSpec::new(HISTORY, FORECAST_H);
    let mut all = Vec::new();
    let mut indices = Vec::new();
    for trace in traces {
        let members: &[&str] =
            if kind == "QB5000" { &["LR", "LSTM", "KR"] } else { &["WFGAN", "TCN", "MLP"] };
        let mut member_preds = Vec::new();
        let mut targets = Vec::new();
        for name in members {
            let mut model = zoo::standalone(name, scale);
            let rep = rolling_forecast(model.as_mut(), trace.values(), split, spec)
                .expect("test region");
            targets = rep.targets.clone();
            indices = rep.indices.clone();
            member_preds.push(rep.predictions);
        }
        all.push(if kind == "QB5000" {
            combine_fixed(&member_preds)
        } else {
            combine_time_sensitive(&member_preds, &targets, 0.9)
        });
    }
    (all, indices)
}

/// Run one strategy over the evaluation window, returning the hourly
/// balance-metric series. `expected(hour_start_k)` supplies the
/// per-region loads the planner sees for the coming hour; `None` freezes
/// the assignment for that hour (the Static strategy after its one-time
/// historical plan).
fn run_strategy(
    traces: &[Trace],
    indices: &[usize],
    initial_plan: Option<&[f64]>,
    mut expected: impl FnMut(usize) -> Option<Vec<f64>>,
) -> Vec<f64> {
    let mut cluster = Cluster::new(SERVERS, REGIONS);
    let planner = MigrationPlanner::new(REGIONS / 2);
    if let Some(loads) = initial_plan {
        // Iterate to the planner's fixed point for the one-time plan.
        for _ in 0..4 {
            planner.rebalance(&mut cluster, loads);
        }
    }
    let mut metrics = Vec::new();
    let mut k = 0;
    while k + REBALANCE_EVERY <= indices.len() {
        if let Some(plan_loads) = expected(k) {
            planner.rebalance(&mut cluster, &plan_loads);
        }
        // Actual loads over the hour that follows.
        let actual: Vec<f64> = (0..REGIONS)
            .map(|r| {
                (k..k + REBALANCE_EVERY)
                    .map(|j| traces[r].values()[indices[j]])
                    .sum::<f64>()
            })
            .collect();
        metrics.push(balance_metric(&cluster.server_loads(&actual)));
        k += REBALANCE_EVERY;
    }
    metrics
}

/// Per-hour balance rows: `(hour, static, qb5000, dbaugur)`.
type HourRows = Vec<(usize, f64, f64, f64)>;

fn run_workload(kind: &str, scale: &Scale) -> (f64, f64, f64, HourRows) {
    let days = if scale.name == "quick" { 3 } else { 6 };
    let traces = region_traces(kind, days);
    let split = (traces[0].len() as f64 * 0.7) as usize;

    let t0 = Instant::now();
    let (qb, indices) = forecast_regions("QB5000", &traces, split, scale);
    eprintln!("[fig9:{kind}] QB5000 forecasts in {:.1}s", t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    let (db, _) = forecast_regions("DBAugur", &traces, split, scale);
    eprintln!("[fig9:{kind}] DBAugur forecasts in {:.1}s", t0.elapsed().as_secs_f64());

    // Static: one global plan from the historical average region loads.
    let hist_avg: Vec<f64> = (0..REGIONS)
        .map(|r| traces[r].values()[..split].iter().sum::<f64>() / split as f64)
        .collect();
    let static_series = run_strategy(&traces, &indices, Some(&hist_avg), |_| None);
    // Auto: hourly re-planning on forecasted loads for the coming hour.
    let qb_series = run_strategy(&traces, &indices, None, |k| {
        Some(
            (0..REGIONS)
                .map(|r| qb[r][k..k + REBALANCE_EVERY].iter().map(|v| v.max(0.0)).sum())
                .collect(),
        )
    });
    let db_series = run_strategy(&traces, &indices, None, |k| {
        Some(
            (0..REGIONS)
                .map(|r| db[r][k..k + REBALANCE_EVERY].iter().map(|v| v.max(0.0)).sum())
                .collect(),
        )
    });

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let rows: Vec<(usize, f64, f64, f64)> = (0..static_series.len())
        .map(|h| (h, static_series[h], qb_series[h], db_series[h]))
        .collect();
    (mean(&static_series), mean(&qb_series), mean(&db_series), rows)
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {}", scale.name);
    let mut summary = ResultTable::new(
        format!("Fig. 9: mean load-balancing difference (lower is better) ({} scale)", scale.name),
        &["workload", "Static", "Auto(QB5000)", "Auto(DBAugur)"],
    );
    for (panel, kind) in [("(a) periodic", "periodic"), ("(b) complex", "complex")] {
        let (s, q, d, rows) = run_workload(kind, &scale);
        summary.add_row(vec![
            panel.into(),
            format!("{s:.4}"),
            format!("{q:.4}"),
            format!("{d:.4}"),
        ]);
        let mut series = ResultTable::new(
            format!("Fig. 9 {panel}: hourly balance difference"),
            &["hour", "static", "qb5000", "dbaugur"],
        );
        for (h, sv, qv, dv) in rows {
            series.add_row(vec![
                h.to_string(),
                format!("{sv:.4}"),
                format!("{qv:.4}"),
                format!("{dv:.4}"),
            ]);
        }
        series.write_csv(&format!("fig9_{kind}"));
        println!(
            "[shape] {kind}: Static {s:.4} vs Auto(QB5000) {q:.4} vs Auto(DBAugur) {d:.4} \
             (paper: forecast-guided migration is better balanced; DBAugur ≤ QB5000)"
        );
    }
    summary.print();
    summary.write_csv("fig9_summary");
}
