//! `BENCH_6.json` — sharded fault domains: the kill-matrix soak (one of
//! N shards panics mid-tick or is force-quarantined while siblings must
//! stay byte-identical to the fault-free run), per-shard recovery
//! ticks, failover-floor latency percentiles, crash-safe migration
//! throughput, and the shed rate during a one-shard outage.
//!
//! The hard gates of the ISSUE are checked here and fail the process:
//! sibling digests must match at 1 and 8 workers, the killed shard must
//! recover within the tick budget, and availability during the outage
//! must clear the shed-rate gate.
//!
//! Usage: `cargo run --release -p dbaugur-bench --bin bench6`
//! Scale: `DBAUGUR_SCALE=quick|standard|full` (CI uses `quick`).
//! Output: `BENCH_6.json` in the working directory, or the path in
//! `DBAUGUR_BENCH_OUT`.

use dbaugur::{DbAugurConfig, DurabilityCounters};
use dbaugur_bench::datasets::Scale;
use dbaugur_exec::Executor;
use dbaugur_serve::SimEngine;
use dbaugur_shard::{
    run_shard_soak, shard_of, HealthPolicy, KillKind, ShardHealth, ShardSoakConfig,
    ShardSoakReport, ShardedDurable, Supervisor, SupervisorConfig,
};
use dbaugur_sqlproc::canonicalize;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Victim shard for every faulted scenario.
const VICTIM: usize = 2;
/// Recovery budget, ticks (default policy: 3 quarantine + 2 probe).
const RECOVERY_BUDGET_TICKS: u64 = 8;
/// Minimum availability during the one-shard outage window.
const AVAILABILITY_GATE: f64 = 0.5;

struct Cell {
    kind: KillKind,
    workers: usize,
    report: ShardSoakReport,
    siblings_match: bool,
    wall_secs: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

fn cell_json(c: &Cell) -> String {
    let outage = c.report.outage;
    let mut j = String::new();
    let _ = writeln!(j, "    {{");
    let _ = writeln!(j, "      \"kill_kind\": \"{:?}\",", c.kind);
    let _ = writeln!(j, "      \"workers\": {},", c.workers);
    let _ = writeln!(j, "      \"siblings_byte_identical\": {},", c.siblings_match);
    let _ = writeln!(
        j,
        "      \"kill_tick\": {},",
        c.report.kill_tick.map_or("null".into(), |t| t.to_string())
    );
    let _ = writeln!(
        j,
        "      \"recovery_ticks\": {},",
        c.report.recovery_ticks.map_or("null".into(), |t| t.to_string())
    );
    let _ = writeln!(
        j,
        "      \"outage_availability\": {:.4},",
        outage.map_or(1.0, |o| o.availability())
    );
    let _ = writeln!(j, "      \"outage_shed_rate\": {:.4},", outage.map_or(0.0, |o| o.shed_rate()));
    let _ = writeln!(j, "      \"failover_floors\": {},", c.report.supervisor.failover_floors);
    let _ = writeln!(j, "      \"panics_caught\": {},", c.report.supervisor.panics_caught);
    let _ = writeln!(j, "      \"lost_in_flight\": {},", c.report.supervisor.lost_in_flight);
    let _ = writeln!(j, "      \"reconciled\": {},", c.report.reconciled);
    let _ = writeln!(j, "      \"wall_secs\": {:.6}", c.wall_secs);
    let _ = write!(j, "    }}");
    j
}

/// Wall-clock percentiles of the failover-floor path: a quarantined
/// shard's forecasts answered immediately at the supervisor.
fn failover_latency(samples: usize) -> (f64, f64) {
    let cfg = SupervisorConfig { shards: 8, ..SupervisorConfig::default() };
    let mut sup = Supervisor::new(cfg, Arc::new(Executor::new(1)), |_| SimEngine::new(32));
    // Warm the victim with history so the floor has something to serve.
    let sql = (0..4096)
        .map(|i| format!("SELECT load FROM bench6_t{i}"))
        .find(|s| sup.route(s) == VICTIM)
        .expect("a template routes to the victim");
    for ts in 0..64u64 {
        sup.submit_ingest("bench", ts, &sql, 1);
    }
    sup.run_tick(0);
    sup.force_quarantine(VICTIM);
    let mut lat_ms: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let decision = sup.submit_forecast("bench", &sql, 1);
        lat_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert!(
            matches!(decision, dbaugur_shard::ShardDecision::FailoverFloor { .. }),
            "open breaker must answer floors"
        );
    }
    lat_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (percentile(&lat_ms, 0.5), percentile(&lat_ms, 0.99))
}

/// Crash-safe migration throughput: drain one shard's observation
/// histories into a sibling through the two-phase marker protocol,
/// gated on the destination's health like a live supervisor would.
/// Also returns the summed durability counters so the JSON records how
/// much the retry layer had to work for the run.
fn migration_throughput(observations: u64) -> (u64, f64, DurabilityCounters) {
    let root = std::env::temp_dir().join(format!("dbaugur-bench6-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut cfg = DbAugurConfig::default();
    cfg.shards = 8;
    let mut sys = ShardedDurable::open(&root, cfg).expect("open sharded store");
    let templates: Vec<String> = (0..4096)
        .map(|i| format!("INSERT INTO bench6_m{i} VALUES (1)"))
        .filter(|s| shard_of(&canonicalize(s), 8) == VICTIM)
        .take(16)
        .collect();
    let mut written = 0u64;
    'fill: loop {
        for t in &templates {
            sys.ingest_record(written, t).expect("ingest");
            written += 1;
            if written >= observations {
                break 'fill;
            }
        }
    }
    let dest = (VICTIM + 1) % 8;
    let start = Instant::now();
    let report = sys
        .migrate_gated(VICTIM, dest, &ShardHealth::new(HealthPolicy::default()))
        .expect("healthy destination accepts the migration");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(report.observations, written, "every observation moved");
    let mut durability = DurabilityCounters::default();
    for i in 0..8 {
        durability.absorb(&sys.durability(i));
    }
    let _ = std::fs::remove_dir_all(&root);
    let per_sec = if secs > 0.0 { report.observations as f64 / secs } else { 0.0 };
    (report.observations, per_sec, durability)
}

fn main() {
    let scale = Scale::from_env();
    let (ticks, failover_samples, migration_obs) = match scale.name {
        "quick" => (60, 2_000, 20_000u64),
        "full" => (400, 50_000, 500_000),
        _ => (120, 10_000, 100_000),
    };
    eprintln!("bench6: scale={} ticks={ticks} shards=8 victim={VICTIM}", scale.name);

    let base = ShardSoakConfig { ticks, ..ShardSoakConfig::default() };
    let clean = run_shard_soak(&base);
    assert!(clean.reconciled, "fault-free run must reconcile");

    let mut cells = Vec::new();
    for kind in [KillKind::PanicMidTick, KillKind::ForceQuarantine] {
        for workers in [1usize, 8] {
            let start = Instant::now();
            let report = run_shard_soak(&ShardSoakConfig {
                kill_shard: Some(VICTIM),
                kill_kind: kind,
                workers,
                ..base.clone()
            });
            let wall_secs = start.elapsed().as_secs_f64();
            let siblings_match = (0..base.shards)
                .filter(|&i| i != VICTIM)
                .all(|i| clean.per_shard_digests[i] == report.per_shard_digests[i]);
            eprintln!(
                "  {kind:?} x{workers}w: siblings_match={siblings_match} recovery={:?} availability={:.3}",
                report.recovery_ticks,
                report.outage.map_or(1.0, |o| o.availability())
            );
            cells.push(Cell { kind, workers, report, siblings_match, wall_secs });
        }
    }

    let (failover_p50_ms, failover_p99_ms) = failover_latency(failover_samples);
    eprintln!("  failover floor: p50 {failover_p50_ms:.4} ms, p99 {failover_p99_ms:.4} ms");

    let (moved, migration_obs_per_sec, durability) = migration_throughput(migration_obs);
    eprintln!("  migration: {moved} observations at {migration_obs_per_sec:.0}/s");

    // The ISSUE's gates.
    let gate_digests = cells.iter().all(|c| c.siblings_match);
    let gate_recovery = cells
        .iter()
        .all(|c| c.report.recovery_ticks.is_some_and(|t| t <= RECOVERY_BUDGET_TICKS));
    let gate_availability = cells
        .iter()
        .all(|c| c.report.outage.is_some_and(|o| o.availability() >= AVAILABILITY_GATE));
    let gate_reconciled = cells.iter().all(|c| c.report.reconciled);
    let pass = gate_digests && gate_recovery && gate_availability && gate_reconciled;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"BENCH_6\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.name);
    let _ = writeln!(json, "  \"shards\": {},", base.shards);
    let _ = writeln!(json, "  \"ticks\": {ticks},");
    let _ = writeln!(json, "  \"seed\": {},", base.seed);
    let _ = writeln!(json, "  \"victim_shard\": {VICTIM},");
    let _ = writeln!(json, "  \"kill_matrix\": [");
    let _ = writeln!(json, "{}", cells.iter().map(cell_json).collect::<Vec<_>>().join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"failover\": {{");
    let _ = writeln!(json, "    \"samples\": {failover_samples},");
    let _ = writeln!(json, "    \"p50_ms\": {failover_p50_ms:.5},");
    let _ = writeln!(json, "    \"p99_ms\": {failover_p99_ms:.5}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"migration\": {{");
    let _ = writeln!(json, "    \"observations\": {moved},");
    let _ = writeln!(json, "    \"observations_per_sec\": {migration_obs_per_sec:.1}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"durability\": {{");
    let _ = writeln!(json, "    \"io_retries\": {},", durability.io_retries);
    let _ = writeln!(json, "    \"retry_exhausted\": {},", durability.retry_exhausted);
    let _ = writeln!(json, "    \"snapshot_fallbacks\": {},", durability.snapshot_fallbacks);
    let _ = writeln!(json, "    \"wal_torn_salvages\": {}", durability.wal_torn_salvages);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"gates\": {{");
    let _ = writeln!(json, "    \"recovery_budget_ticks\": {RECOVERY_BUDGET_TICKS},");
    let _ = writeln!(json, "    \"availability_gate\": {AVAILABILITY_GATE},");
    let _ = writeln!(json, "    \"siblings_byte_identical\": {gate_digests},");
    let _ = writeln!(json, "    \"recovery_within_budget\": {gate_recovery},");
    let _ = writeln!(json, "    \"availability_above_gate\": {gate_availability},");
    let _ = writeln!(json, "    \"books_reconciled\": {gate_reconciled},");
    let _ = writeln!(json, "    \"pass\": {pass}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let out = std::env::var("DBAUGUR_BENCH_OUT").unwrap_or_else(|_| "BENCH_6.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("[json] {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    print!("{json}");
    if !pass {
        eprintln!("error: BENCH_6 gates failed");
        std::process::exit(1);
    }
}
