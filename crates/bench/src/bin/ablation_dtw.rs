//! Ablation A1 — DTW vs Euclidean vs cosine clustering, and the
//! Ball-Tree / LB_Keogh search machinery.
//!
//! Reproduces the motivation of Sec. IV-B: families of time-shifted,
//! noisy copies of the same workload (the planetarium example) should
//! land in one cluster. Exact lock-step measures split them; DTW merges
//! them. Also reports nearest-neighbour query times for the Ball-Tree
//! against the LB_Keogh-filtered linear scan and a naive scan.

use dbaugur_bench::report::ResultTable;
use dbaugur_cluster::{Descender, DescenderParams};
use dbaugur_dtw::{BallTree, CosineDistance, Distance, DtwDistance, EuclideanDistance};
use dbaugur_trace::{synth, Trace};
use std::time::Instant;

/// Build `families` groups of `copies` time-shifted noisy twins.
fn shifted_families(families: usize, copies: usize) -> (Vec<Trace>, Vec<usize>) {
    let mut traces = Vec::new();
    let mut truth = Vec::new();
    for f in 0..families {
        let base = synth::bustracker(1000 + f as u64, 2);
        for c in 0..copies {
            let shifted = synth::time_shift(&base, (c as i64 - copies as i64 / 2) * 3);
            traces.push(synth::add_noise(&shifted, 8.0, (f * copies + c) as u64));
            truth.push(f);
        }
    }
    (traces, truth)
}

/// Fraction of same-family pairs that share a cluster (recall) and of
/// cross-family pairs that are separated (precision-ish).
fn pair_scores(assignments: &[Option<usize>], truth: &[usize]) -> (f64, f64) {
    let n = truth.len();
    let mut same_total = 0.0;
    let mut same_hit = 0.0;
    let mut diff_total = 0.0;
    let mut diff_hit = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            let together = assignments[i].is_some() && assignments[i] == assignments[j];
            if truth[i] == truth[j] {
                same_total += 1.0;
                if together {
                    same_hit += 1.0;
                }
            } else {
                diff_total += 1.0;
                if !together {
                    diff_hit += 1.0;
                }
            }
        }
    }
    (same_hit / f64::max(same_total, 1.0), diff_hit / f64::max(diff_total, 1.0))
}

fn main() {
    let (traces, truth) = shifted_families(4, 5);
    let params = DescenderParams { rho: 6.0, min_size: 3, normalize: true };

    let mut table = ResultTable::new(
        "Ablation A1: clustering time-shifted workload families (4 families × 5 shifted copies)",
        &["measure", "clusters", "outliers", "same-family recall", "cross-family separation"],
    );
    let run = |name: &str, table: &mut ResultTable, clustering: dbaugur_cluster::Clustering| {
        let (recall, sep) = pair_scores(&clustering.assignments, &truth);
        table.add_row(vec![
            name.into(),
            clustering.num_clusters.to_string(),
            clustering.outliers().len().to_string(),
            format!("{recall:.2}"),
            format!("{sep:.2}"),
        ]);
    };
    run("DTW (w=10)", &mut table, Descender::new(params, DtwDistance::new(10)).cluster(&traces));
    run("Euclidean", &mut table, Descender::new(params, EuclideanDistance).cluster(&traces));
    run("Cosine (ρ=0.02)", &mut table, {
        let p = DescenderParams { rho: 0.02, ..params };
        Descender::new(p, CosineDistance).cluster(&traces)
    });
    table.print();
    table.write_csv("ablation_dtw_clustering");
    println!(
        "[shape] expected: DTW reaches recall ≈ 1 with 4 clusters; lock-step measures \
         fragment the shifted families (paper Sec. IV-B).\n"
    );

    // Search machinery timings.
    let metric = DtwDistance::new(10);
    let points: Vec<Vec<f64>> = traces.iter().map(|t| t.values().to_vec()).collect();
    let query = points[0].clone();
    let tree = BallTree::build(points.clone(), metric);
    let radius = 250.0; // wide enough to retrieve the whole shifted family

    let time_it = |f: &mut dyn FnMut() -> usize| -> (f64, usize) {
        let mut hits = 0;
        let reps = 20;
        let t0 = Instant::now();
        for _ in 0..reps {
            hits = f();
        }
        (t0.elapsed().as_secs_f64() / reps as f64 * 1e3, hits)
    };
    let (t_tree, n_tree) = time_it(&mut || tree.within(&query, radius).len());
    let (t_scan, n_scan) = time_it(&mut || tree.scan_within(&query, radius).len());
    let (t_naive, n_naive) = time_it(&mut || {
        points.iter().filter(|p| metric.dist(&query, p) <= radius).count()
    });

    let mut search = ResultTable::new(
        "Ablation A1: DTW neighbourhood search (20 traces × 288 samples, ms/query)",
        &["method", "ms/query", "results"],
    );
    search.add_row(vec!["Ball-Tree (pruned)".into(), format!("{t_tree:.2}"), n_tree.to_string()]);
    search.add_row(vec![
        "LB_Keogh-filtered scan".into(),
        format!("{t_scan:.2}"),
        n_scan.to_string(),
    ]);
    search.add_row(vec!["naive full-DTW scan".into(), format!("{t_naive:.2}"), n_naive.to_string()]);
    search.print();
    search.write_csv("ablation_dtw_search");
    assert_eq!(n_scan, n_naive, "LB_Keogh filter must be exact");
    println!("[shape] expected: filtered/pruned search ≪ naive full-DTW scan; identical results.");
}
