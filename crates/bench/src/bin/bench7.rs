//! `BENCH_7.json` — global memory-pressure defense: the budget soak
//! that proves the cross-shard arbiter, the heat-driven auto-rebalance,
//! and the injectable storage-fault layer working together.
//!
//! Two arms run on identical seeds and identical fault schedules —
//! rebalance off (control) and rebalance on — over a skewed workload
//! (a hot template set homed on shard 0 above a long uniform cold
//! tail), with seeded ENOSPC/EIO bursts firing at the front door,
//! mid-spill, and mid-migration.
//!
//! The hard gates of the ISSUE are checked here and fail the process:
//! the post-enforcement resident total must never exceed the hard
//! global ceiling at any tick, intake books must reconcile per shard
//! and globally, no acknowledged observation may be lost, the faults
//! must actually have fired, and the rebalance arm must measurably
//! flatten max/mean shard heat versus the control arm.
//!
//! Usage: `cargo run --release -p dbaugur-bench --bin bench7`
//! Scale: `DBAUGUR_SCALE=quick|standard|full` (CI uses `quick`; `full`
//! is the ISSUE's acceptance scale — 100k distinct templates).
//! Output: `BENCH_7.json` in the working directory, or the path in
//! `DBAUGUR_BENCH_OUT`.

use dbaugur_bench::datasets::Scale;
use dbaugur_shard::{
    run_pressure_soak, PressureSoakConfig, PressureSoakReport, RebalanceConfig,
};
use std::fmt::Write as _;
use std::time::Instant;

fn arm_json(name: &str, r: &PressureSoakReport, wall_secs: f64) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "  \"{name}\": {{");
    let _ = writeln!(j, "    \"ticks\": {},", r.ticks);
    let _ = writeln!(j, "    \"shards\": {},", r.shards);
    let _ = writeln!(j, "    \"distinct_templates\": {},", r.distinct_templates);
    let _ = writeln!(j, "    \"offered\": {},", r.offered);
    let _ = writeln!(j, "    \"acked\": {},", r.acked);
    let _ = writeln!(j, "    \"shed_memory_pressure\": {},", r.shed_pressure);
    let _ = writeln!(j, "    \"shed_breaker\": {},", r.shed_breaker);
    let _ = writeln!(j, "    \"shed_io\": {},", r.shed_io);
    let _ = writeln!(j, "    \"books_reconciled\": {},", r.books_ok);
    let _ = writeln!(j, "    \"resident_peak_bytes\": {},", r.resident_peak);
    let _ = writeln!(j, "    \"ceiling_breaches\": {},", r.ceiling_breaches);
    let _ = writeln!(j, "    \"spilled_observations\": {},", r.spilled_observations);
    let _ = writeln!(j, "    \"spill_files\": {},", r.spill_files);
    let _ = writeln!(j, "    \"spill_write_failures\": {},", r.spill_write_failures);
    let _ = writeln!(j, "    \"pending_spills_final\": {},", r.pending_spills_final);
    let _ = writeln!(j, "    \"dropped_by_cap\": {},", r.dropped_by_cap);
    let _ = writeln!(j, "    \"resident_observations\": {},", r.resident_observations);
    let _ = writeln!(j, "    \"lost_observations\": {},", r.lost_observations);
    let _ = writeln!(j, "    \"migrations_completed\": {},", r.migrations_completed);
    let _ = writeln!(j, "    \"migrations_failed\": {},", r.migrations_failed);
    let _ = writeln!(j, "    \"migrations_refused\": {},", r.migrations_refused);
    let _ = writeln!(j, "    \"migration_observations\": {},", r.migration_observations);
    let _ = writeln!(j, "    \"quarantines\": {},", r.quarantines);
    let _ = writeln!(j, "    \"recoveries\": {},", r.recoveries);
    let _ = writeln!(j, "    \"enospc_injected\": {},", r.enospc_injected);
    let _ = writeln!(j, "    \"eio_injected\": {},", r.eio_injected);
    let _ = writeln!(j, "    \"faults_injected\": {},", r.faults_injected);
    let _ = writeln!(j, "    \"heat_ratio_tail\": {:.4},", r.heat_ratio_tail);
    let _ = writeln!(j, "    \"arbiter\": {{");
    let _ = writeln!(j, "      \"regrants\": {},", r.arbiter.regrants);
    let _ = writeln!(j, "      \"reclaimed_bytes\": {},", r.arbiter.reclaimed_bytes);
    let _ = writeln!(j, "      \"exhausted_ticks\": {},", r.arbiter.exhausted_ticks);
    let _ = writeln!(j, "      \"pressure_sheds_engaged\": {},", r.arbiter.pressure_sheds_engaged);
    let _ = writeln!(j, "      \"pressure_sheds_released\": {},", r.arbiter.pressure_sheds_released);
    let _ = writeln!(j, "      \"pressure_quarantines\": {},", r.arbiter.pressure_quarantines);
    let _ = writeln!(j, "      \"ladder_evicted_bytes\": {},", r.arbiter.ladder_evicted_bytes);
    let _ = writeln!(j, "      \"ladder_spilled_bytes\": {},", r.arbiter.ladder_spilled_bytes);
    let _ = writeln!(j, "      \"max_total_resident\": {}", r.arbiter.max_total_resident);
    let _ = writeln!(j, "    }},");
    if let Some(rb) = &r.rebalance {
        let _ = writeln!(j, "    \"rebalance\": {{");
        let _ = writeln!(j, "      \"proposals\": {},", rb.proposals);
        let _ = writeln!(j, "      \"suppressed_hysteresis\": {},", rb.suppressed_hysteresis);
        let _ = writeln!(j, "      \"suppressed_ineligible\": {},", rb.suppressed_ineligible);
        let _ = writeln!(j, "      \"suppressed_in_flight\": {}", rb.suppressed_in_flight);
        let _ = writeln!(j, "    }},");
    } else {
        let _ = writeln!(j, "    \"rebalance\": null,");
    }
    let _ = writeln!(j, "    \"durability\": {{");
    let _ = writeln!(j, "      \"io_retries\": {},", r.durability.io_retries);
    let _ = writeln!(j, "      \"retry_exhausted\": {},", r.durability.retry_exhausted);
    let _ = writeln!(j, "      \"snapshot_fallbacks\": {},", r.durability.snapshot_fallbacks);
    let _ = writeln!(j, "      \"wal_torn_salvages\": {}", r.durability.wal_torn_salvages);
    let _ = writeln!(j, "    }},");
    let _ = writeln!(j, "    \"wall_secs\": {wall_secs:.3}");
    let _ = write!(j, "  }}");
    j
}

fn main() {
    let scale = Scale::from_env();
    // (templates, ticks, ingest/tick, budget, min grant). The budget
    // sits ~1.3x above the unevictable template-string floor
    // (~190 B/template), so the working set genuinely cannot fit and
    // the whole degradation ladder — evict, spill, shed — is exercised,
    // while the floor itself stays under the ceiling (breaches gate).
    let (templates, ticks, ingest, budget, min_grant) = match scale.name {
        "quick" => (20_000, 48, 30_000, 5 << 20, 512 << 10),
        "full" => (100_000, 60, 45_000, 24 << 20, 2_500 << 10),
        _ => (50_000, 44, 35_000, 12 << 20, 1_200 << 10),
    };
    eprintln!(
        "bench7: scale={} templates={templates} ticks={ticks} budget={}MiB",
        scale.name,
        budget >> 20
    );

    let base = PressureSoakConfig {
        shards: 8,
        ticks,
        templates,
        ingest_per_tick: ingest,
        hot_templates: 64,
        hot_permille: 800,
        global_budget_bytes: budget,
        min_grant_bytes: min_grant,
        shed_after: 2,
        quarantine_after: 1_000,
        rebalance: None,
        enospc_ticks: vec![ticks / 4, ticks / 2],
        eio_ticks: vec![ticks / 3],
        spill_fault_ticks: vec![ticks / 4 + 2, 2 * ticks / 3],
        burst_ops: 4,
        migration_fault_ops: 2,
        seed: 0xD8A6_0007,
    };

    let start = Instant::now();
    let control = run_pressure_soak(&base);
    let control_wall = start.elapsed().as_secs_f64();
    eprintln!(
        "  control: acked={} spilled={} breaches={} heat_tail={:.3} ({control_wall:.1}s)",
        control.acked, control.spilled_observations, control.ceiling_breaches,
        control.heat_ratio_tail
    );

    let start = Instant::now();
    // Conservative policy: at bench scale the cold tail already spreads
    // fairly evenly, so an eager trigger over-migrates (each migration
    // also duplicates roster strings onto the receiver) and the ratio
    // oscillates instead of settling. A higher threshold plus a long
    // cooldown corrects the genuine hot-shard skew and then stops.
    let rebalanced = run_pressure_soak(&PressureSoakConfig {
        rebalance: Some(RebalanceConfig {
            imbalance_ratio: 1.35,
            sustain_ticks: 3,
            cooldown_ticks: 6,
        }),
        ..base.clone()
    });
    let rebalanced_wall = start.elapsed().as_secs_f64();
    eprintln!(
        "  rebalance: migrations={} (failed={}, resumed later) heat_tail={:.3} ({rebalanced_wall:.1}s)",
        rebalanced.migrations_completed, rebalanced.migrations_failed,
        rebalanced.heat_ratio_tail
    );

    // The ISSUE's gates, on both arms where applicable.
    let gate_ceiling =
        control.ceiling_breaches == 0 && rebalanced.ceiling_breaches == 0;
    let gate_books = control.books_ok && rebalanced.books_ok;
    let gate_no_loss = control.lost_observations == 0
        && rebalanced.lost_observations == 0
        && control.pending_spills_final == 0
        && rebalanced.pending_spills_final == 0;
    let gate_faults_fired = rebalanced.enospc_injected > 0
        && rebalanced.eio_injected > 0
        && rebalanced.spill_write_failures > 0;
    let gate_pressure_real = rebalanced.arbiter.exhausted_ticks > 0
        && rebalanced.arbiter.pressure_sheds_engaged > 0
        && rebalanced.spilled_observations > 0;
    let gate_migrations = rebalanced.migrations_completed > 0;
    let gate_heat_flattened = rebalanced.heat_ratio_tail < control.heat_ratio_tail;
    let pass = gate_ceiling
        && gate_books
        && gate_no_loss
        && gate_faults_fired
        && gate_pressure_real
        && gate_migrations
        && gate_heat_flattened;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"BENCH_7\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.name);
    let _ = writeln!(json, "  \"global_budget_bytes\": {budget},");
    let _ = writeln!(json, "  \"seed\": {},", base.seed);
    let _ = writeln!(json, "{},", arm_json("control", &control, control_wall));
    let _ = writeln!(json, "{},", arm_json("rebalanced", &rebalanced, rebalanced_wall));
    let _ = writeln!(json, "  \"gates\": {{");
    let _ = writeln!(json, "    \"ceiling_never_exceeded\": {gate_ceiling},");
    let _ = writeln!(json, "    \"books_reconciled\": {gate_books},");
    let _ = writeln!(json, "    \"no_acked_loss\": {gate_no_loss},");
    let _ = writeln!(json, "    \"faults_fired\": {gate_faults_fired},");
    let _ = writeln!(json, "    \"pressure_real\": {gate_pressure_real},");
    let _ = writeln!(json, "    \"migrations_completed\": {gate_migrations},");
    let _ = writeln!(json, "    \"heat_flattened\": {gate_heat_flattened},");
    let _ = writeln!(json, "    \"pass\": {pass}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let out = std::env::var("DBAUGUR_BENCH_OUT").unwrap_or_else(|_| "BENCH_7.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("[json] {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    print!("{json}");
    if !pass {
        eprintln!("error: BENCH_7 gates failed");
        std::process::exit(1);
    }
}
