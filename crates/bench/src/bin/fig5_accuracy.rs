//! Figure 5 — Forecasting Model Evaluation.
//!
//! MSE versus forecasting horizon for LR, ARIMA, MLP, LSTM, TCN, QB5000,
//! WFGAN and DBAugur on (a) the BusTracker-like trace and (b) the
//! Alibaba-like disk-utilization trace, at the paper's 10-minute
//! interval with a 70/30 chronological split.
//!
//! The base models are each fit once per (dataset, horizon); QB5000 and
//! DBAugur are composed from the recorded member prediction series with
//! the library combiners (`combine_fixed`, `combine_time_sensitive`),
//! which are unit-tested to match the online ensembles exactly.

use dbaugur_bench::datasets::{alibaba, bustracker, split_point, Scale};
use dbaugur_bench::report::ResultTable;
use dbaugur_bench::zoo;
use dbaugur_models::eval::rolling_forecast;
use dbaugur_models::{combine_fixed, combine_time_sensitive};
use dbaugur_trace::{mse, Trace, WindowSpec};
use std::collections::HashMap;
use std::time::Instant;

const HISTORY: usize = 30;
const BASE_MODELS: [&str; 7] = ["LR", "ARIMA", "KR", "MLP", "LSTM", "TCN", "WFGAN"];

fn run_dataset(tag: &str, figure: &str, trace: &Trace, horizons: &[usize], scale: &Scale) {
    let split = split_point(trace);
    let mut per_model: HashMap<&str, Vec<f64>> = HashMap::new();
    for &h in horizons {
        let spec = WindowSpec::new(HISTORY, h);
        let mut preds: HashMap<&str, Vec<f64>> = HashMap::new();
        let mut targets: Vec<f64> = Vec::new();
        for name in BASE_MODELS {
            let t0 = Instant::now();
            let mut model = zoo::standalone(name, scale);
            let rep = rolling_forecast(model.as_mut(), trace.values(), split, spec)
                .expect("test region is non-empty");
            eprintln!(
                "[{tag}] horizon {h:>3}: {name:<6} mse {:<12.4} ({:.1}s)",
                rep.mse,
                t0.elapsed().as_secs_f64()
            );
            per_model.entry(name).or_default().push(rep.mse);
            targets = rep.targets.clone();
            preds.insert(name, rep.predictions);
        }
        // QB5000 = equal-weight LR + LSTM + KR (Ma et al.).
        let qb = combine_fixed(&[
            preds["LR"].clone(),
            preds["LSTM"].clone(),
            preds["KR"].clone(),
        ]);
        per_model.entry("QB5000").or_default().push(mse(&qb, &targets));
        // DBAugur = time-sensitive WFGAN + TCN + MLP, δ = 0.9.
        let db = combine_time_sensitive(
            &[preds["WFGAN"].clone(), preds["TCN"].clone(), preds["MLP"].clone()],
            &targets,
            0.9,
        );
        per_model.entry("DBAugur").or_default().push(mse(&db, &targets));
    }

    let mut headers: Vec<String> = vec!["model".into()];
    headers.extend(horizons.iter().map(|h| format!("H={}min", h * 10)));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(
        format!("Fig. 5{figure}: MSE vs forecasting horizon — {tag} ({} scale)", scale.name),
        &headers_ref,
    );
    let mut lineup: Vec<&str> = zoo::FIG5_MODELS.to_vec();
    lineup.insert(2, "KR"); // extra visibility into the QB5000 member
    for name in lineup {
        table.add_numeric_row(name, &per_model[name], 5);
    }
    table.print();
    table.write_csv(&format!("fig5_{tag}"));

    // Shape checks mirroring the paper's qualitative claims.
    let last = horizons.len() - 1;
    let deg = |m: &str| per_model[m][last] / per_model[m][0].max(1e-12);
    println!("[shape] {tag}: LR error growth first->last horizon: {:.2}x", deg("LR"));
    println!(
        "[shape] {tag}: DBAugur error growth first->last horizon: {:.2}x",
        deg("DBAugur")
    );
    let db_wins = horizons
        .iter()
        .enumerate()
        .filter(|&(i, _)| {
            ["LR", "ARIMA", "MLP", "LSTM", "TCN", "QB5000", "WFGAN"]
                .iter()
                .all(|m| per_model["DBAugur"][i] <= per_model[m][i] * 1.05)
        })
        .count();
    println!(
        "[shape] {tag}: DBAugur within 5% of best (or best) at {db_wins}/{} horizons\n",
        horizons.len()
    );
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {} (set DBAUGUR_SCALE=quick|standard|full)", scale.name);
    let bus = bustracker(&scale);
    run_dataset("bustracker", "(a)", &bus, &scale.horizons_bus.clone(), &scale);
    let ali = alibaba(&scale);
    run_dataset("alibaba", "(b)", &ali, &scale.horizons_ali.clone(), &scale);
}
