//! Aligned-table printing and CSV output for the experiment binaries.
//!
//! Every binary prints the rows/series the paper's figure or table
//! reports and mirrors them into `bench_results/<name>.csv` so
//! EXPERIMENTS.md can record paper-vs-measured values.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A printable, CSV-mirrorable result table.
#[derive(Debug, Clone)]
pub struct ResultTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified by the caller).
    ///
    /// # Panics
    /// Panics if the width disagrees with the headers.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells);
    }

    /// Convenience: label + f64 cells with fixed precision.
    pub fn add_numeric_row(&mut self, label: &str, values: &[f64], precision: usize) {
        let mut cells = vec![label.to_string()];
        for v in values {
            cells.push(format!("{v:.precision$}"));
        }
        self.add_row(cells);
    }

    /// Render the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{c:>w$}");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Write as CSV under [`results_dir`]. Errors are reported, not
    /// fatal — the printed table is the primary artifact.
    pub fn write_csv(&self, name: &str) {
        let dir = results_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let mut csv = String::new();
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            csv,
            "{}",
            self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ =
                writeln!(csv, "{}", row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        }
        let path = dir.join(format!("{name}.csv"));
        match fs::write(&path, csv) {
            Ok(()) => println!("[csv] {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

/// Where CSV mirrors land: `$DBAUGUR_RESULTS_DIR` or `./bench_results`.
pub fn results_dir() -> PathBuf {
    std::env::var("DBAUGUR_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("bench_results"))
}

/// Format seconds compactly (`1.23s` / `45ms`).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

/// Format bytes compactly (`29KB` style, like the paper's Table II).
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1024 * 1024 {
        format!("{:.1}MB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 1024 {
        format!("{:.0}KB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = ResultTable::new("demo", &["model", "mse"]);
        t.add_numeric_row("LR", &[1.23456], 3);
        t.add_numeric_row("WFGAN", &[0.5], 3);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("1.235"));
        assert!(r.contains("WFGAN"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = ResultTable::new("x", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = ResultTable::new("x", &["a,b", "c"]);
        t.add_row(vec!["v\"1".into(), "plain".into()]);
        let dir = std::env::temp_dir().join("dbaugur_csv_test");
        std::env::set_var("DBAUGUR_RESULTS_DIR", &dir);
        t.write_csv("escape_test");
        let content = std::fs::read_to_string(dir.join("escape_test.csv")).expect("written");
        assert!(content.starts_with("\"a,b\",c"));
        assert!(content.contains("\"v\"\"1\""));
        std::env::remove_var("DBAUGUR_RESULTS_DIR");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_secs(0.004), "4.0ms");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(29 * 1024), "29KB");
        assert_eq!(fmt_bytes(2 * 1024 * 1024), "2.0MB");
    }
}
