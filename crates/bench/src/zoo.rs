//! Budgeted model factory shared by the experiment binaries.

use crate::datasets::Scale;
use dbaugur_models::{
    Arima, Forecaster, KernelRegression, LinearRegression, LstmForecaster, MlpForecaster,
    TcnForecaster, Wfgan, WfganConfig,
};

/// Seed base for model initialization (distinct from the data seed).
pub const MODEL_SEED: u64 = 7;

/// The paper's LR baseline.
pub fn lr() -> LinearRegression {
    LinearRegression::default()
}

/// The paper's ARIMA(2, 1, 2) baseline.
pub fn arima() -> Arima {
    Arima::paper_default()
}

/// The QB5000 kernel-regression component.
pub fn kr() -> KernelRegression {
    KernelRegression::default()
}

/// MLP(32, 16) with this scale's budget.
pub fn mlp(scale: &Scale) -> MlpForecaster {
    let mut m = MlpForecaster::new(MODEL_SEED);
    m.epochs = scale.epochs_mlp;
    m.max_examples = scale.max_examples;
    m
}

/// LSTM(30 → 16 → 1) with this scale's budget.
pub fn lstm(scale: &Scale) -> LstmForecaster {
    let mut m = LstmForecaster::new(MODEL_SEED.wrapping_add(1));
    m.epochs = scale.epochs_lstm;
    m.max_examples = scale.max_examples;
    m
}

/// TCN (5 blocks, dilations 1,2,4,8,16) with this scale's budget.
pub fn tcn(scale: &Scale) -> TcnForecaster {
    let mut m = TcnForecaster::new(MODEL_SEED.wrapping_add(2));
    m.epochs = scale.epochs_tcn;
    m.max_examples = scale.max_examples;
    m
}

/// WFGAN with this scale's budget.
pub fn wfgan(scale: &Scale) -> Wfgan {
    Wfgan::with_config(WfganConfig {
        epochs: scale.epochs_wfgan,
        max_examples: scale.max_examples,
        seed: MODEL_SEED.wrapping_add(3),
        ..WfganConfig::default()
    })
}

/// Names of the Fig. 5 model lineup, in the paper's order.
pub const FIG5_MODELS: [&str; 8] =
    ["LR", "ARIMA", "MLP", "LSTM", "TCN", "QB5000", "WFGAN", "DBAugur"];

/// Build one standalone (non-ensemble) model by name.
///
/// # Panics
/// Panics on an unknown name — the binaries only pass fixed lists.
pub fn standalone(name: &str, scale: &Scale) -> Box<dyn Forecaster> {
    match name {
        "LR" => Box::new(lr()),
        "ARIMA" => Box::new(arima()),
        "KR" => Box::new(kr()),
        "MLP" => Box::new(mlp(scale)),
        "LSTM" => Box::new(lstm(scale)),
        "TCN" => Box::new(tcn(scale)),
        "WFGAN" => Box::new(wfgan(scale)),
        other => panic!("unknown standalone model {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbaugur_trace::WindowSpec;

    #[test]
    fn standalone_builds_every_base_model() {
        let scale = Scale::quick();
        for name in ["LR", "ARIMA", "KR", "MLP", "LSTM", "TCN", "WFGAN"] {
            let mut m = standalone(name, &scale);
            assert_eq!(m.name(), name);
            let series: Vec<f64> = (0..80).map(|i| (i % 7) as f64).collect();
            m.fit(&series, WindowSpec::new(10, 1));
            assert!(m.predict(&series[70..80]).is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "unknown standalone")]
    fn unknown_model_panics() {
        standalone("GPT", &Scale::quick());
    }
}
