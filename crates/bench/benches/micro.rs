//! Criterion micro-benchmarks for the performance-sensitive substrates:
//! DTW and its lower bounds, Ball-Tree queries, Descender clustering,
//! one training epoch per neural model, and single-window inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbaugur_bench::datasets::Scale;
use dbaugur_cluster::{Descender, DescenderParams};
use dbaugur_dtw::{dtw_distance, lb_keogh, BallTree, Distance, DtwDistance};
use dbaugur_models::util::prepare;
use dbaugur_models::Forecaster;
use dbaugur_nn::Adam;
use dbaugur_trace::{synth, WindowSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn series(seed: u64, n: usize) -> Vec<f64> {
    synth::bustracker(seed, (n / synth::SAMPLES_PER_DAY).max(1)).values()[..n].to_vec()
}

fn bench_dtw(c: &mut Criterion) {
    let a = series(1, 288);
    let b = series(2, 288);
    let mut g = c.benchmark_group("dtw");
    for w in [8usize, 32, 288] {
        g.bench_with_input(BenchmarkId::new("banded", w), &w, |bench, &w| {
            bench.iter(|| dtw_distance(black_box(&a), black_box(&b), w));
        });
    }
    g.bench_function("lb_keogh_w8", |bench| {
        bench.iter(|| lb_keogh(black_box(&a), black_box(&b), 8));
    });
    g.finish();
}

fn bench_balltree(c: &mut Criterion) {
    let points: Vec<Vec<f64>> = (0..200).map(|i| series(i as u64, 144)).collect();
    let metric = DtwDistance::new(10);
    let tree = BallTree::build(points.clone(), metric);
    let query = points[0].clone();
    let mut g = c.benchmark_group("balltree");
    g.bench_function("within_pruned", |bench| {
        bench.iter(|| tree.within(black_box(&query), 60.0).len());
    });
    g.bench_function("scan_lb_filtered", |bench| {
        bench.iter(|| tree.scan_within(black_box(&query), 60.0).len());
    });
    g.bench_function("naive_full_dtw", |bench| {
        bench.iter(|| {
            points.iter().filter(|p| metric.dist(black_box(&query), p) <= 60.0).count()
        });
    });
    g.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let traces: Vec<_> = (0..30)
        .map(|i| synth::add_noise(&synth::bustracker(i as u64 % 5, 1), 10.0, i as u64))
        .collect();
    c.bench_function("descender_30_traces", |bench| {
        bench.iter(|| {
            let params = DescenderParams { rho: 6.0, min_size: 3, normalize: true };
            Descender::new(params, DtwDistance::new(10)).cluster(black_box(&traces))
        });
    });
}

fn bench_training_epoch(c: &mut Criterion) {
    let scale = Scale::quick();
    let trace = synth::bustracker(3, 4);
    let spec = WindowSpec::new(30, 1);
    let train = &trace.values()[..trace.len() * 7 / 10];
    let data = prepare(train, spec).expect("train data");
    let mut g = c.benchmark_group("train_epoch");
    g.sample_size(10);

    g.bench_function("mlp", |bench| {
        let mut m = dbaugur_bench::zoo::mlp(&scale);
        m.fit(train, spec);
        let mut rng = StdRng::seed_from_u64(0);
        let mut opt = Adam::new(1e-3);
        bench.iter(|| m.train_epoch(&data, &mut rng, &mut opt));
    });
    g.bench_function("lstm", |bench| {
        let mut m = dbaugur_bench::zoo::lstm(&scale);
        m.fit(train, spec);
        let mut rng = StdRng::seed_from_u64(0);
        let mut opt = Adam::new(1e-3);
        bench.iter(|| m.train_epoch(&data, &mut rng, &mut opt));
    });
    g.bench_function("tcn", |bench| {
        let mut m = dbaugur_bench::zoo::tcn(&scale);
        m.fit(train, spec);
        let mut rng = StdRng::seed_from_u64(0);
        let mut opt = Adam::new(1e-3);
        bench.iter(|| m.train_epoch(&data, &mut rng, &mut opt));
    });
    g.bench_function("wfgan", |bench| {
        let mut m = dbaugur_bench::zoo::wfgan(&scale);
        m.fit(train, spec);
        let mut rng = StdRng::seed_from_u64(0);
        let mut og = Adam::new(1e-3);
        let mut od = Adam::new(1e-3);
        bench.iter(|| m.train_epoch(&data, &mut rng, &mut og, &mut od));
    });
    g.finish();
}

fn bench_inference(c: &mut Criterion) {
    let scale = Scale::quick();
    let trace = synth::bustracker(3, 4);
    let spec = WindowSpec::new(30, 1);
    let train = &trace.values()[..trace.len() * 7 / 10];
    let window = &train[train.len() - 30..];
    let mut g = c.benchmark_group("inference");
    for name in ["LR", "MLP", "LSTM", "TCN", "WFGAN"] {
        let mut model = dbaugur_bench::zoo::standalone(name, &scale);
        model.fit(train, spec);
        g.bench_function(name, |bench| {
            bench.iter(|| model.predict(black_box(window)));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_dtw,
    bench_balltree,
    bench_clustering,
    bench_training_epoch,
    bench_inference
);
criterion_main!(benches);
