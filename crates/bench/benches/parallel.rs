//! Criterion benchmarks for the bounded executor fan-out paths: the
//! LB-prefiltered DTW distance matrix inside `Descender::cluster`, the
//! full `DbAugur::train` pipeline, and single-call forecast latency.
//!
//! Each parallel bench sweeps worker counts (1 = the historical
//! sequential path) so the speedup curve is visible in the criterion
//! report; `bench3` (in `src/bin`) emits the same measurements as the
//! machine-readable `BENCH_3.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbaugur::exec::Executor;
use dbaugur::{DbAugur, DbAugurConfig};
use dbaugur_bench::parallel::{matrix_workload, trained_pipeline, worker_sweep, MATRIX_TRACES};
use dbaugur_cluster::{Descender, DescenderParams};
use dbaugur_dtw::DtwDistance;
use std::hint::black_box;
use std::sync::Arc;

fn bench_dtw_matrix(c: &mut Criterion) {
    let traces = matrix_workload(MATRIX_TRACES);
    let mut g = c.benchmark_group("dtw_matrix");
    g.sample_size(10);
    for workers in worker_sweep() {
        g.bench_with_input(
            BenchmarkId::new(format!("{MATRIX_TRACES}_traces"), workers),
            &workers,
            |bench, &workers| {
                let exec = Arc::new(Executor::new(workers));
                bench.iter(|| {
                    let params = DescenderParams { rho: 6.0, min_size: 3, normalize: true };
                    Descender::new(params, DtwDistance::new(10))
                        .with_executor(Arc::clone(&exec))
                        .cluster(black_box(&traces))
                });
            },
        );
    }
    g.finish();
}

fn bench_pipeline_train(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_train");
    g.sample_size(10);
    for workers in worker_sweep() {
        g.bench_with_input(BenchmarkId::new("train", workers), &workers, |bench, &workers| {
            bench.iter(|| trained_pipeline(workers));
        });
    }
    g.finish();
}

fn bench_forecast_latency(c: &mut Criterion) {
    let sys: DbAugur = trained_pipeline(DbAugurConfig::default().threads);
    let mut g = c.benchmark_group("forecast_latency");
    g.bench_function("template", |bench| {
        bench.iter(|| sys.forecast_template(black_box("SELECT a FROM t1 WHERE id = 1")));
    });
    g.bench_function("resource", |bench| {
        bench.iter(|| sys.forecast_trace(black_box("cpu")));
    });
    g.finish();
}

criterion_group!(benches, bench_dtw_matrix, bench_pipeline_train, bench_forecast_latency);
criterion_main!(benches);
