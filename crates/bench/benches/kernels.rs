//! Criterion benchmarks for the fast compute kernels against their
//! naive references: blocked matmul/t_matmul/matmul_t, the banded DTW
//! inner loop, and batched ensemble inference. Every case first asserts
//! the fast kernel is bitwise-identical to its f64 reference — a
//! mismatch fails the bench run, which is what the CI kernel-smoke job
//! keys on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbaugur_bench::kernels::{seeded_mat, seeded_series};
use dbaugur_dtw::{
    dtw_distance_early_abandon_reference, dtw_distance_early_abandon_scratch, DtwScratch,
};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for dim in [32usize, 128] {
        let a = seeded_mat(dim, dim, 11);
        let b = seeded_mat(dim, dim, 23);
        assert_eq!(
            a.matmul(&b).as_slice(),
            a.matmul_reference(&b).as_slice(),
            "blocked matmul diverged from reference at {dim}"
        );
        assert_eq!(a.t_matmul(&b).as_slice(), a.t_matmul_reference(&b).as_slice());
        assert_eq!(a.matmul_t(&b).as_slice(), a.matmul_t_reference(&b).as_slice());
        g.bench_with_input(BenchmarkId::new("naive", dim), &dim, |bench, _| {
            bench.iter(|| black_box(a.matmul_reference(black_box(&b))));
        });
        g.bench_with_input(BenchmarkId::new("blocked", dim), &dim, |bench, _| {
            bench.iter(|| black_box(a.matmul(black_box(&b))));
        });
        g.bench_with_input(BenchmarkId::new("blocked_t_matmul", dim), &dim, |bench, _| {
            bench.iter(|| black_box(a.t_matmul(black_box(&b))));
        });
        g.bench_with_input(BenchmarkId::new("blocked_matmul_t", dim), &dim, |bench, _| {
            bench.iter(|| black_box(a.matmul_t(black_box(&b))));
        });
    }
    g.finish();
}

fn bench_dtw_kernel(c: &mut Criterion) {
    let a = seeded_series(512, 1);
    let b = seeded_series(512, 2);
    let mut g = c.benchmark_group("dtw_kernel");
    for w in [8usize, 64] {
        let mut scratch = DtwScratch::new();
        let reference = dtw_distance_early_abandon_reference(&a, &b, w, f64::INFINITY);
        let banded =
            dtw_distance_early_abandon_scratch(&a, &b, w, f64::INFINITY, &mut scratch);
        assert_eq!(
            reference.to_bits(),
            banded.to_bits(),
            "banded DTW diverged from reference at w={w}"
        );
        g.bench_with_input(BenchmarkId::new("reference", w), &w, |bench, &w| {
            bench.iter(|| {
                dtw_distance_early_abandon_reference(
                    black_box(&a),
                    black_box(&b),
                    w,
                    f64::INFINITY,
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("banded", w), &w, |bench, &w| {
            let mut scratch = DtwScratch::new();
            bench.iter(|| {
                dtw_distance_early_abandon_scratch(
                    black_box(&a),
                    black_box(&b),
                    w,
                    f64::INFINITY,
                    &mut scratch,
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_dtw_kernel);
criterion_main!(benches);
