//! Property tests for the neural substrate, at the workspace level:
//! optimizer convergence on arbitrary quadratics, serialization
//! round-trips for arbitrary shapes, and LSTM/attention numeric
//! stability under extreme inputs.

use dbaugur_nn::activation::Activation;
use dbaugur_nn::dense::Mlp;
use dbaugur_nn::param::{HasParams, Param};
use dbaugur_nn::serialize::{decode_params, encode_params, encoded_size};
use dbaugur_nn::{Adam, Lstm, Mat, Optimizer, Sgd, TemporalAttention};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Adam minimizes an arbitrary 1-D quadratic `(x − target)²` from an
    /// arbitrary start.
    #[test]
    fn adam_converges_on_random_quadratics(
        start in -50.0f64..50.0,
        target in -50.0f64..50.0,
    ) {
        let mut p = Param::new(Mat::row_vector(vec![start]));
        let mut opt = Adam::new(0.5);
        for _ in 0..2000 {
            let x = p.w.get(0, 0);
            p.g.set(0, 0, 2.0 * (x - target));
            opt.step(&mut [&mut p]);
        }
        // Adam at lr 0.5 oscillates near the minimum; the residual
        // amplitude depends on the sampled (start, target) pair, so the
        // tolerance leaves headroom rather than relying on a lucky
        // random stream.
        let x = p.w.get(0, 0);
        prop_assert!((x - target).abs() < 5e-2, "x {x} target {target}");
    }

    /// SGD with momentum also converges (slower, needs a bounded start).
    #[test]
    fn sgd_momentum_converges(
        start in -10.0f64..10.0,
        target in -10.0f64..10.0,
    ) {
        let mut p = Param::new(Mat::row_vector(vec![start]));
        let mut opt = Sgd::with_momentum(0.02, 0.9);
        for _ in 0..3000 {
            let x = p.w.get(0, 0);
            p.g.set(0, 0, 2.0 * (x - target));
            opt.step(&mut [&mut p]);
        }
        let x = p.w.get(0, 0);
        prop_assert!((x - target).abs() < 1e-2, "x {x} target {target}");
    }

    /// The binary model format round-trips arbitrary tensor lists
    /// exactly, and the size formula is exact.
    #[test]
    fn serialization_roundtrips_arbitrary_shapes(
        shapes in prop::collection::vec((1usize..6, 1usize..6), 1..5),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params: Vec<Param> = shapes
            .iter()
            .map(|&(r, c)| Param::new(dbaugur_nn::init::xavier(&mut rng, r, c)))
            .collect();
        let refs: Vec<&Param> = params.iter().collect();
        let bytes = encode_params(&refs);
        prop_assert_eq!(bytes.len(), encoded_size(&refs));
        let mats = decode_params(&bytes).expect("round-trip decodes");
        for (p, m) in params.iter().zip(&mats) {
            prop_assert_eq!(&p.w, m);
        }
    }

    /// LSTM hidden states stay bounded (|h| < 1) for arbitrary inputs —
    /// the architectural guarantee that makes it robust to bursts.
    #[test]
    fn lstm_hidden_states_bounded_for_any_input(
        inputs in prop::collection::vec(-1e4f64..1e4, 1..20),
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lstm = Lstm::new(1, 4, &mut rng);
        let xs: Vec<Mat> = inputs.iter().map(|&v| Mat::from_vec(1, 1, vec![v])).collect();
        for h in lstm.forward_seq(&xs) {
            for v in h.as_slice() {
                prop_assert!(v.abs() < 1.0 && v.is_finite());
            }
        }
    }

    /// Attention output is always a convex combination of its inputs:
    /// each output coordinate lies within the min/max of the
    /// corresponding hidden-state coordinate across time.
    #[test]
    fn attention_output_is_in_convex_hull(
        t_len in 1usize..8,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut att = TemporalAttention::new(3, 2, &mut rng);
        let hs: Vec<Mat> = (0..t_len)
            .map(|t| Mat::from_fn(2, 3, |r, c| ((t + r * 2 + c * 5) as f64 * 0.37).sin()))
            .collect();
        let ctx = att.forward(&hs);
        for r in 0..2 {
            for c in 0..3 {
                let lo = hs.iter().map(|h| h.get(r, c)).fold(f64::INFINITY, f64::min);
                let hi = hs.iter().map(|h| h.get(r, c)).fold(f64::NEG_INFINITY, f64::max);
                let v = ctx.get(r, c);
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "({r},{c}): {v} not in [{lo},{hi}]");
            }
        }
    }

    /// One Adam step on an MLP regression batch never produces
    /// non-finite parameters, even with extreme targets.
    #[test]
    fn training_step_stays_finite(
        target in -1e6f64..1e6,
        seed in 0u64..50,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[4, 8, 1], Activation::Relu, &mut rng);
        let x = Mat::from_fn(4, 4, |r, c| (r as f64 - c as f64) * 0.3);
        let y = Mat::from_fn(4, 1, |_, _| target);
        let mut opt = Adam::new(1e-3);
        for _ in 0..5 {
            let pred = mlp.forward(&x);
            let (_, grad) = dbaugur_nn::loss::mse_loss(&pred, &y);
            mlp.backward(&grad);
            opt.step(&mut mlp.params_mut());
        }
        for p in mlp.params_mut() {
            prop_assert!(p.w.as_slice().iter().all(|v| v.is_finite()));
        }
    }
}
