//! Case-study integration: forecast-driven decisions beat static ones on
//! the dbsim substrates when the workload actually shifts — the essence
//! of the paper's Figs. 8 and 9, in fast deterministic form (LR
//! forecasters so the tests run in milliseconds).

use dbaugur_dbsim::index::{Predicate, QueryTemplate};
use dbaugur_dbsim::{
    balance_metric, run_period, AutoAdmin, Catalog, Cluster, CostModel, MigrationPlanner,
    PeriodBudget, Workload,
};
use dbaugur_models::{Forecaster, LinearRegression};
use dbaugur_trace::WindowSpec;

#[test]
fn forecast_driven_indexing_beats_static_after_shift() {
    let mut cat = Catalog::new();
    let t1 = cat.add_table(500_000, vec![500_000, 1_000]);
    let t2 = cat.add_table(200_000, vec![200_000]);
    let templates = vec![
        QueryTemplate { table: t1, predicates: vec![Predicate::Eq((t1, 0))] },
        QueryTemplate { table: t1, predicates: vec![Predicate::Eq((t1, 1))] },
        QueryTemplate { table: t2, predicates: vec![Predicate::Eq((t2, 0))] },
    ];
    let advisor = AutoAdmin::new(1);
    let cost = CostModel::default();

    // Rates ramp linearly: template 0 fades, template 1 surges.
    let n = 120usize;
    let traces: Vec<Vec<f64>> = vec![
        (0..n).map(|t| 1000.0 - 8.0 * t as f64).collect(),
        (0..n).map(|t| 50.0 + 9.0 * t as f64).collect(),
        (0..n).map(|_| 100.0).collect(),
    ];
    let split = 60;
    let spec = WindowSpec::new(10, 5);

    // LR extrapolates the ramps almost exactly.
    let forecast_at = |target: usize| -> Workload {
        let rates: Vec<f64> = traces
            .iter()
            .map(|tr| {
                let mut lr = LinearRegression::default();
                lr.fit(&tr[..split], spec);
                lr.predict(&tr[target - 5 - 10..target - 5]).max(0.0)
            })
            .collect();
        Workload::new(rates)
    };

    let probe = 110;
    let hist = Workload::new(
        traces.iter().map(|tr| tr[..split].iter().sum::<f64>() / split as f64).collect(),
    );
    let static_idx = advisor.recommend(&cat, &templates, &hist);
    let auto_idx = advisor.recommend(&cat, &templates, &forecast_at(probe));
    assert_ne!(static_idx, auto_idx, "the shift must change the recommendation");

    let actual = Workload::new(traces.iter().map(|tr| tr[probe]).collect());
    let budget = PeriodBudget { build_cost: 0.0, work_budget: 1e9, period_secs: 60.0 };
    let (_, static_lat) = run_period(&cat, &cost, &templates, &actual, &static_idx, budget);
    let (_, auto_lat) = run_period(&cat, &cost, &templates, &actual, &auto_idx, budget);
    assert!(
        auto_lat < static_lat,
        "forecasted indexes ({auto_lat:.0}) must beat stale ones ({static_lat:.0})"
    );
}

#[test]
fn forecast_driven_migration_beats_static_plan() {
    const REGIONS: usize = 6;
    let n = 240usize;
    // Rotating hot spot with *uneven* phases and amplitudes, so no fixed
    // assignment can pair regions into anti-phase couples by accident.
    let traces: Vec<Vec<f64>> = (0..REGIONS)
        .map(|r| {
            let phase_off = (r * r) as f64 * 0.7;
            let amp = 80.0 + 25.0 * r as f64;
            (0..n)
                .map(|t| {
                    let phase = std::f64::consts::TAU * (t as f64 / 48.0) - phase_off;
                    150.0 + amp * phase.sin()
                })
                .collect()
        })
        .collect();
    let split = 150;
    let spec = WindowSpec::new(24, 6);
    let models: Vec<LinearRegression> = traces
        .iter()
        .map(|t| {
            let mut m = LinearRegression::default();
            m.fit(&t[..split], spec);
            m
        })
        .collect();

    let planner = MigrationPlanner::new(REGIONS);
    // Static: a single plan from historical averages (≈ uniform).
    let hist: Vec<f64> =
        traces.iter().map(|t| t[..split].iter().sum::<f64>() / split as f64).collect();
    let mut static_cluster = Cluster::new(3, REGIONS);
    planner.rebalance(&mut static_cluster, &hist);
    let mut auto_cluster = Cluster::new(3, REGIONS);

    let mut static_sum = 0.0;
    let mut auto_sum = 0.0;
    let mut rounds = 0.0;
    let mut t = split + 24;
    while t + 6 < n {
        let predicted: Vec<f64> = (0..REGIONS)
            .map(|r| models[r].predict(&traces[r][t - 24..t]).max(0.0))
            .collect();
        planner.rebalance(&mut auto_cluster, &predicted);
        let actual: Vec<f64> = (0..REGIONS).map(|r| traces[r][t + 6]).collect();
        static_sum += balance_metric(&static_cluster.server_loads(&actual));
        auto_sum += balance_metric(&auto_cluster.server_loads(&actual));
        rounds += 1.0;
        t += 6;
    }
    let s = static_sum / rounds;
    let a = auto_sum / rounds;
    assert!(a < s, "auto ({a:.4}) must be better balanced than static ({s:.4})");
}

#[test]
fn index_build_cost_creates_the_warmup_dip() {
    // The Fig. 8(a) start-of-day pattern: an Auto strategy that must
    // first build its indexes loses throughput in the build period, then
    // overtakes a no-index configuration.
    let mut cat = Catalog::new();
    let t = cat.add_table(100_000, vec![100_000]);
    let templates = vec![QueryTemplate { table: t, predicates: vec![Predicate::Eq((t, 0))] }];
    let cost = CostModel::default();
    let wl = Workload::new(vec![500.0]);
    let advisor = AutoAdmin::new(1);
    let idx = advisor.recommend(&cat, &templates, &wl);
    // Tight budget: the 200k-unit index build cannot be absorbed.
    let budget = 100_000.0;
    let no_idx = dbaugur_dbsim::IndexSet::new();
    let (t_before, _) = run_period(
        &cat,
        &cost,
        &templates,
        &wl,
        &no_idx,
        PeriodBudget { build_cost: 0.0, work_budget: budget, period_secs: 60.0 },
    );
    let build = cost.build_cost(&cat, (t, 0));
    let (t_building, _) = run_period(
        &cat,
        &cost,
        &templates,
        &wl,
        &idx,
        PeriodBudget { build_cost: build, work_budget: budget, period_secs: 60.0 },
    );
    let (t_after, _) = run_period(
        &cat,
        &cost,
        &templates,
        &wl,
        &idx,
        PeriodBudget { build_cost: 0.0, work_budget: budget, period_secs: 60.0 },
    );
    assert!(t_building < t_after, "the build period dips: {t_building} < {t_after}");
    assert!(t_after > t_before, "once built, indexes raise throughput");
}
