//! Persistence across the crate boundary: fit a model, ship its bytes,
//! restore into a fresh process-like instance, and keep forecasting.

use dbaugur_models::persist::Persistable;
use dbaugur_models::{Forecaster, LstmForecaster, MlpForecaster, TcnForecaster, Wfgan};
use dbaugur_trace::{synth, WindowSpec};

fn series() -> Vec<f64> {
    synth::bustracker(77, 3).into_values()
}

#[test]
fn every_neural_model_roundtrips_through_bytes() {
    let s = series();
    let spec = WindowSpec::new(20, 2);
    let split = s.len() * 7 / 10;
    let window = &s[split - 20..split];

    macro_rules! check {
        ($fitted:expr, $fresh:expr) => {{
            let mut fitted = $fitted;
            fitted.fit(&s[..split], spec);
            let want = fitted.predict(window);
            let bytes = fitted.export_bytes().expect("exports");
            let mut fresh = $fresh;
            fresh.fit(&s[..100], spec); // shape-compatible init
            fresh.import_bytes(&bytes).expect("imports");
            let got = fresh.predict(window);
            assert!(
                (want - got).abs() < 1e-12,
                "{}: {want} vs {got}",
                fitted.name()
            );
            bytes.len()
        }};
    }

    let mlp_len = check!(MlpForecaster::new(1).with_epochs(3), MlpForecaster::new(9).with_epochs(1));
    let lstm_len =
        check!(LstmForecaster::new(2).with_epochs(2), LstmForecaster::new(9).with_epochs(1));
    let tcn_len = check!(TcnForecaster::new(3).with_epochs(2), TcnForecaster::new(9).with_epochs(1));
    let gan_len = {
        let mut a = Wfgan::new(4).with_epochs(2);
        a.cfg.max_examples = 100;
        let mut b = Wfgan::new(9).with_epochs(1);
        b.cfg.max_examples = 50;
        check!(a, b)
    };
    // WFGAN persists both networks; it should be the largest blob.
    assert!(gan_len > lstm_len && gan_len > mlp_len);
    assert!(tcn_len > mlp_len);
}

#[test]
fn imported_model_continues_training() {
    // Export a half-trained model, import it elsewhere, keep training —
    // the continued model should not be worse than the snapshot.
    let s = series();
    let spec = WindowSpec::new(20, 1);
    let split = s.len() * 7 / 10;

    let mut donor = MlpForecaster::new(5).with_epochs(3);
    donor.fit(&s[..split], spec);
    let bytes = donor.export_bytes().expect("exports");

    let mut receiver = MlpForecaster::new(6).with_epochs(1);
    receiver.fit(&s[..split], spec);
    receiver.import_bytes(&bytes).expect("imports");

    // Refitting from the restored weights... fit() re-initializes, so we
    // instead verify the restored model's error, then compare against a
    // model trained longer from scratch as a sanity anchor.
    let err = |m: &dyn Forecaster| -> f64 {
        let mut acc = 0.0;
        let mut n = 0.0;
        for t in split..s.len() - 1 {
            let p = m.predict(&s[t - 20..t]);
            acc += (p - s[t]) * (p - s[t]);
            n += 1.0;
        }
        acc / n
    };
    let restored_err = err(&receiver);
    let donor_err = err(&donor);
    assert!((restored_err - donor_err).abs() < 1e-9, "identical models, identical error");
}
