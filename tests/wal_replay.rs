//! Write-ahead-log replay edge cases: empty logs, torn tails, duplicate
//! replay after an un-truncated checkpoint, and snapshot+WAL
//! interleavings. These are the invariants `DbAugur::recover` promises
//! regardless of where a crash landed.

use dbaugur::{DbAugur, DbAugurConfig, DurableDbAugur, WAL_FILE};
use std::path::PathBuf;

fn cfg() -> DbAugurConfig {
    let mut cfg = DbAugurConfig {
        interval_secs: 60,
        history: 8,
        horizon: 1,
        top_k: 2,
        ..DbAugurConfig::default()
    };
    cfg.clustering.min_size = 1;
    cfg.fast();
    cfg
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbaugur_wal_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn empty_wal_recovers_to_empty_pipeline() {
    let dir = tmpdir("empty");
    // Opening creates a header-only log; nothing else.
    let (durable, report) = DurableDbAugur::open(&dir, cfg()).expect("open");
    assert_eq!(report.generation, None);
    assert_eq!(report.wal_applied, 0);
    assert!(!report.wal_torn);
    drop(durable);
    let (sys, report) = DbAugur::recover(&dir, cfg()).expect("recover");
    assert_eq!(sys.num_templates(), 0);
    assert_eq!(report.wal_applied, 0);
    assert!(!report.wal_torn);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn torn_final_record_loses_only_that_record() {
    let dir = tmpdir("torn");
    let (mut durable, _) = DurableDbAugur::open(&dir, cfg()).expect("open");
    for i in 0..5u64 {
        durable.ingest_record(i * 60, &format!("SELECT c{i} FROM t{i}")).expect("ingest");
    }
    drop(durable);
    // Tear the last few bytes off the log, as a crash mid-append would.
    let wal = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal).expect("read wal");
    std::fs::write(&wal, &bytes[..bytes.len() - 3]).expect("tear");

    let (sys, report) = DbAugur::recover(&dir, cfg()).expect("recover");
    assert!(report.wal_torn, "tear must be detected");
    assert_eq!(report.wal_applied, 4, "exactly the torn record is lost");
    assert_eq!(sys.num_templates(), 4);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn duplicate_replay_after_untruncated_checkpoint_is_idempotent() {
    let dir = tmpdir("dup");
    let (mut durable, _) = DurableDbAugur::open(&dir, cfg()).expect("open");
    for i in 0..4u64 {
        durable.ingest_record(i * 60, &format!("SELECT d{i} FROM t{i}")).expect("ingest");
    }
    // Snapshot WITHOUT truncating the log — exactly the window a crash
    // between checkpoint-rename and wal-truncate leaves behind. Every
    // log entry is now also inside the snapshot.
    durable.system_mut().checkpoint(&dir).expect("snapshot");
    drop(durable);

    let (sys, report) = DbAugur::recover(&dir, cfg()).expect("recover");
    assert_eq!(report.generation, Some(1));
    assert_eq!(report.wal_applied, 0, "nothing replays twice");
    assert_eq!(report.wal_skipped, 4, "all entries recognized as applied");
    assert_eq!(sys.num_templates(), 4);

    // Recovery itself is repeatable: a second pass sees the same world.
    let (sys2, report2) = DbAugur::recover(&dir, cfg()).expect("recover again");
    assert_eq!(report2, report);
    assert_eq!(sys2.num_templates(), sys.num_templates());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn snapshot_and_wal_interleave_into_one_timeline() {
    let dir = tmpdir("interleave");
    let (mut durable, _) = DurableDbAugur::open(&dir, cfg()).expect("open");
    durable.ingest_record(0, "SELECT a FROM t0").expect("ingest");
    durable.ingest_record(60, "SELECT b FROM t1").expect("ingest");
    let gen = durable.checkpoint().expect("checkpoint");
    assert_eq!(gen, 1);
    // Post-checkpoint entries live only in the log.
    durable.ingest_record(120, "SELECT c FROM t2").expect("ingest");
    durable
        .add_resource_trace(dbaugur_trace::Trace::new(
            "cpu",
            dbaugur_trace::TraceKind::Resource,
            60,
            vec![0.1, 0.2, 0.3],
        ))
        .expect("ingest resource");
    drop(durable);

    let (sys, report) = DbAugur::recover(&dir, cfg()).expect("recover");
    assert_eq!(report.generation, Some(1));
    assert_eq!(report.wal_applied, 2, "snapshot covers 2 entries, wal the other 2");
    assert_eq!(sys.num_templates(), 3);
    assert_eq!(sys.resources().len(), 1);
    assert_eq!(sys.resources()[0].name, "cpu");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn sequence_numbers_stay_monotonic_across_reopen_and_truncate() {
    let dir = tmpdir("seq");
    let (mut durable, _) = DurableDbAugur::open(&dir, cfg()).expect("open");
    durable.ingest_record(0, "SELECT a FROM t").expect("ingest");
    durable.checkpoint().expect("checkpoint");
    assert_eq!(durable.wal_len_bytes().expect("len"), 8, "truncated to header");
    durable.ingest_record(60, "SELECT b FROM u").expect("ingest");
    let seq_before = durable.system().applied_seq();
    drop(durable);

    let (durable, report) = DurableDbAugur::open(&dir, cfg()).expect("reopen");
    assert_eq!(report.wal_applied, 1);
    assert_eq!(durable.system().applied_seq(), seq_before);
    let mut durable = durable;
    durable.ingest_record(120, "SELECT c FROM v").expect("ingest");
    assert!(durable.system().applied_seq() > seq_before, "fresh appends advance the sequence");
    std::fs::remove_dir_all(dir).ok();
}
