//! Integration of sqlproc → trace binning → DTW clustering → top-K
//! selection, plus batch/online Descender agreement.

use dbaugur_cluster::{select_top_k, Descender, DescenderParams, OnlineDescender};
use dbaugur_dtw::DtwDistance;
use dbaugur_sqlproc::TemplateRegistry;
use dbaugur_trace::{synth, Trace};

/// Feed a registry with two lock-step templates and one off-beat one.
fn populated_registry(minutes: u64) -> TemplateRegistry {
    let mut reg = TemplateRegistry::new();
    for m in 0..minutes {
        let rate = 3 + (m % 10);
        for k in 0..rate {
            reg.observe("SELECT a FROM x WHERE id = 1", m * 60 + k);
            reg.observe("SELECT b FROM y WHERE id = 1", m * 60 + k + 30); // 30 s shifted twin
        }
        for k in 0..(2 + m % 3) {
            reg.observe("DELETE FROM z WHERE ts < 100", m * 60 + k);
        }
    }
    reg
}

#[test]
fn registry_traces_cluster_with_dtw() {
    let reg = populated_registry(240);
    let set = reg.arrival_traces(0, 240 * 60, 60);
    let traces: Vec<Trace> = set.traces().to_vec();
    assert_eq!(traces.len(), 3);
    let clustering = Descender::new(
        DescenderParams { rho: 4.0, min_size: 2, normalize: true },
        DtwDistance::new(5),
    )
    .cluster(&traces);
    // The lock-step pair shares a cluster despite the 30 s shift.
    assert_eq!(clustering.assignments[0], clustering.assignments[1]);
    assert!(clustering.assignments[0].is_some());
}

#[test]
fn top_k_projection_recovers_member_scale() {
    let reg = populated_registry(240);
    let set = reg.arrival_traces(0, 240 * 60, 60);
    let traces: Vec<Trace> = set.traces().to_vec();
    let clustering = Descender::new(
        DescenderParams { rho: 4.0, min_size: 1, normalize: true },
        DtwDistance::new(5),
    )
    .cluster(&traces);
    let top = select_top_k(&traces, &clustering, 3);
    assert!(!top.is_empty());
    for s in &top {
        let psum: f64 = s.proportions.iter().sum();
        assert!((psum - 1.0).abs() < 1e-9, "proportions sum to 1");
        // Projecting the representative's own mean must land near each
        // member's mean.
        let rep_mean = s.representative.mean();
        for (mi, &member) in s.members.iter().enumerate() {
            let projected = s.project(mi, rep_mean);
            let actual = traces[member].mean();
            assert!(
                (projected - actual).abs() < 0.35 * actual.max(1.0),
                "projection {projected:.2} vs member mean {actual:.2}"
            );
        }
    }
}

#[test]
fn online_and_batch_agree_on_well_separated_data() {
    // Three sine-family traces + two alibaba traces: batch finds 2
    // clusters, online should too (insertion order included).
    let base = synth::bustracker(11, 2);
    let mut traces = vec![base.clone()];
    traces.push(synth::time_shift(&base, 3));
    traces.push(synth::time_shift(&base, -3));
    traces.push(synth::alibaba_disk(1, 2));
    traces.push(synth::add_noise(&synth::alibaba_disk(1, 2), 0.005, 2));

    let params = DescenderParams { rho: 6.0, min_size: 2, normalize: true };
    let batch = Descender::new(params, DtwDistance::new(10)).cluster(&traces);
    let batch_clusters: usize = batch.num_clusters;

    let mut online = OnlineDescender::new(params, DtwDistance::new(10));
    for t in &traces {
        online.insert(t);
    }
    assert_eq!(online.clusters().len(), batch_clusters);
    // Same grouping: the first three together, the last two together.
    let c0 = online.cluster_of(0);
    assert_eq!(online.cluster_of(1), c0);
    assert_eq!(online.cluster_of(2), c0);
    let c3 = online.cluster_of(3);
    assert_eq!(online.cluster_of(4), c3);
    assert_ne!(c0, c3);
}

#[test]
fn equivalent_sql_forms_do_not_inflate_the_trace_count() {
    let mut reg = TemplateRegistry::new();
    for m in 0..60u64 {
        reg.observe("SELECT a, b FROM t WHERE x = 1 AND y = 2", m * 60);
        reg.observe("SELECT b, a FROM t WHERE y = 9 AND x = 4", m * 60 + 1);
        reg.observe("SELECT * FROM p JOIN q ON p.id = q.id", m * 60 + 2);
        reg.observe("SELECT * FROM q JOIN p ON q.id = p.id", m * 60 + 3);
    }
    assert_eq!(reg.num_templates(), 2, "equivalence checking merges both pairs");
    let set = reg.arrival_traces(0, 3600, 60);
    for t in set.traces() {
        assert_eq!(t.volume(), 120.0, "each merged template carries both call sites");
    }
}
