//! Crash-recovery acceptance matrix: kill checkpoint and WAL writes at
//! seeded byte offsets (≥20 distinct crash points) and prove recovery
//! always comes back to a consistent, finite-forecasting pipeline whose
//! template/trace/cluster counts match the pre-crash state up to the
//! last durable record. Also the drift acceptance test: a post-training
//! distribution shift on one cluster flags that cluster — and only that
//! cluster — as needing retraining.

use dbaugur::wal::scan_bytes;
use dbaugur::{DbAugur, DbAugurConfig, DriftState, DurableDbAugur, GroupCommitConfig, WAL_FILE};
use dbaugur_exec::Deadline;
use dbaugur_lifecycle::{registry_path, LifecycleConfig, LifecycleManager};
use dbaugur_trace::wire::tmp_path;
use dbaugur_trace::FaultInjector;
use std::path::{Path, PathBuf};

fn cfg() -> DbAugurConfig {
    let mut cfg = DbAugurConfig {
        interval_secs: 60,
        history: 8,
        horizon: 1,
        top_k: 3,
        ..DbAugurConfig::default()
    };
    cfg.clustering.min_size = 1;
    cfg.fast();
    cfg
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbaugur_crash_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read dir") {
        let entry = entry.expect("entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
    }
}

/// Two distinct-pattern templates (two clusters) + post-checkpoint WAL
/// records, trained and snapshotted. Returns the state dir.
fn build_state(name: &str) -> PathBuf {
    let dir = tmpdir(name);
    let (mut durable, _) = DurableDbAugur::open(&dir, cfg()).expect("open");
    for m in 0..120u64 {
        let a = 3 + (m % 10);
        for k in 0..a {
            durable.ingest_record(m * 60 + k, "SELECT a FROM bus WHERE id = 1").expect("ingest");
        }
        let b = 2 + 7 * u64::from(m % 16 < 8);
        for k in 0..b {
            durable
                .ingest_record(m * 60 + 20 + k, "UPDATE stats SET n = 2 WHERE id = 3")
                .expect("ingest");
        }
    }
    durable.system_mut().train(0, 120 * 60).expect("trains");
    durable.checkpoint().expect("checkpoint");
    // Entries that exist only in the write-ahead log at crash time.
    for i in 0..6u64 {
        durable
            .ingest_record(121 * 60 + i, &format!("SELECT w{i} FROM wal_only{i}"))
            .expect("ingest");
    }
    dir
}

/// Every cluster of a recovered system must forecast a finite value.
fn assert_finite_forecasts(sys: &DbAugur) {
    assert!(!sys.clusters().is_empty(), "recovered system has trained clusters");
    for (i, _) in sys.clusters().iter().enumerate() {
        let f = sys.forecast_cluster(i).expect("cluster present");
        assert!(f.is_finite(), "cluster {i} forecast must be finite, got {f}");
    }
}

#[test]
fn wal_crash_matrix_recovers_every_prefix() {
    let dir = build_state("wal_matrix");
    let wal_bytes = std::fs::read(dir.join(WAL_FILE)).expect("read wal");
    let snapshot_templates = {
        // What the snapshot alone holds (WAL entries excluded).
        let empty_wal_dir = tmpdir("wal_matrix_ref");
        copy_dir(&dir, &empty_wal_dir);
        std::fs::remove_file(empty_wal_dir.join(WAL_FILE)).expect("drop wal");
        let (sys, _) = DbAugur::recover(&empty_wal_dir, cfg()).expect("recover");
        let n = sys.num_templates();
        std::fs::remove_dir_all(&empty_wal_dir).ok();
        n
    };

    let mut inj = FaultInjector::new(0xC0FFEE);
    let offsets = inj.kill_offsets(wal_bytes.len(), 12);
    assert!(offsets.len() >= 10, "enough distinct WAL crash points: {offsets:?}");
    for &cut in &offsets {
        let case = tmpdir(&format!("wal_cut_{cut}"));
        copy_dir(&dir, &case);
        std::fs::write(case.join(WAL_FILE), &wal_bytes[..cut]).expect("simulate torn wal");

        let (sys, report) = DbAugur::recover(&case, cfg())
            .unwrap_or_else(|e| panic!("recovery must succeed at cut {cut}: {e}"));
        // Ground truth from the codec itself: the salvageable prefix.
        let salvage = scan_bytes(&wal_bytes[..cut]);
        assert_eq!(
            report.wal_applied + report.wal_skipped,
            salvage.entries.len(),
            "every salvageable entry is accounted for at cut {cut}"
        );
        // Each WAL-only record carries a unique template, so counts are
        // exactly snapshot + replayed.
        assert_eq!(
            sys.num_templates(),
            snapshot_templates + report.wal_applied,
            "state matches pre-crash up to the last durable record at cut {cut}"
        );
        assert_eq!(sys.clusters().len(), 2, "trained clusters survive at cut {cut}");
        assert_finite_forecasts(&sys);
        std::fs::remove_dir_all(&case).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn group_commit_kill_matrix_acks_only_after_fsync() {
    // Stream 20 records through a group-commit buffer of 8: two full
    // batches flush (16 acked), 4 die in the buffer at crash time. The
    // matrix then kills the WAL at seeded offsets *inside* the second
    // coalesced batch and proves (a) the first batch always replays
    // whole, (b) a torn batch salvages exactly its framed prefix, and
    // (c) records never covered by a flush report leave no trace — the
    // acked-only-after-fsync contract, byte for byte.
    let dir = tmpdir("group_commit_matrix");
    let (mut durable, _) = DurableDbAugur::open(&dir, cfg()).expect("open");
    for m in 0..30u64 {
        durable.ingest_record(m * 60, "SELECT a FROM bus WHERE id = 1").expect("ingest");
    }
    durable.checkpoint().expect("checkpoint");

    durable.stream_enable(GroupCommitConfig { max_records: 8, max_delay_us: 1_000_000 });
    let mut acked = 0usize;
    let mut batch1_len = 0u64;
    for i in 0..20u64 {
        let report = durable
            .stream_submit(i, 2_000 + i, &format!("SELECT g{i} FROM gc_only{i}"))
            .expect("submit");
        if let Some(r) = report {
            acked += r.records;
            if batch1_len == 0 {
                batch1_len =
                    std::fs::metadata(dir.join(WAL_FILE)).expect("wal exists").len();
            }
        }
    }
    assert_eq!(acked, 16, "two size-triggered flushes covered 16 of 20 records");
    assert!(batch1_len > 0);
    drop(durable); // crash: 4 buffered records were never acked

    let wal_bytes = std::fs::read(dir.join(WAL_FILE)).expect("read wal");
    assert!((wal_bytes.len() as u64) > batch1_len, "the second batch landed after the first");

    // (c) with the full WAL: exactly the acked set replays — the 4
    // unflushed records left no bytes behind.
    let full = scan_bytes(&wal_bytes);
    assert_eq!(full.entries.len(), acked, "unacked records leave no trace in the WAL");
    assert!(!full.torn);

    let snapshot_templates = {
        let refdir = tmpdir("group_commit_ref");
        copy_dir(&dir, &refdir);
        std::fs::remove_file(refdir.join(WAL_FILE)).expect("drop wal");
        let (sys, _) = DbAugur::recover(&refdir, cfg()).expect("recover");
        let n = sys.num_templates();
        std::fs::remove_dir_all(&refdir).ok();
        n
    };

    // Kill offsets pinned strictly inside the second batch's byte span.
    let span = wal_bytes.len() - batch1_len as usize;
    let mut inj = FaultInjector::new(0xC0FFEE);
    let mut cuts: Vec<usize> = inj
        .kill_offsets(span.saturating_sub(1), 16)
        .into_iter()
        .map(|o| batch1_len as usize + 1 + o % span.max(1))
        .filter(|&c| c < wal_bytes.len())
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    assert!(cuts.len() >= 8, "enough batch-interior crash points: {cuts:?}");
    for &cut in &cuts {
        let case = tmpdir(&format!("gc_cut_{cut}"));
        copy_dir(&dir, &case);
        std::fs::write(case.join(WAL_FILE), &wal_bytes[..cut]).expect("torn wal");

        let salvage = scan_bytes(&wal_bytes[..cut]);
        assert!(
            salvage.entries.len() >= 8,
            "the first fsynced batch always replays whole at cut {cut}"
        );
        assert!(
            salvage.entries.len() < 16,
            "a cut inside batch 2 loses its unflushed tail at cut {cut}"
        );
        let (sys, report) = DbAugur::recover(&case, cfg())
            .unwrap_or_else(|e| panic!("recovery must succeed at cut {cut}: {e}"));
        assert_eq!(
            report.wal_applied + report.wal_skipped,
            salvage.entries.len(),
            "replay matches the salvageable prefix exactly at cut {cut}"
        );
        assert_eq!(
            sys.num_templates(),
            snapshot_templates + report.wal_applied,
            "state is pre-crash truth up to the last durable record at cut {cut}"
        );
        std::fs::remove_dir_all(&case).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_crash_matrix_falls_back_to_previous_generation() {
    let dir = build_state("snap_matrix");
    // The bytes a second checkpoint would have written.
    let (mut sys, _) = DbAugur::recover(&dir, cfg()).expect("recover baseline");
    let pre_templates = sys.num_templates();
    let pre_clusters = sys.clusters().len();
    let snap_bytes = sys.encode_snapshot();

    let mut inj = FaultInjector::new(0xDEAD_BEEF);
    let offsets = inj.kill_offsets(snap_bytes.len(), 12);
    assert!(offsets.len() >= 10, "enough distinct snapshot crash points: {offsets:?}");
    for &cut in &offsets {
        // Case A: crash before the rename — a partial temp file is left
        // behind and must be invisible to recovery.
        let case = tmpdir(&format!("snap_tmp_{cut}"));
        copy_dir(&dir, &case);
        let gen2 = case.join("snap-000002.dbag");
        std::fs::write(tmp_path(&gen2), &snap_bytes[..cut]).expect("partial tmp");
        let (sys, report) = DbAugur::recover(&case, cfg())
            .unwrap_or_else(|e| panic!("tmp-crash recovery must succeed at cut {cut}: {e}"));
        assert_eq!(report.generation, Some(1), "temp files never count as generations");
        assert_eq!(report.corrupted_generations, 0);
        assert_eq!(sys.num_templates(), pre_templates);
        assert_eq!(sys.clusters().len(), pre_clusters);
        assert_finite_forecasts(&sys);
        std::fs::remove_dir_all(&case).ok();

        // Case B: the new generation landed torn (e.g. media error) —
        // its checksum fails and recovery falls back to generation 1,
        // replaying the still-intact WAL.
        let case = tmpdir(&format!("snap_torn_{cut}"));
        copy_dir(&dir, &case);
        std::fs::write(case.join("snap-000002.dbag"), &snap_bytes[..cut]).expect("torn gen");
        let (sys, report) = DbAugur::recover(&case, cfg())
            .unwrap_or_else(|e| panic!("torn-gen recovery must succeed at cut {cut}: {e}"));
        assert_eq!(report.generation, Some(1), "fallback to the previous generation");
        assert_eq!(report.corrupted_generations, 1);
        assert!(!report.wal_torn, "the WAL itself is intact");
        assert_eq!(sys.num_templates(), pre_templates, "WAL replay restores everything");
        assert_eq!(sys.clusters().len(), pre_clusters);
        assert_finite_forecasts(&sys);
        std::fs::remove_dir_all(&case).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_rot_in_newest_generation_falls_back_to_older() {
    let dir = build_state("bit_rot");
    // Write a second full generation, then flip one byte in it.
    let (mut sys, _) = DbAugur::recover(&dir, cfg()).expect("recover");
    sys.checkpoint(&dir).expect("second generation");
    let gen2 = dir.join("snap-000002.dbag");
    let mut bytes = std::fs::read(&gen2).expect("read gen2");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&gen2, &bytes).expect("flip bit");

    let (recovered, report) = DbAugur::recover(&dir, cfg()).expect("recover survives bit rot");
    assert_eq!(report.generation, Some(1));
    assert_eq!(report.corrupted_generations, 1);
    assert_finite_forecasts(&recovered);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_snapshot_roundtrip_preserves_counts_and_forecasts() {
    let dir = build_state("roundtrip");
    let (sys, _) = DbAugur::recover(&dir, cfg()).expect("recover");
    let forecasts: Vec<f64> =
        (0..sys.clusters().len()).map(|i| sys.forecast_cluster(i).expect("cluster")).collect();

    let (again, report) = DbAugur::recover(&dir, cfg()).expect("recover again");
    assert_eq!(report.generation, Some(1));
    assert_eq!(again.num_templates(), sys.num_templates());
    assert_eq!(again.clusters().len(), sys.clusters().len());
    for (i, &f) in forecasts.iter().enumerate() {
        let g = again.forecast_cluster(i).expect("cluster");
        assert!(
            (f - g).abs() < 1e-9 || (f.is_finite() && g.is_finite()),
            "recovered forecasts are reproducible: {f} vs {g}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A single-template pipeline with enough training budget that a
/// lifecycle challenger can actually learn a shifted regime (the
/// promotion path needs a winnable gate, unlike the pure-crash tests).
fn cfg_learn() -> DbAugurConfig {
    let mut cfg = cfg();
    cfg.epochs = 12;
    cfg.max_examples = 256;
    cfg
}

#[test]
fn promotion_kill_matrix_old_champion_serves_or_promotion_is_visible() {
    // Build: train, checkpoint generation 1, then shift the regime and
    // let the lifecycle promote a challenger. The registry is written
    // ahead of the install and NO post-promotion checkpoint follows —
    // the crash window this matrix attacks.
    let dir = tmpdir("promo_matrix");
    let (mut durable, _) = DurableDbAugur::open(&dir, cfg_learn()).expect("open");
    for minute in 0..120u64 {
        let n = 2 + 5 * u64::from(minute % 10 < 5);
        for q in 0..n {
            durable
                .ingest_record(minute * 60 + q, "SELECT * FROM t WHERE a = 1")
                .expect("ingest");
        }
    }
    durable.system_mut().train(0, 120 * 60).expect("trains");
    durable.checkpoint().expect("generation 1");

    let history = cfg_learn().history;
    {
        let sys = durable.system();
        let c = &sys.clusters()[0];
        let warm = sys.config().drift.warmup + sys.config().drift.window;
        for _ in 0..warm {
            let f = c.forecast(history);
            c.observe(history, f);
        }
        for k in 0..320 {
            c.observe(history, 50.0 + 15.0 * f64::from(k % 10 < 5));
        }
        assert_eq!(c.drift_state(), DriftState::Quarantined);
    }
    let lc_cfg = LifecycleConfig {
        min_improvement: 0.01,
        min_eval_windows: 2,
        shadow_folds: 6,
        cooldown_ticks: 3,
        ..LifecycleConfig::default()
    };
    let mut mgr = LifecycleManager::open(lc_cfg.clone(), &dir);
    let rep = mgr.tick(durable.system_mut(), &Deadline::none());
    assert_eq!(rep.promoted, vec![0], "challenger promoted: {rep:?} {:?}", mgr.events());
    drop(durable); // crash: the promotion exists only in the registry

    let reg_bytes = std::fs::read(registry_path(&dir)).expect("registry written ahead");
    let mut inj = FaultInjector::new(0xA11CE);
    let offsets = inj.kill_offsets(reg_bytes.len(), 10);
    assert!(offsets.len() >= 8, "enough distinct registry crash points: {offsets:?}");
    for &cut in &offsets {
        let case = tmpdir(&format!("promo_cut_{cut}"));
        copy_dir(&dir, &case);
        std::fs::write(registry_path(&case), &reg_bytes[..cut]).expect("torn registry");

        let (mut sys, report) =
            DbAugur::recover(&case, cfg_learn()).expect("recovery always succeeds");
        assert_eq!(report.generation, Some(1), "snapshot generation intact at cut {cut}");
        let mut m = LifecycleManager::open(lc_cfg.clone(), &case);
        assert!(m.registry_corrupt(), "torn registry detected, never decoded, at cut {cut}");
        assert_eq!(m.reconcile(&mut sys), 0, "no partial promotion applied at cut {cut}");
        assert_eq!(
            sys.clusters()[0].generation(),
            0,
            "the old champion keeps serving at cut {cut}"
        );
        assert_finite_forecasts(&sys);
        // The cluster re-promotes cleanly on a fresh registry.
        assert_eq!(m.registry().generations(0), 0);
        std::fs::remove_dir_all(&case).ok();
    }

    // Intact registry: the promotion is fully visible after recovery.
    let (mut sys, _) = DbAugur::recover(&dir, cfg_learn()).expect("recover");
    assert_eq!(sys.clusters()[0].generation(), 0, "the snapshot predates the promotion");
    let mut m = LifecycleManager::open(lc_cfg, &dir);
    assert!(!m.registry_corrupt());
    assert_eq!(m.reconcile(&mut sys), 1, "write-ahead promotion re-applied");
    assert_eq!(sys.clusters()[0].generation(), 1);
    assert_finite_forecasts(&sys);
    assert_eq!(m.reconcile(&mut sys), 0, "reconcile is idempotent");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn distribution_shift_marks_only_the_shifted_cluster_stale() {
    let mut cfg = cfg();
    // Small thresholds so the test converges fast; quarantine kept out
    // of reach so we observe the Stale verdict specifically.
    cfg.drift.warmup = 8;
    cfg.drift.window = 4;
    cfg.drift.stale_ratio = 2.0;
    cfg.drift.quarantine_ratio = 1e12;

    let mut sys = DbAugur::new(cfg.clone());
    for m in 0..120u64 {
        let a = 3 + (m % 10);
        for k in 0..a {
            sys.ingest_record(m * 60 + k, "SELECT a FROM bus WHERE id = 1");
        }
        let b = 2 + 7 * u64::from(m % 16 < 8);
        for k in 0..b {
            sys.ingest_record(m * 60 + 20 + k, "UPDATE stats SET n = 2 WHERE id = 3");
        }
    }
    sys.train(0, 120 * 60).expect("trains");
    assert_eq!(sys.clusters().len(), 2);

    let history = cfg.history;
    // Warmup both clusters on actuals matching their own forecasts —
    // zero error by construction, whatever the ensembles predict.
    for _ in 0..(cfg.drift.warmup + cfg.drift.window) {
        for (i, c) in sys.clusters().iter().enumerate() {
            let f = sys.forecast_cluster(i).expect("cluster");
            c.observe(history, f);
        }
    }
    // Then the workload shifts under cluster 0 only.
    for _ in 0..cfg.drift.window {
        let f0 = sys.forecast_cluster(0).expect("cluster");
        sys.clusters()[0].observe(history, f0 * 10.0 + 50.0);
        let f1 = sys.forecast_cluster(1).expect("cluster");
        sys.clusters()[1].observe(history, f1);
    }

    let health = sys.drift_report();
    assert_eq!(health.len(), 2);
    assert_eq!(health[0].drift, DriftState::Stale, "shifted cluster flagged: {health:?}");
    assert!(health[0].retrain_recommended);
    assert_eq!(health[1].drift, DriftState::Healthy, "steady cluster untouched: {health:?}");
    assert!(!health[1].retrain_recommended);
}
