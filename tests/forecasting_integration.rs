//! Cross-model forecasting integration: the whole zoo on the synthetic
//! evaluation traces, with qualitative assertions matching the paper's
//! claims at small training budgets.

use dbaugur_models::eval::rolling_forecast;
use dbaugur_models::forecaster::Naive;
use dbaugur_models::{
    combine_fixed, combine_time_sensitive, Arima, Forecaster, KernelRegression,
    LinearRegression, LstmForecaster, MlpForecaster, TcnForecaster, Wfgan,
};
use dbaugur_trace::{mse, synth, WindowSpec};

fn eval(model: &mut dyn Forecaster, series: &[f64], split: usize, spec: WindowSpec) -> f64 {
    rolling_forecast(model, series, split, spec).expect("test region").mse
}

#[test]
fn every_model_produces_finite_errors_on_both_datasets() {
    let bus = synth::bustracker(1, 4);
    let ali = synth::alibaba_disk(2, 3);
    let spec = WindowSpec::new(20, 3);
    for trace in [&bus, &ali] {
        let split = trace.len() * 7 / 10;
        let models: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LinearRegression::default()),
            Box::new(Arima::paper_default()),
            Box::new(KernelRegression::default()),
            Box::new(MlpForecaster::new(1).with_epochs(4)),
            Box::new(LstmForecaster::new(1).with_epochs(2)),
            Box::new(TcnForecaster::new(1).with_epochs(2)),
            Box::new(Wfgan::new(1).with_epochs(2)),
        ];
        for mut m in models {
            let err = eval(m.as_mut(), trace.values(), split, spec);
            assert!(err.is_finite(), "{} produced non-finite MSE", m.name());
        }
    }
}

#[test]
fn linear_models_shine_on_locally_linear_data() {
    // The paper: "Alibaba Cluster Trace has good local linearity. As a
    // result, a simple model can fit workload patterns effectively."
    let ali = synth::alibaba_disk(5, 4);
    let split = ali.len() * 7 / 10;
    let spec = WindowSpec::new(20, 1);
    let lr = eval(&mut LinearRegression::default(), ali.values(), split, spec);
    let naive = eval(&mut Naive, ali.values(), split, spec);
    // At horizon 1 on a noisy near-random-walk, last-value is close to
    // MSE-optimal; "shine" means LR stays within a sliver of it.
    assert!(lr <= naive * 1.25, "LR ({lr:.5}) should be competitive with naive ({naive:.5})");
    // At a longer horizon the drift matters and LR pulls clearly ahead.
    let spec_long = WindowSpec::new(20, 12);
    let lr_long = eval(&mut LinearRegression::default(), ali.values(), split, spec_long);
    let naive_long = eval(&mut Naive, ali.values(), split, spec_long);
    assert!(
        lr_long < naive_long,
        "LR ({lr_long:.5}) should beat naive ({naive_long:.5}) at 2h horizon"
    );
}

#[test]
fn lr_degrades_faster_than_learned_models_on_cyclic_data() {
    // Fig. 5(a)'s shape: LR's error grows sharply with horizon on the
    // cyclic BusTracker data; an MLP holds up better.
    let bus = synth::bustracker(3, 7);
    let split = bus.len() * 7 / 10;
    let short = WindowSpec::new(30, 1);
    let long = WindowSpec::new(30, 36); // 6 hours
    let lr_growth = eval(&mut LinearRegression::default(), bus.values(), split, long)
        / eval(&mut LinearRegression::default(), bus.values(), split, short);
    let mlp_growth = eval(
        &mut MlpForecaster::new(2).with_epochs(25),
        bus.values(),
        split,
        long,
    ) / eval(&mut MlpForecaster::new(2).with_epochs(25), bus.values(), split, short);
    assert!(
        mlp_growth < lr_growth,
        "MLP growth {mlp_growth:.2}x should be below LR growth {lr_growth:.2}x"
    );
}

#[test]
fn dynamic_ensemble_tracks_the_best_member_after_regime_change() {
    // Build two member prediction series: member A perfect in the first
    // half, member B perfect in the second. The time-sensitive combiner
    // must end up near the currently-correct member; the fixed combiner
    // stays at the average.
    let n = 200;
    let targets: Vec<f64> = (0..n).map(|i| if i < n / 2 { 10.0 } else { 50.0 }).collect();
    let a: Vec<f64> = vec![10.0; n];
    let b: Vec<f64> = vec![50.0; n];
    let dynamic = combine_time_sensitive(&[a.clone(), b.clone()], &targets, 0.9);
    let fixed = combine_fixed(&[a, b]);
    let dyn_mse = mse(&dynamic, &targets);
    let fix_mse = mse(&fixed, &targets);
    assert!(
        dyn_mse < 0.2 * fix_mse,
        "dynamic ({dyn_mse:.1}) must crush fixed ({fix_mse:.1}) under regime change"
    );
    // Late-phase dynamic predictions hug member B.
    assert!((dynamic[n - 1] - 50.0).abs() < 1.0);
}

#[test]
fn horizon_growth_hurts_accuracy() {
    // Example 4: "Increasing the forecasting horizon will decrease the
    // forecasting accuracy." Check it for the ensemble members that
    // matter; allow slack for noise.
    let bus = synth::bustracker(4, 6);
    let split = bus.len() * 7 / 10;
    let short = eval(
        &mut MlpForecaster::new(3).with_epochs(20),
        bus.values(),
        split,
        WindowSpec::new(30, 1),
    );
    let long = eval(
        &mut MlpForecaster::new(3).with_epochs(20),
        bus.values(),
        split,
        WindowSpec::new(30, 72),
    );
    assert!(long > short, "12h-horizon MSE ({long:.1}) should exceed 10min ({short:.1})");
}

#[test]
fn wfgan_multi_task_shares_knowledge_without_interference() {
    use dbaugur_models::MultiTaskWfgan;
    let query = synth::bustracker(6, 3);
    let resource = synth::alibaba_disk(7, 3);
    let n = query.len().min(resource.len());
    let spec = WindowSpec::new(20, 1);
    let mut mt = MultiTaskWfgan::new(8).with_epochs(4);
    mt.cfg.max_examples = 300;
    mt.fit_joint(&query.values()[..n * 7 / 10], &resource.values()[..n * 7 / 10], spec);
    // Predictions stay in each task's own scale despite the shared LSTM.
    let qw = &query.values()[n * 7 / 10 - 20..n * 7 / 10];
    let rw = &resource.values()[n * 7 / 10 - 20..n * 7 / 10];
    let pq = mt.predict_query(qw);
    let pr = mt.predict_resource(rw);
    assert!(pq > 5.0, "query-rate prediction should be in query units: {pq}");
    assert!((-0.5..=1.5).contains(&pr), "resource prediction should be a ratio: {pr}");
}
