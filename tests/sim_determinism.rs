//! DetSim acceptance: the deterministic-simulation contract, end to
//! end. Plans round-trip through their text encoding; one plan replays
//! byte-identically; a pinned schedule with a planted canary bug is
//! caught by the invariant checkers and shrunk to a ≤5-event
//! reproducer that itself replays exactly; and a small clean swarm —
//! including a guaranteed ENOSPC-during-migration-under-pressure
//! compound slot — passes every checker on every tick.

use dbaugur_sim::{
    generate_plan, run_plan, run_plan_with, run_swarm, shrink, CanaryBug, CheckKind, SimOptions,
    SimPlan, SwarmConfig,
};

/// The swarm seed every gate pins: bench9 and CI run the same stream.
const SWARM_SEED: u64 = 0xD5_5EED;

#[test]
fn plans_round_trip_through_their_text_encoding() {
    for idx in 0..24 {
        let plan = generate_plan(SWARM_SEED, idx);
        let text = plan.encode();
        let back = SimPlan::parse(&text).unwrap_or_else(|e| panic!("plan {idx} reparses: {e}"));
        assert_eq!(back.encode(), text, "plan {idx} encoding is a fixpoint");
    }
}

#[test]
fn one_plan_replays_byte_identically() {
    // A compound slot: budget squeeze + migration fault + ENOSPC burst,
    // the deepest interleaving the generator guarantees.
    let plan = generate_plan(SWARM_SEED, 5);
    let a = run_plan(&plan);
    let b = run_plan(&plan);
    assert_eq!(a.digest, b.digest, "same seed + same plan ⇒ same digest");
    assert_eq!(a.per_shard_digests, b.per_shard_digests);
    assert_eq!(a.acked, b.acked);
    assert_eq!(a.violations.len(), b.violations.len());
}

#[test]
fn pinned_canary_is_caught_shrunk_small_and_replays() {
    // Schedule 0 of the pinned stream trips both planted migration
    // bugs; the coarse import check manifests as phantom duplication.
    let plan = generate_plan(SWARM_SEED, 0);
    let opts =
        SimOptions { canary: CanaryBug::CoarseImportCheck, stop_at_first_violation: true };
    let run = run_plan_with(&plan, &opts);
    assert!(!run.passed(), "the planted bug must trip a checker");
    assert_eq!(run.violations[0].check, CheckKind::Phantom);

    let rep = shrink(&plan, &opts).expect("a failing plan shrinks");
    assert!(
        rep.to_events <= 5,
        "reproducer has {} events, acceptance budget is 5",
        rep.to_events
    );
    assert!(rep.to_events <= rep.from_events);
    assert_eq!(rep.check, CheckKind::Phantom, "the reproducer trips the same checker");
    let a = run_plan_with(&rep.plan, &opts);
    let b = run_plan_with(&rep.plan, &opts);
    assert_eq!(a.digest, b.digest, "the reproducer replays byte-identically");
    assert!(!a.passed(), "the reproducer still fails");

    // Without the canary the same minimal schedule is survivable: the
    // shrunk plan isolates the planted bug, not an ambient weakness.
    let clean = run_plan(&rep.plan);
    assert!(clean.passed(), "reproducer passes once the bug is unplanted: {:?}", clean.violations);
}

#[test]
fn pinned_group_commit_plan_survives_batch_boundary_faults() {
    // The streaming-front-door reproducer: group-committed intake under
    // a short write torn into a batch, an ENOSPC burst that drops a
    // whole coalesced batch unacked, and two crashes that land while
    // partial batches sit in the buffer. The checkers prove the ack
    // contract — acked only after fsync, every lost record a typed
    // shed, no acknowledged observation destroyed.
    let text = include_str!("plans/stream_group_commit.plan");
    let plan = SimPlan::parse(text).expect("pinned plan parses");
    assert_eq!(plan.encode(), text, "the pinned plan is canonically encoded");
    assert_eq!(plan.group_commit, 7, "batch size stays off the per-tick alignment");
    let a = run_plan(&plan);
    let b = run_plan(&plan);
    assert!(a.passed(), "violations: {:?}", a.violations);
    assert_eq!(a.digest, b.digest, "the streaming reproducer replays byte-identically");
    assert_eq!(a.per_shard_digests, b.per_shard_digests);
    assert_eq!(a.crashes, 2);
    assert!(a.stream_flushes > 0, "group commit actually engaged");
    assert!(
        a.acked >= a.stream_flushes * 2,
        "batches coalesced: {} flushes for {} acks",
        a.stream_flushes,
        a.acked
    );
    assert!(a.stream_lost > 0, "faults landed inside coalesced batches");
    assert!(a.shed_io >= a.stream_lost, "lost records are ledgered, not vanished");
}

#[test]
fn small_clean_swarm_holds_every_invariant() {
    let cfg = SwarmConfig {
        schedules: 12,
        seed: SWARM_SEED,
        shrink_failures: true,
        max_shrinks: 1,
        ..SwarmConfig::default()
    };
    let report = run_swarm(&cfg);
    for f in &report.failures {
        eprintln!("schedule {}: {} — {}", f.index, f.check, f.detail);
        if let Some(s) = &f.shrunk {
            eprintln!("reproducer:\n{}", s.plan.encode());
        }
    }
    assert!(report.clean(), "swarm must be clean: {}/{} failed", report.failed, report.schedules);
    assert!(report.replay_checked > 0, "the replay-identity slot ran");
    assert!(report.sibling_checked > 0, "the isolation slot ran");
    assert!(report.acked > 0);
    assert!(report.faults_injected > 0, "schedules actually injected faults");
}
