//! Corruption fuzzing over the `trace::wire` codec.
//!
//! The wire format guards every durable artifact (snapshots, WAL
//! records, registry spill blobs), so a corrupted buffer must come back
//! as a clean `WireError` — never a panic, and never an allocation
//! sized by a lying length prefix. These tests hammer representative
//! encodings with seeded bit flips, truncation at every byte offset,
//! and hand-forged length-prefix lies.

use dbaugur_sqlproc::TemplateRegistry;
use dbaugur_trace::{FaultInjector, Trace, TraceKind, WireError, WireReader, WireWriter};

/// A representative trace encoding: non-trivial name, both-kind
/// coverage comes from the registry payload below.
fn trace_bytes() -> Vec<u8> {
    let values: Vec<f64> = (0..48).map(|i| (i as f64 * 0.37).sin() * 10.0 + 20.0).collect();
    let t = Trace::new("fuzz/query-arrivals", TraceKind::Query, 60, values);
    let mut w = WireWriter::new();
    w.put_trace(&t);
    w.into_bytes()
}

/// A representative registry encoding: several templates with
/// different-length observation histories.
fn registry_bytes() -> Vec<u8> {
    let mut reg = TemplateRegistry::new();
    for i in 0..6u64 {
        for ts in 0..(10 + 7 * i) {
            reg.observe(&format!("SELECT col_{i} FROM tbl_{i} WHERE id = {ts}"), ts);
        }
    }
    let mut w = WireWriter::new();
    reg.encode_into(&mut w);
    w.into_bytes()
}

/// Decode a trace buffer; on success, prove no field could have been
/// populated beyond what the buffer physically held (i.e. no length
/// prefix was trusted past the data).
fn check_trace_decode(buf: &[u8]) {
    let mut r = WireReader::new(buf);
    if let Ok(t) = r.trace() {
        assert!(t.name.len() <= buf.len(), "name longer than the buffer that held it");
        assert!(
            t.values().len() * 8 <= buf.len(),
            "{} values cannot come from {} bytes",
            t.values().len(),
            buf.len()
        );
        assert!(t.interval_secs > 0, "decoder must reject a zero interval");
    }
}

/// Decode a registry buffer; on success, bound its contents by the
/// bytes that were actually present.
fn check_registry_decode(buf: &[u8]) {
    let mut r = WireReader::new(buf);
    if let Ok(reg) = TemplateRegistry::decode_from(&mut r) {
        let obs_total: usize = reg.by_volume_desc().iter().map(|&(_, n)| n).sum();
        assert!(
            obs_total * 8 <= buf.len(),
            "{obs_total} observations cannot come from {} bytes",
            buf.len()
        );
    }
}

#[test]
fn clean_roundtrips_are_exact() {
    // Baseline: the fuzz corpus itself decodes back to what was encoded.
    let tb = trace_bytes();
    let t = WireReader::new(&tb).trace().expect("clean trace decodes");
    assert_eq!(t.name, "fuzz/query-arrivals");
    assert_eq!(t.values().len(), 48);

    let rb = registry_bytes();
    let reg =
        TemplateRegistry::decode_from(&mut WireReader::new(&rb)).expect("clean registry decodes");
    assert_eq!(reg.num_templates(), 6);

    let mut w = WireWriter::new();
    w.put_str("hello");
    w.put_u64_seq(&[1, 2, 3]);
    w.put_f64_seq(&[0.5, -0.5]);
    let b = w.into_bytes();
    let mut r = WireReader::new(&b);
    assert_eq!(r.str().unwrap(), "hello");
    assert_eq!(r.u64_seq().unwrap(), vec![1, 2, 3]);
    assert_eq!(r.f64_seq().unwrap(), vec![0.5, -0.5]);
    assert_eq!(r.remaining(), 0);
}

#[test]
fn truncation_at_every_offset_fails_cleanly() {
    // A valid encoding cut at ANY interior byte offset must yield a
    // clean error: every partial read path hits the bounds check.
    let tb = trace_bytes();
    for cut in 0..tb.len() {
        let mut r = WireReader::new(&tb[..cut]);
        assert!(r.trace().is_err(), "trace cut at {cut}/{} must not decode", tb.len());
    }
    let rb = registry_bytes();
    for cut in 0..rb.len() {
        let mut r = WireReader::new(&rb[..cut]);
        assert!(
            TemplateRegistry::decode_from(&mut r).is_err(),
            "registry cut at {cut}/{} must not decode",
            rb.len()
        );
    }
}

#[test]
fn seeded_bit_flips_never_panic_or_overallocate() {
    // Hundreds of seeded corruptions per payload, at escalating flip
    // counts. Decode may succeed (a flipped value byte is still a
    // value) or fail — but it must do one of those two things, and a
    // success must be physically consistent with the buffer size.
    let tb = trace_bytes();
    let rb = registry_bytes();
    for seed in 0..200u64 {
        let mut chaos = FaultInjector::new(seed);
        for flips in [1usize, 3, 8, 32] {
            let mut buf = tb.clone();
            chaos.corrupt_bytes(&mut buf, flips);
            check_trace_decode(&buf);

            let mut buf = rb.clone();
            chaos.corrupt_bytes(&mut buf, flips);
            check_registry_decode(&buf);
        }
    }
}

#[test]
fn flips_combined_with_truncation_never_panic() {
    // The WAL's failure mode is both at once: a torn tail AND bad bytes.
    let tb = trace_bytes();
    let rb = registry_bytes();
    for seed in 0..100u64 {
        let mut chaos = FaultInjector::new(seed);
        for (payload, is_trace) in [(&tb, true), (&rb, false)] {
            let mut buf = payload.clone();
            chaos.corrupt_bytes(&mut buf, 4);
            chaos.truncate_bytes(&mut buf, 0.25 + 0.5 * (seed as f64 / 100.0));
            if is_trace {
                check_trace_decode(&buf);
            } else {
                check_registry_decode(&buf);
            }
        }
    }
}

#[test]
fn length_prefix_lies_are_rejected_before_allocation() {
    // Forge a string whose u32 length prefix claims far more data than
    // the buffer holds. The reader must refuse *before* allocating.
    let mut w = WireWriter::new();
    w.put_str("short");
    let mut buf = w.into_bytes();
    for lie in [u32::MAX, u32::MAX / 2, 1 << 30, buf.len() as u32 + 1] {
        buf[..4].copy_from_slice(&lie.to_le_bytes());
        let mut r = WireReader::new(&buf);
        assert_eq!(r.str().unwrap_err(), WireError::Truncated, "lying prefix {lie}");
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes().unwrap_err(), WireError::Truncated);
    }

    // Same lie on sequence counts: n * 8 must be validated against the
    // remaining bytes (with overflow-checked multiply) before any Vec
    // is reserved.
    let mut w = WireWriter::new();
    w.put_u64_seq(&[7, 8, 9]);
    let mut buf = w.into_bytes();
    for lie in [u32::MAX, (1u32 << 29) + 1, 4] {
        buf[..4].copy_from_slice(&lie.to_le_bytes());
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u64_seq().unwrap_err(), WireError::Truncated, "lying count {lie}");
    }

    let mut w = WireWriter::new();
    w.put_f64_seq(&[1.0, 2.0]);
    let mut buf = w.into_bytes();
    buf[..4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(WireReader::new(&buf).f64_seq().unwrap_err(), WireError::Truncated);

    // And on the registry's template count.
    let rb = registry_bytes();
    let mut buf = rb.clone();
    buf[..4].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut r = WireReader::new(&buf);
    assert!(TemplateRegistry::decode_from(&mut r).is_err(), "lying template count");
}

#[test]
fn semantic_corruption_maps_to_typed_errors() {
    // A trace whose kind tag is neither 0 nor 1.
    let mut w = WireWriter::new();
    w.put_str("t");
    w.put_u8(7);
    w.put_u64(60);
    w.put_f64_seq(&[1.0]);
    let b = w.into_bytes();
    assert_eq!(WireReader::new(&b).trace().unwrap_err(), WireError::BadTag(7));

    // A zero interval is a semantic lie the decoder must catch (the
    // Trace constructor would panic on it downstream).
    let mut w = WireWriter::new();
    w.put_str("t");
    w.put_u8(0);
    w.put_u64(0);
    w.put_f64_seq(&[1.0]);
    let b = w.into_bytes();
    assert_eq!(WireReader::new(&b).trace().unwrap_err(), WireError::BadValue("trace interval"));

    // Non-UTF-8 bytes behind a string prefix.
    let mut w = WireWriter::new();
    w.put_bytes(&[0xFF, 0xFE, 0xFD]);
    let b = w.into_bytes();
    assert_eq!(WireReader::new(&b).str().unwrap_err(), WireError::BadUtf8);
}

#[test]
fn registry_spill_blob_survives_the_same_fuzzing() {
    // The eviction spill blob is wire-encoded too; restore_spill must
    // reject damage cleanly (clean restores are covered in the registry
    // unit tests; here we only care that damage never panics).
    let mut reg = TemplateRegistry::new();
    for i in 0..4u64 {
        for ts in 0..40 {
            reg.observe(&format!("SELECT s{i} FROM t{i}"), ts);
        }
    }
    let report = reg.evict_cold(0);
    let spill = report.spill.expect("evicting to zero spills");

    for cut in 0..spill.len() {
        let _ = reg.restore_spill(&spill[..cut]);
    }
    for seed in 0..100u64 {
        let mut chaos = FaultInjector::new(seed);
        let mut buf = spill.clone();
        chaos.corrupt_bytes(&mut buf, 6);
        let _ = reg.restore_spill(&buf);
    }
}
