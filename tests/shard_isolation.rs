//! Shard fault-domain isolation, end to end: the seeded kill matrix
//! (one shard panics mid-tick or is force-quarantined, siblings must be
//! byte-identical to the fault-free run and the victim must recover
//! within bounded ticks), per-shard durable lineage independence under
//! a torn WAL, and crash-safe cross-shard migration.

use dbaugur::{DbAugurConfig, DurableDbAugur};
use dbaugur_shard::{
    run_shard_soak, shard_of, KillKind, ShardSoakConfig, ShardState, ShardedDurable,
};
use dbaugur_sqlproc::canonicalize;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbaugur-shard-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sharded_cfg(shards: usize) -> DbAugurConfig {
    let mut cfg = DbAugurConfig::default();
    cfg.shards = shards;
    cfg
}

/// A template that hashes to `shard` under `shards` domains.
fn template_on(shard: usize, shards: usize) -> String {
    (0..4096)
        .map(|i| format!("SELECT v{i} FROM shard_it_{i} WHERE id = {i}"))
        .find(|sql| shard_of(&canonicalize(sql), shards) == shard)
        .expect("4096 templates cover every shard")
}

/// The kill matrix of the ISSUE: seeds × fault kinds × worker counts.
/// For every cell, the seven surviving shards' served-value digests are
/// byte-identical to the fault-free run with the same seed, the hurt
/// shard recovers within the policy's bounded tick budget, the books
/// reconcile through the fault, and worker count changes nothing.
#[test]
fn kill_matrix_siblings_byte_identical_and_recovery_bounded() {
    for seed in [0xD8A6u64, 0xBEEF, 7] {
        let base = ShardSoakConfig { seed, ..ShardSoakConfig::default() };
        let clean = run_shard_soak(&base);
        assert!(clean.reconciled);
        for kill_kind in [KillKind::PanicMidTick, KillKind::ForceQuarantine] {
            for workers in [1usize, 8] {
                let victim = 2;
                let faulted = run_shard_soak(&ShardSoakConfig {
                    kill_shard: Some(victim),
                    kill_kind,
                    workers,
                    ..base.clone()
                });
                let tag = format!("seed={seed:#x} kind={kill_kind:?} workers={workers}");
                assert!(faulted.reconciled, "{tag}: books must balance through the fault");
                for i in 0..base.shards {
                    if i == victim {
                        continue;
                    }
                    assert_eq!(
                        clean.per_shard_digests[i], faulted.per_shard_digests[i],
                        "{tag}: sibling shard {i} must serve byte-identical answers"
                    );
                }
                assert!(faulted.kill_tick.is_some(), "{tag}: fault must be observed");
                let recovery = faulted
                    .recovery_ticks
                    .unwrap_or_else(|| panic!("{tag}: victim must recover in-run"));
                assert!(recovery <= 8, "{tag}: recovery must be bounded, took {recovery} ticks");
                assert_eq!(faulted.final_states[victim], ShardState::Healthy, "{tag}");
                if kill_kind == KillKind::PanicMidTick {
                    assert_eq!(faulted.supervisor.panics_caught, 1, "{tag}");
                }
                let outage = faulted.outage.unwrap_or_else(|| panic!("{tag}: outage window"));
                assert!(
                    outage.availability() > 0.5,
                    "{tag}: availability {:.3} during one-shard outage",
                    outage.availability()
                );
            }
        }
    }
}

/// Tearing one shard's WAL tail is that shard's problem alone: the
/// victim salvages the intact prefix (surfaced in its recovery report
/// and durability counters) while every sibling replays cleanly.
#[test]
fn torn_wal_is_salvaged_without_touching_siblings() {
    let root = tmpdir("torn-wal");
    let shards = 4;
    let templates: Vec<String> = (0..shards).map(|i| template_on(i, shards)).collect();
    {
        let mut sys = ShardedDurable::open(&root, sharded_cfg(shards)).expect("open");
        for ts in 0..12u64 {
            for t in &templates {
                sys.ingest_record(ts, t).expect("ingest");
            }
        }
        // No checkpoint: every record lives only in its shard's WAL.
    }
    let victim_wal = root.join("shard-1").join(dbaugur::WAL_FILE);
    let bytes = std::fs::read(&victim_wal).expect("read victim wal");
    std::fs::write(&victim_wal, &bytes[..bytes.len() - 5]).expect("tear tail");

    let sys = ShardedDurable::open(&root, sharded_cfg(shards)).expect("reopen");
    for i in 0..shards {
        let report = &sys.recovery_reports()[i];
        if i == 1 {
            assert!(report.wal_torn, "victim tail salvaged");
            assert_eq!(sys.durability(i).wal_torn_salvages, 1);
            assert_eq!(report.wal_applied, 11, "intact prefix replayed");
        } else {
            assert!(!report.wal_torn, "shard {i} untouched");
            assert_eq!(sys.durability(i).wal_torn_salvages, 0);
            assert_eq!(report.wal_applied, 12);
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Full drain of one shard into another, with the WAL-backed reopen
/// proving the override and the moved histories are durable — the
/// serving-layer story for "quarantined shard drains to a healthy one".
#[test]
fn quarantined_shard_drains_to_healthy_sibling() {
    let root = tmpdir("drain");
    let shards = 4;
    let from = 3;
    let to = 0;
    let hot = template_on(from, shards);
    let cold = template_on(to, shards);
    let mut sys = ShardedDurable::open(&root, sharded_cfg(shards)).expect("open");
    for ts in 0..20u64 {
        sys.ingest_record(ts, &hot).expect("ingest");
    }
    sys.ingest_record(0, &cold).expect("ingest");

    let report = sys.migrate(from, to).expect("drain");
    assert_eq!((report.from, report.to), (from, to));
    assert_eq!(report.templates, 1);
    assert_eq!(report.observations, 20);
    assert_eq!(sys.route(&hot), to, "override follows the data");
    assert_eq!(sys.route(&cold), to, "hash-home routing untouched");
    // New traffic lands on the destination and survives a crash.
    sys.ingest_record(50, &hot).expect("ingest");
    drop(sys);

    let sys = ShardedDurable::open(&root, sharded_cfg(shards)).expect("reopen");
    assert_eq!(sys.route(&hot), to);
    let registry = sys.shard(to).system().registry();
    let tid = registry.lookup(&hot).expect("template moved");
    assert_eq!(registry.count(tid), 21);
    let src_registry = sys.shard(from).system().registry();
    let src_tid = src_registry.lookup(&hot).expect("roster entry remains");
    assert_eq!(src_registry.count(src_tid), 0, "source drained");
    let _ = std::fs::remove_dir_all(&root);
}

/// Crash between the migration's prepare and commit phases: reopening
/// resumes the marker to completion, exactly once, with nothing lost.
#[test]
fn interrupted_migration_resumes_exactly_once_at_reopen() {
    let root = tmpdir("resume");
    let shards = 2;
    let hot = template_on(0, shards);
    {
        let mut sys = ShardedDurable::open(&root, sharded_cfg(shards)).expect("open");
        for ts in 0..15u64 {
            sys.ingest_record(ts, &hot).expect("ingest");
        }
        assert!(sys.begin_migration(0, 1).expect("prepare"), "marker written");
        // Crash here: marker durable, nothing imported or drained.
    }
    // Two reopens: the first resumes the migration, the second must
    // find nothing left to do and not duplicate observations.
    for pass in 0..2 {
        let sys = ShardedDurable::open(&root, sharded_cfg(shards)).expect("reopen");
        assert_eq!(sys.route(&hot), 1, "pass {pass}");
        let registry = sys.shard(1).system().registry();
        let tid = registry.lookup(&hot).expect("imported");
        assert_eq!(registry.count(tid), 15, "pass {pass}: exactly once");
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// The durable sharded store and the single-pipeline durable store see
/// the same records the same way: sharding only changes *where* state
/// lives, not what is recovered.
#[test]
fn sharded_and_unsharded_agree_on_recovered_observations() {
    let shards = 4;
    let templates: Vec<String> = (0..shards).map(|i| template_on(i, shards)).collect();
    let sharded_root = tmpdir("agree-sharded");
    let flat_root = tmpdir("agree-flat");
    {
        let mut sharded =
            ShardedDurable::open(&sharded_root, sharded_cfg(shards)).expect("open sharded");
        let (mut flat, _) =
            DurableDbAugur::open(&flat_root, DbAugurConfig::default()).expect("open flat");
        for ts in 0..9u64 {
            for t in &templates {
                sharded.ingest_record(ts, t).expect("sharded ingest");
                flat.ingest_record(ts, t).expect("flat ingest");
            }
        }
    }
    let sharded = ShardedDurable::open(&sharded_root, sharded_cfg(shards)).expect("reopen");
    let (flat, _) = DurableDbAugur::open(&flat_root, DbAugurConfig::default()).expect("reopen");
    for t in &templates {
        let shard = sharded.route(t);
        let reg = sharded.shard(shard).system().registry();
        let count = reg.lookup(t).map(|id| reg.count(id)).unwrap_or(0);
        let flat_reg = flat.system().registry();
        let flat_count = flat_reg.lookup(t).map(|id| flat_reg.count(id)).unwrap_or(0);
        assert_eq!(count, flat_count, "template {t:?} recovered identically");
        assert_eq!(count, 9);
    }
    let total: usize = (0..shards).map(|i| sharded.shard(i).system().num_templates()).sum();
    assert_eq!(total, flat.system().num_templates());
    let _ = std::fs::remove_dir_all(&sharded_root);
    let _ = std::fs::remove_dir_all(&flat_root);
}
