//! Determinism contract of the bounded executor: `DbAugur::train` must
//! produce bitwise-identical state whether it runs fully sequentially
//! (`threads = 1`) or fanned out across any number of workers. The
//! executor guarantees this by writing each task's result into an
//! indexed slot, so scheduling order never reorders reductions, and by
//! deriving every model seed from the cluster id rather than from
//! execution order.

use dbaugur::exec::Executor;
use dbaugur::{DbAugur, DbAugurConfig};
use dbaugur_cluster::{Descender, DescenderParams};
use dbaugur_dtw::DtwDistance;
use dbaugur_trace::{Trace, TraceKind};
use std::sync::Arc;

const MINUTES: u64 = 180;

fn config_with_threads(threads: usize) -> DbAugurConfig {
    let mut cfg = DbAugurConfig {
        interval_secs: 60,
        history: 10,
        horizon: 1,
        top_k: 4,
        threads,
        ..DbAugurConfig::default()
    };
    cfg.clustering.min_size = 1;
    cfg.fast();
    cfg
}

/// A mixed workload: two lock-step query templates, one off-beat
/// template, and two resource traces — enough structure for several
/// clusters so the per-cluster training fan-out actually fans out.
fn trained_system(threads: usize) -> DbAugur {
    let mut sys = DbAugur::new(config_with_threads(threads));
    for m in 0..MINUTES {
        let lockstep = 3 + (m % 12);
        for k in 0..lockstep {
            sys.ingest_record(m * 60 + k, "SELECT a FROM t1 WHERE id = 1");
            sys.ingest_record(m * 60 + k + 1, "SELECT b FROM t2 WHERE id = 2");
        }
        let other = 2 + (m % 7);
        for k in 0..other {
            sys.ingest_record(m * 60 + 30 + k, "UPDATE t3 SET x = 1 WHERE id = 3");
        }
    }
    sys.add_resource_trace(Trace::new(
        "cpu",
        TraceKind::Resource,
        60,
        (0..MINUTES).map(|i| 0.3 + 0.1 * ((i % 12) as f64 / 12.0)).collect(),
    ));
    sys.add_resource_trace(Trace::new(
        "disk",
        TraceKind::Resource,
        60,
        (0..MINUTES).map(|i| 0.6 + 0.2 * ((i % 9) as f64 / 9.0)).collect(),
    ));
    sys.train(0, MINUTES * 60).expect("trains");
    sys
}

/// Everything observable about trained state, floats captured as raw
/// bits so "close enough" can never pass.
#[derive(Debug, PartialEq, Eq)]
struct StateFingerprint {
    clusters: Vec<ClusterFingerprint>,
    forecasts: Vec<(String, Option<u64>)>,
}

#[derive(Debug, PartialEq, Eq)]
struct ClusterFingerprint {
    cluster_id: usize,
    members: Vec<usize>,
    proportions: Vec<u64>,
    volume: u64,
    representative: Vec<u64>,
    weights: Vec<u64>,
}

fn fingerprint(sys: &DbAugur) -> StateFingerprint {
    let clusters = sys
        .clusters()
        .iter()
        .map(|c| ClusterFingerprint {
            cluster_id: c.summary.cluster_id,
            members: c.summary.members.clone(),
            proportions: c.summary.proportions.iter().map(|p| p.to_bits()).collect(),
            volume: c.summary.volume.to_bits(),
            representative: c.summary.representative.values().iter().map(|v| v.to_bits()).collect(),
            weights: c.weights().iter().map(|w| w.to_bits()).collect(),
        })
        .collect();
    let forecasts = [
        "SELECT a FROM t1 WHERE id = 9",
        "SELECT b FROM t2 WHERE id = 9",
        "UPDATE t3 SET x = 9 WHERE id = 9",
    ]
    .iter()
    .map(|sql| (sql.to_string(), sys.forecast_template(sql).map(f64::to_bits)))
    .chain(
        ["cpu", "disk"]
            .iter()
            .map(|name| (name.to_string(), sys.forecast_trace(name).map(f64::to_bits))),
    )
    .collect();
    StateFingerprint { clusters, forecasts }
}

#[test]
fn parallel_training_is_bitwise_identical_to_sequential() {
    let sequential = trained_system(1);
    let baseline = fingerprint(&sequential);
    assert!(!baseline.clusters.is_empty(), "workload should produce clusters");
    assert!(
        baseline.forecasts.iter().any(|(_, f)| f.is_some()),
        "at least one forecast should resolve"
    );
    for workers in [2, 8] {
        let parallel = trained_system(workers);
        assert_eq!(
            fingerprint(&parallel),
            baseline,
            "{workers}-worker training diverged from sequential"
        );
    }
}

/// The descender's LB-prefilter phase fans out chunked row-blocks
/// whose size depends on the worker count, so different worker counts
/// enumerate candidate pairs through differently-shaped tasks. The
/// clustering must nevertheless be identical: chunk results are
/// re-flattened in row order before any pair is visited.
#[test]
fn chunked_descender_clustering_is_worker_count_invariant() {
    let traces: Vec<Trace> = (0..40)
        .map(|i| {
            let phase = (i % 5) as f64;
            Trace::new(
                format!("t{i}"),
                TraceKind::Query,
                60,
                (0..64)
                    .map(|t| 20.0 + 10.0 * ((t as f64) * 0.3 + phase).sin() + (i as f64) * 0.01)
                    .collect(),
            )
        })
        .collect();
    let cluster_at = |workers: usize| {
        let params = DescenderParams { rho: 6.0, min_size: 3, normalize: true };
        Descender::new(params, DtwDistance::new(10))
            .with_executor(Arc::new(Executor::new(workers)))
            .cluster(&traces)
    };
    let sequential = cluster_at(1);
    assert!(sequential.num_clusters > 0, "workload should produce clusters");
    for workers in [2, 8] {
        let parallel = cluster_at(workers);
        assert_eq!(
            parallel.assignments, sequential.assignments,
            "{workers}-worker chunked clustering diverged from sequential"
        );
        assert_eq!(parallel.num_clusters, sequential.num_clusters);
    }
}

#[test]
fn executor_counters_are_reported_per_train() {
    let sys = trained_system(2);
    let report = sys.last_train_report().expect("train recorded a report");
    assert_eq!(report.exec.workers, 2);
    assert!(report.exec.queued > 0, "clustering + training should queue tasks");
    assert_eq!(
        report.exec.queued, report.exec.executed,
        "every queued task must be accounted for"
    );
}
