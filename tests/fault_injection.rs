//! Fault-injection integration tests (the robustness acceptance
//! criterion): the full pipeline — garbled log ingestion, poisoned and
//! truncated traces, a WFGAN configured to diverge — must never panic,
//! must mark damaged clusters in the [`dbaugur::ClusterTrainReport`],
//! and must keep producing finite forecasts from whatever survives.

use dbaugur::{ClusterStatus, DbAugur, DbAugurConfig};
use dbaugur_trace::{FaultInjector, Trace, TraceKind};

fn tiny_cfg() -> DbAugurConfig {
    let mut cfg = DbAugurConfig {
        interval_secs: 60,
        history: 8,
        horizon: 1,
        top_k: 4,
        ..DbAugurConfig::default()
    };
    cfg.clustering.min_size = 1;
    cfg.fast();
    cfg
}

/// A clean two-template query log at minute cadence.
fn clean_log(minutes: u64) -> String {
    let mut log = String::new();
    for minute in 0..minutes {
        let n = 2 + 5 * u64::from(minute % 10 < 5);
        for q in 0..n {
            log.push_str(&format!(
                "{}\tSELECT * FROM bus WHERE route = {}\n",
                minute * 60 + q,
                minute % 3
            ));
        }
        log.push_str(&format!("{}\tSELECT name FROM stop WHERE id = 7\n", minute * 60 + 30));
    }
    log
}

fn periodic(n: usize, base: f64, amp: f64, period: usize) -> Vec<f64> {
    (0..n).map(|i| base + amp * ((i % period) as f64 / period as f64)).collect()
}

#[test]
fn damaged_workload_degrades_gracefully() {
    let minutes = 120u64;
    let mut inj = FaultInjector::new(2024);

    // Garble the query log, then add unambiguously broken lines so the
    // damage tally is provably non-zero.
    let (mut log, _) = inj.garble_log(&clean_log(minutes), 0.2);
    log.push_str("this line is not a log record\n\u{1}\u{2}binary junk\u{3}\n");

    let mut cfg = tiny_cfg();
    // Force the adversarial member to diverge: an infinite learning rate
    // makes the first optimizer step non-finite, every retry included.
    cfg.wfgan_lr = Some(f64::INFINITY);
    cfg.guard.max_retries = 1;

    let mut sys = DbAugur::new(cfg);
    let ingest = sys.ingest_log_report(&log);
    assert!(ingest.ingested > 0);
    assert!(ingest.skipped >= 2, "broken lines counted: {ingest:?}");

    // A resource trace with NaN holes, and one truncated beyond use.
    let mut cpu = periodic(minutes as usize, 0.4, 0.2, 10);
    let poisoned = inj.nan_runs(&mut cpu, 3, 4);
    assert!(poisoned > 0);
    sys.add_resource_trace(Trace::new("cpu:host1", TraceKind::Resource, 60, cpu));
    let mut short = periodic(minutes as usize, 0.1, 0.1, 7);
    inj.truncate(&mut short, 0.03); // 3 samples < history + horizon + 1
    sys.add_resource_trace(Trace::new("mem:host1", TraceKind::Resource, 60, short));

    let report = sys.train(0, minutes * 60).expect("training survives the damage");

    assert!(report.repaired_samples >= poisoned, "NaN holes interpolated: {report:?}");
    assert_eq!(report.dropped_traces, 1, "truncated trace dropped: {report:?}");
    assert!(report.skipped_log_lines >= 2);
    // The divergent WFGAN degrades every cluster, but none may fail
    // outright: TCN and MLP keep serving.
    assert!(report.degraded_count() >= 1, "report: {report:?}");
    assert_eq!(report.failed_count(), 0, "report: {report:?}");

    for (i, cluster) in sys.clusters().iter().enumerate() {
        assert_ne!(cluster.status(), &ClusterStatus::Failed);
        let states = cluster.member_states();
        assert!(states.iter().any(|s| !s.quarantined), "cluster {i} has survivors");
        let f = sys.forecast_cluster(i).expect("cluster exists");
        assert!(f.is_finite(), "cluster {i} forecast {f} is finite");
        assert_eq!(cluster.try_forecast(sys.config().history), Ok(f));
    }
    // Degraded clusters name the quarantined member in their detail line.
    let degraded = report
        .clusters
        .iter()
        .find(|c| c.status == ClusterStatus::Degraded)
        .expect("at least one degraded cluster");
    assert!(degraded.detail.is_some());
}

#[test]
fn fault_seeds_never_panic_and_reports_stay_consistent() {
    for seed in 0..3u64 {
        let minutes = 100u64;
        let mut inj = FaultInjector::new(seed);
        let (log, _) = inj.garble_log(&clean_log(minutes), 0.1);

        let mut sys = DbAugur::new(tiny_cfg());
        sys.ingest_log_report(&log);

        let mut cpu = periodic(minutes as usize, 0.5, 0.3, 12);
        inj.nan_runs(&mut cpu, 2, 5);
        inj.outlier_bursts(&mut cpu, 2, 3, 50.0);
        let gap = inj.clock_gap(&mut cpu, 8);
        assert!(gap >= 1);
        sys.add_resource_trace(Trace::new("cpu:hostX", TraceKind::Resource, 60, cpu));

        let report = sys.train(0, minutes * 60).expect("trains under injected faults");
        assert_eq!(
            report.clusters.len(),
            sys.clusters().len(),
            "seed {seed}: report covers every trained cluster"
        );
        for i in 0..sys.clusters().len() {
            let f = sys.forecast_cluster(i).expect("indexed cluster");
            assert!(f.is_finite(), "seed {seed} cluster {i} forecast {f}");
        }
        // Observing a poisoned actual must not corrupt the weights.
        if let Some(c) = sys.clusters().first() {
            c.observe(sys.config().history, f64::NAN);
            let w = c.weights();
            assert!(w.iter().all(|x| x.is_finite()), "seed {seed} weights {w:?}");
        }
    }
}
