//! Fault-injection integration tests (the robustness acceptance
//! criterion): the full pipeline — garbled log ingestion, poisoned and
//! truncated traces, a WFGAN configured to diverge — must never panic,
//! must mark damaged clusters in the [`dbaugur::ClusterTrainReport`],
//! and must keep producing finite forecasts from whatever survives.

use dbaugur::{ClusterStatus, DbAugur, DbAugurConfig};
use dbaugur_trace::{FaultInjector, Trace, TraceKind};

fn tiny_cfg() -> DbAugurConfig {
    let mut cfg = DbAugurConfig {
        interval_secs: 60,
        history: 8,
        horizon: 1,
        top_k: 4,
        ..DbAugurConfig::default()
    };
    cfg.clustering.min_size = 1;
    cfg.fast();
    cfg
}

/// A clean two-template query log at minute cadence.
fn clean_log(minutes: u64) -> String {
    let mut log = String::new();
    for minute in 0..minutes {
        let n = 2 + 5 * u64::from(minute % 10 < 5);
        for q in 0..n {
            log.push_str(&format!(
                "{}\tSELECT * FROM bus WHERE route = {}\n",
                minute * 60 + q,
                minute % 3
            ));
        }
        log.push_str(&format!("{}\tSELECT name FROM stop WHERE id = 7\n", minute * 60 + 30));
    }
    log
}

fn periodic(n: usize, base: f64, amp: f64, period: usize) -> Vec<f64> {
    (0..n).map(|i| base + amp * ((i % period) as f64 / period as f64)).collect()
}

#[test]
fn damaged_workload_degrades_gracefully() {
    let minutes = 120u64;
    let mut inj = FaultInjector::new(2024);

    // Garble the query log, then add unambiguously broken lines so the
    // damage tally is provably non-zero.
    let (mut log, _) = inj.garble_log(&clean_log(minutes), 0.2);
    log.push_str("this line is not a log record\n\u{1}\u{2}binary junk\u{3}\n");

    let mut cfg = tiny_cfg();
    // Force the adversarial member to diverge: an infinite learning rate
    // makes the first optimizer step non-finite, every retry included.
    cfg.wfgan_lr = Some(f64::INFINITY);
    cfg.guard.max_retries = 1;

    let mut sys = DbAugur::new(cfg);
    let ingest = sys.ingest_log_report(&log);
    assert!(ingest.ingested > 0);
    assert!(ingest.skipped >= 2, "broken lines counted: {ingest:?}");

    // A resource trace with NaN holes, and one truncated beyond use.
    let mut cpu = periodic(minutes as usize, 0.4, 0.2, 10);
    let poisoned = inj.nan_runs(&mut cpu, 3, 4);
    assert!(poisoned > 0);
    sys.add_resource_trace(Trace::new("cpu:host1", TraceKind::Resource, 60, cpu));
    let mut short = periodic(minutes as usize, 0.1, 0.1, 7);
    inj.truncate(&mut short, 0.03); // 3 samples < history + horizon + 1
    sys.add_resource_trace(Trace::new("mem:host1", TraceKind::Resource, 60, short));

    let report = sys.train(0, minutes * 60).expect("training survives the damage");

    assert!(report.repaired_samples >= poisoned, "NaN holes interpolated: {report:?}");
    assert_eq!(report.dropped_traces, 1, "truncated trace dropped: {report:?}");
    assert!(report.skipped_log_lines >= 2);
    // The divergent WFGAN degrades every cluster, but none may fail
    // outright: TCN and MLP keep serving.
    assert!(report.degraded_count() >= 1, "report: {report:?}");
    assert_eq!(report.failed_count(), 0, "report: {report:?}");

    for (i, cluster) in sys.clusters().iter().enumerate() {
        assert_ne!(cluster.status(), &ClusterStatus::Failed);
        let states = cluster.member_states();
        assert!(states.iter().any(|s| !s.quarantined), "cluster {i} has survivors");
        let f = sys.forecast_cluster(i).expect("cluster exists");
        assert!(f.is_finite(), "cluster {i} forecast {f} is finite");
        assert_eq!(cluster.try_forecast(sys.config().history), Ok(f));
    }
    // Degraded clusters name the quarantined member in their detail line.
    let degraded = report
        .clusters
        .iter()
        .find(|c| c.status == ClusterStatus::Degraded)
        .expect("at least one degraded cluster");
    assert!(degraded.detail.is_some());
}

#[test]
fn fault_seeds_never_panic_and_reports_stay_consistent() {
    for seed in 0..3u64 {
        let minutes = 100u64;
        let mut inj = FaultInjector::new(seed);
        let (log, _) = inj.garble_log(&clean_log(minutes), 0.1);

        let mut sys = DbAugur::new(tiny_cfg());
        sys.ingest_log_report(&log);

        let mut cpu = periodic(minutes as usize, 0.5, 0.3, 12);
        inj.nan_runs(&mut cpu, 2, 5);
        inj.outlier_bursts(&mut cpu, 2, 3, 50.0);
        let gap = inj.clock_gap(&mut cpu, 8);
        assert!(gap >= 1);
        sys.add_resource_trace(Trace::new("cpu:hostX", TraceKind::Resource, 60, cpu));

        let report = sys.train(0, minutes * 60).expect("trains under injected faults");
        assert_eq!(
            report.clusters.len(),
            sys.clusters().len(),
            "seed {seed}: report covers every trained cluster"
        );
        for i in 0..sys.clusters().len() {
            let f = sys.forecast_cluster(i).expect("indexed cluster");
            assert!(f.is_finite(), "seed {seed} cluster {i} forecast {f}");
        }
        // Observing a poisoned actual must not corrupt the weights.
        if let Some(c) = sys.clusters().first() {
            c.observe(sys.config().history, f64::NAN);
            let w = c.weights();
            assert!(w.iter().all(|x| x.is_finite()), "seed {seed} weights {w:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Op-count fault schedules spanning the crash boundary: bursts armed at
// an absolute write-op index survive the crash (the switch outlives the
// store) and land inside recovery — during WAL replay bookkeeping,
// marker resume, or the post-replay checkpoint — not just in steady
// state. Recovery must either come back whole or fail cleanly and come
// back whole on the retry; acked observations must never be lost.

use dbaugur::{DurableDbAugur, DynVfs, FaultKind, FaultSwitch, FaultyVfs, MemVfs};
use dbaugur_shard::ShardedDurable;
use dbaugur_sqlproc::canonicalize;
use std::path::PathBuf;
use std::sync::Arc;

fn faulty_mem() -> (DynVfs, Arc<FaultSwitch>) {
    let switch = FaultSwitch::new();
    switch.set_stall_micros(0);
    let vfs: DynVfs =
        Arc::new(FaultyVfs::new(Arc::new(MemVfs::new()), Arc::clone(&switch)));
    (vfs, switch)
}

fn shard_cfg(shards: usize) -> DbAugurConfig {
    DbAugurConfig { shards, ..DbAugurConfig::default() }
}

/// Total resident observations of `sql` across every shard.
fn resident(sys: &ShardedDurable, sql: &str) -> usize {
    let canonical = canonicalize(sql);
    (0..sys.num_shards())
        .map(|i| {
            let reg = sys.shard(i).system().registry();
            reg.lookup(&canonical).map_or(0, |tid| reg.count(tid))
        })
        .sum()
}

#[test]
fn seeded_fault_matrix_spans_the_crash_boundary() {
    let kinds = [FaultKind::Enospc, FaultKind::Eio, FaultKind::ShortWrite];
    // Offsets relative to the op counter at arm time. Small offsets hit
    // the pre-crash ingest tail; large ones outlive it and land in the
    // recovery write path of the reopen.
    let offsets = [0u64, 1, 3, 7, 13, 23];
    let templates = ["SELECT a FROM boundary_a WHERE id = 1", "UPDATE boundary_b SET v = 2"];
    for (ki, kind) in kinds.into_iter().enumerate() {
        for (oi, &offset) in offsets.iter().enumerate() {
            let (vfs, switch) = faulty_mem();
            let root = PathBuf::from(format!("/boundary/{ki}/{oi}"));
            let mut sys =
                ShardedDurable::open_with_vfs(&vfs, &root, shard_cfg(2)).expect("open");
            let mut acked = [0usize; 2];
            for ts in 0..30u64 {
                let t = (ts % 2) as usize;
                sys.ingest_record(ts, templates[t]).expect("clean ingest");
                acked[t] += 1;
            }
            // Arm the burst at an absolute op index, then keep writing
            // into (and possibly past) it before the crash.
            switch.arm_at(switch.write_ops() + offset, kind, 2);
            for ts in 30..36u64 {
                let t = (ts % 2) as usize;
                if sys.ingest_record(ts, templates[t]).is_ok() {
                    acked[t] += 1;
                }
            }
            drop(sys); // crash: in-memory state gone, the switch survives
            let sys = match ShardedDurable::open_with_vfs(&vfs, &root, shard_cfg(2)) {
                Ok(sys) => sys,
                Err(_) => {
                    // The scheduled burst fired inside recovery. The
                    // fault is transient: clear it and recover again.
                    switch.clear_scheduled();
                    switch.clear();
                    ShardedDurable::open_with_vfs(&vfs, &root, shard_cfg(2))
                        .unwrap_or_else(|e| {
                            panic!("retry after {kind:?}@+{offset} must recover: {e}")
                        })
                }
            };
            switch.clear_scheduled();
            switch.clear();
            for (t, sql) in templates.iter().enumerate() {
                let got = resident(&sys, sql);
                assert!(
                    got >= acked[t],
                    "{kind:?}@+{offset}: template {t} lost acked observations \
                     ({got} resident < {} acked)",
                    acked[t]
                );
            }
            // Liveness: the recovered system keeps acking new records.
            let mut sys = sys;
            sys.ingest_record(1_000, templates[0]).expect("post-recovery ingest");
            assert!(resident(&sys, templates[0]) > acked[0]);
        }
    }
}

#[test]
fn recovery_faults_during_wal_replay_and_snapshot_fallback() {
    for (ci, kind) in [FaultKind::Enospc, FaultKind::Eio].into_iter().enumerate() {
        let (vfs, switch) = faulty_mem();
        let dir = PathBuf::from(format!("/fallback/{ci}"));
        let mut cfg = tiny_cfg();
        cfg.shards = 1;
        let (mut durable, _) =
            DurableDbAugur::open_with_vfs(&vfs, &dir, cfg.clone()).expect("open");
        for ts in 0..40u64 {
            durable.ingest_record(ts, "SELECT g1 FROM snapshotted").expect("ingest");
        }
        durable.checkpoint().expect("generation 1");
        // Records that exist only in the WAL at crash time.
        for i in 0..5u64 {
            durable
                .ingest_record(100 + i, &format!("SELECT w{i} FROM wal_only_{i}"))
                .expect("wal-only ingest");
        }
        let pre_templates = durable.system().num_templates();
        drop(durable);

        // The newest generation lands torn (media error): recovery must
        // fall back to generation 1 and replay the intact WAL — while a
        // fault burst scheduled before the crash fires mid-recovery.
        let gen1 = vfs.read(&dir.join("snap-000001.dbag")).expect("gen1 bytes");
        vfs.write_atomic(&dir.join("snap-000002.dbag"), &gen1[..gen1.len() / 2])
            .expect("torn gen2");
        switch.arm_at(switch.write_ops() + 1, kind, 2);
        let (recovered, report) = match DurableDbAugur::open_with_vfs(&vfs, &dir, cfg.clone()) {
            Ok(ok) => ok,
            Err(_) => {
                switch.clear_scheduled();
                switch.clear();
                DurableDbAugur::open_with_vfs(&vfs, &dir, cfg.clone())
                    .unwrap_or_else(|e| panic!("{kind:?} retry must recover: {e}"))
            }
        };
        switch.clear_scheduled();
        switch.clear();
        assert_eq!(report.generation, Some(1), "{kind:?}: fell back past the torn generation");
        assert_eq!(report.corrupted_generations, 1, "{kind:?}: torn generation counted");
        assert!(!report.wal_torn, "{kind:?}: WAL intact");
        assert_eq!(report.wal_applied, 5, "{kind:?}: every WAL-only record replayed");
        assert_eq!(
            recovered.system().num_templates(),
            pre_templates,
            "{kind:?}: state matches the pre-crash acked set"
        );
    }
}
