//! Chaos/soak test: the serving layer under a seeded 10× burst flood
//! with injected slow tasks, consumer stalls, and poison templates.
//!
//! The acceptance bar (ISSUE 4): forecasts meet their deadline or come
//! back explicitly degraded; shed and admitted counts reconcile with
//! offered load; memory stays under budget with evictions observed
//! doing the bounding; and throughput recovers after the burst. All of
//! it runs in virtual time, so this "soak" takes milliseconds and
//! reproduces exactly from its seed.

use dbaugur_serve::soak::{run_soak, SoakConfig, SoakReport};
use dbaugur_serve::{Governor, ServeConfig, SimEngine, VirtualClock};

fn overload_cfg() -> SoakConfig {
    // The default scenario is already a 10x periodic flood with spikes,
    // stalls, and poison templates; pin it here so the test is
    // self-describing and stays meaningful if defaults drift.
    SoakConfig {
        seed: 0xD8A6,
        ticks: 400,
        base_ingest_per_tick: 20,
        burst_every: 40,
        burst_mult: 10,
        forecasts_per_tick: 4,
        ..SoakConfig::default()
    }
}

#[test]
fn soak_books_reconcile_under_burst_flood() {
    let cfg = overload_cfg();
    let rep = run_soak(&cfg);
    assert!(rep.reconciled, "every tick's books must balance: {:?}", rep.stats);
    // Offered load all landed somewhere explicit.
    let s = &rep.stats;
    assert_eq!(
        s.offered_forecasts,
        s.admitted_forecasts + s.shed_forecast_queue_full + s.shed_forecast_rate_limited
    );
    assert_eq!(
        s.offered_ingest,
        s.admitted_ingest + s.shed_ingest_queue_full + s.shed_ingest_rate_limited
    );
    // The flood actually overloaded the front door, and sheds were
    // counted rather than silently dropped.
    assert!(s.shed_total() > 0, "a 10x flood must shed: {s:?}");
    assert_eq!(rep.final_queues, (0, 0), "drain leaves nothing behind");
    assert_eq!(
        s.admitted_forecasts,
        s.completed_fresh + s.completed_degraded,
        "every admitted forecast was answered"
    );
    assert_eq!(s.admitted_ingest, s.ingested, "every admitted record was applied");
}

#[test]
fn soak_memory_stays_bounded_with_observed_evictions() {
    let cfg = overload_cfg();
    let rep = run_soak(&cfg);
    assert!(
        rep.memory_high_water_within(&cfg),
        "high water {} vs budget {}",
        rep.memory_high_water,
        cfg.serve.memory_budget_bytes
    );
    assert!(rep.stats.eviction_passes > 0, "poison templates must force eviction");
    assert!(rep.engine_evictions > 0, "evictions observed at the engine");
    assert!(rep.stats.eviction_bytes > 0);
}

#[test]
fn soak_forecasts_meet_deadline_or_are_marked_degraded() {
    let cfg = overload_cfg();
    let rep = run_soak(&cfg);
    // Every admitted forecast was answered — fresh within deadline, or
    // explicitly degraded. No third, silent fate exists.
    assert_eq!(
        rep.stats.admitted_forecasts,
        rep.stats.completed_fresh + rep.stats.completed_degraded
    );
    assert!(rep.stats.completed_fresh > 0, "the loop must serve fresh answers too");
    // Under stalls and spikes some deadlines are missed; those must
    // surface as degraded, proving the path is exercised.
    assert!(rep.stats.completed_degraded > 0, "chaos must trigger marked degradation");
    // Latency honors the configured deadline + one tick of queueing slop.
    let bound = (cfg.serve.forecast_deadline_ms + cfg.serve.tick_budget_ms) as f64;
    assert!(
        rep.latency_p99_ms <= bound,
        "p99 {} must stay under deadline+tick {}",
        rep.latency_p99_ms,
        bound
    );
}

#[test]
fn soak_throughput_recovers_after_burst() {
    let cfg = overload_cfg();
    let rep = run_soak(&cfg);
    assert!(
        rep.recovered(),
        "fresh ({}) must dominate degraded ({}) in the quiet tail",
        rep.tail_fresh,
        rep.tail_degraded
    );
    // The run saw trouble AND health came back.
    assert!(rep.health_ticks.1 + rep.health_ticks.2 > 0, "flood must perturb health");
    assert!(rep.health_ticks.0 > 0, "health must return between/after bursts");
    assert!(rep.passed(&cfg), "the composite pass criteria hold");
}

#[test]
fn drift_shift_recovers_without_shed_regression() {
    // Same flood, plus a mid-run regime shift: the template mix swaps
    // wholesale (old hot set goes cold) at volume parity. Serving must
    // recover to healthy fresh forecasts within a small number of
    // ticks, and the shift itself must not worsen the shed rate.
    let cfg = SoakConfig { drift_shift_at_frac: 0.5, drift_shift_mult: 1, ..overload_cfg() };
    let rep = run_soak(&cfg);
    assert!(rep.reconciled, "books balance across the shift");
    let shift = rep.shift_tick.expect("shift enabled");
    assert!(shift >= cfg.ticks / 2 && shift < cfg.ticks, "shift lands mid-run: {shift}");
    let recovery = rep
        .post_shift_recovery_ticks
        .expect("forecasts must recover after the regime shift");
    assert!(recovery <= 50, "recovery within 50 ticks of the shift, took {recovery}");
    // At volume parity a pure mix shift must not regress shedding. The
    // pre- and post-shift windows of a single run see different chaos
    // plans (burst phase, stall runs cluster unevenly), so the
    // controlled comparison is against the same seed with the shift
    // disabled: the shift is drawn last, leaving every other plan
    // byte-identical (the invariant pinned by
    // `disabled_drift_shift_is_identical_to_baseline`). Small absolute
    // slack for queue-drain timing.
    let base = run_soak(&overload_cfg());
    let total_rate = |r: &SoakReport| {
        let off = r.stats.offered_forecasts + r.stats.offered_ingest;
        if off == 0 {
            0.0
        } else {
            r.stats.shed_total() as f64 / off as f64
        }
    };
    assert!(
        total_rate(&rep) <= total_rate(&base) + 0.05,
        "shed rate regressed under the shift: baseline {} -> shifted {}",
        total_rate(&base),
        total_rate(&rep)
    );
    assert!(rep.passed(&cfg), "composite criteria hold under the shift");
}

#[test]
fn disabled_drift_shift_is_identical_to_baseline() {
    // The shift knobs are additive: leaving them at their defaults must
    // reproduce the pre-shift scenario exactly, seeded plan for plan.
    let base = run_soak(&overload_cfg());
    let explicit = run_soak(&SoakConfig {
        drift_shift_at_frac: 0.0,
        drift_shift_mult: 7,
        ..overload_cfg()
    });
    assert_eq!(base.stats, explicit.stats, "disabled shift never perturbs the run");
    assert_eq!(base.health_ticks, explicit.health_ticks);
    assert_eq!(base.shift_tick, None);
    assert_eq!(base.post_shift_recovery_ticks, None);
}

#[test]
fn soak_is_reproducible_from_seed() {
    let cfg = overload_cfg();
    let a = run_soak(&cfg);
    let b = run_soak(&cfg);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.memory_high_water, b.memory_high_water);
    assert_eq!(a.latency_p99_ms, b.latency_p99_ms);
    assert_eq!(a.health_ticks, b.health_ticks);
}

#[test]
fn forecasts_never_blocked_behind_ingest_beyond_deadline() {
    // Direct adversarial check of the priority inversion the soak
    // guards against: a deep bulk-ingest backlog, then one forecast.
    let cfg = ServeConfig {
        ingest_queue_cap: 1024,
        rate_capacity: 1e9,
        refill_per_ms: 1e9,
        tick_budget_ms: 50,
        forecast_deadline_ms: 40,
        ..ServeConfig::default()
    };
    let mut gov = Governor::new(cfg, SimEngine::new(32), VirtualClock::new());
    for i in 0..1000u64 {
        gov.submit_ingest(i, "INSERT INTO bulk VALUES (1)", 1);
    }
    assert!(gov.submit_forecast("SELECT a FROM bulk", 5).is_admitted());
    let rep = gov.run_tick(0);
    assert_eq!(
        rep.served_fresh, 1,
        "the forecast must cut ahead of 1000 queued ingest records"
    );
    assert!(rep.ingested < 1000, "ingest got only the leftover budget");
    assert!(gov.reconciles());
}
