//! End-to-end integration tests: query log → templates → clustering →
//! ensemble → forecasts, across crate boundaries.

use dbaugur::{DbAugur, DbAugurConfig, TrainError};
use dbaugur_trace::{Trace, TraceKind};

fn tiny_config() -> DbAugurConfig {
    let mut cfg = DbAugurConfig {
        interval_secs: 60,
        history: 10,
        horizon: 1,
        top_k: 4,
        ..DbAugurConfig::default()
    };
    cfg.clustering.min_size = 1;
    cfg.fast();
    cfg
}

/// A log where two templates arrive in lock-step (should cluster) and a
/// third follows a different pattern.
fn build_log(minutes: u64) -> String {
    let mut log = String::new();
    for m in 0..minutes {
        let lockstep = 3 + (m % 12);
        for k in 0..lockstep {
            log.push_str(&format!("{}\tSELECT a FROM t1 WHERE id = {k}\n", m * 60 + k));
            log.push_str(&format!("{}\tSELECT b FROM t2 WHERE id = {k}\n", m * 60 + k + 1));
        }
        let other = 2 + (m % 7);
        for k in 0..other {
            log.push_str(&format!("{}\tUPDATE t3 SET x = {k} WHERE id = {k}\n", m * 60 + 30 + k));
        }
    }
    log
}

#[test]
fn log_to_forecast_roundtrip() {
    let mut sys = DbAugur::new(tiny_config());
    let n = sys.ingest_log(&build_log(180));
    assert!(n > 1000, "log should carry plenty of records, got {n}");
    assert_eq!(sys.num_templates(), 3);
    sys.train(0, 180 * 60).expect("trains");
    // Every template of a top-K cluster yields a finite forecast.
    for sql in [
        "SELECT a FROM t1 WHERE id = 999",
        "SELECT b FROM t2 WHERE id = 999",
        "UPDATE t3 SET x = 1 WHERE id = 1",
    ] {
        let f = sys.forecast_template(sql).expect("template is clustered");
        assert!(f.is_finite());
        assert!(f >= -1.0, "arrival-rate forecast should not be badly negative: {f}");
    }
}

#[test]
fn lockstep_templates_share_a_cluster() {
    let mut sys = DbAugur::new(tiny_config());
    sys.ingest_log(&build_log(180));
    sys.train(0, 180 * 60).expect("trains");
    // Find the clusters holding templates 0 and 1 (the lock-step pair).
    let find = |sys: &DbAugur, sql: &str| -> Option<usize> {
        sys.clusters().iter().position(|c| {
            // A cluster containing the template produces its forecast.
            let f = sys.forecast_template(sql);
            f.is_some() && {
                let rep = c.forecast(sys.config().history);
                rep.is_finite()
            }
        })
    };
    // Weaker but robust check: both resolve to *some* forecast and the
    // pipeline kept them in the same cluster id (identical projections
    // imply identical cluster predictions scaled by proportion).
    assert!(find(&sys, "SELECT a FROM t1 WHERE id = 1").is_some());
    assert!(find(&sys, "SELECT b FROM t2 WHERE id = 1").is_some());
}

#[test]
fn mixed_query_and_resource_traces() {
    let mut sys = DbAugur::new(tiny_config());
    sys.ingest_log(&build_log(120));
    sys.add_resource_trace(Trace::new(
        "cpu",
        TraceKind::Resource,
        60,
        (0..120).map(|i| 0.3 + 0.1 * ((i % 12) as f64 / 12.0)).collect(),
    ));
    sys.add_resource_trace(Trace::new(
        "disk",
        TraceKind::Resource,
        60,
        (0..120).map(|i| 0.6 + 0.2 * ((i % 9) as f64 / 9.0)).collect(),
    ));
    sys.train(0, 120 * 60).expect("trains");
    assert!(sys.forecast_trace("cpu").expect("cpu clustered").is_finite());
    assert!(sys.forecast_trace("disk").expect("disk clustered").is_finite());
}

#[test]
fn malformed_log_lines_are_skipped_not_fatal() {
    let mut sys = DbAugur::new(tiny_config());
    let log = "garbage line\n100\tSELECT a FROM t\nnot_a_ts\tSELECT b FROM t\n\n200\tSELECT a FROM t\n";
    let n = sys.ingest_log(log);
    assert_eq!(n, 2);
    assert_eq!(sys.num_templates(), 1);
}

#[test]
fn train_errors_are_typed() {
    let mut sys = DbAugur::new(tiny_config());
    assert_eq!(sys.train(0, 100), Err(TrainError::NoTraces));
    sys.ingest_record(0, "SELECT 1 FROM t");
    assert!(matches!(sys.train(0, 120), Err(TrainError::NotEnoughData { .. })));
}

#[test]
fn forecasts_update_after_retraining_on_new_window() {
    let mut sys = DbAugur::new(tiny_config());
    // Phase 1: low constant rate. Phase 2: much higher rate.
    for m in 0..120u64 {
        let rate = if m < 60 { 2 } else { 20 };
        for k in 0..rate {
            sys.ingest_record(m * 60 + k, "SELECT a FROM t WHERE id = 1");
        }
    }
    sys.train(0, 60 * 60).expect("trains on phase 1");
    let low = sys.forecast_template("SELECT a FROM t WHERE id = 1").expect("clustered");
    sys.train(60 * 60, 120 * 60).expect("trains on phase 2");
    let high = sys.forecast_template("SELECT a FROM t WHERE id = 1").expect("clustered");
    assert!(
        high > low,
        "retrained forecast ({high:.2}) should reflect the higher rate (was {low:.2})"
    );
}
