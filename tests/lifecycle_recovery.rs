//! End-to-end acceptance for the closed-loop model lifecycle: a regime
//! shift drives a cluster into quarantine, the lifecycle manager
//! retrains a challenger, shadow-evaluates it against the incumbent,
//! promotes the winner, and the cluster serves full-quality forecasts
//! again — deterministically at any worker count. The losing path is
//! exercised too: a challenger that cannot clear the gate is rejected
//! and the incumbent keeps serving.

use dbaugur::{DbAugur, DbAugurConfig, DriftState, ForecastError};
use dbaugur_exec::Deadline;
use dbaugur_lifecycle::{LifecycleConfig, LifecycleManager, PromotionKind};

fn cfg(threads: usize) -> DbAugurConfig {
    let mut cfg = DbAugurConfig {
        interval_secs: 60,
        history: 8,
        horizon: 1,
        top_k: 3,
        threads,
        ..DbAugurConfig::default()
    };
    cfg.clustering.min_size = 1;
    cfg.fast();
    // Enough budget that a fresh challenger can actually learn the
    // shifted regime it is shadow-scored on.
    cfg.epochs = 12;
    cfg.max_examples = 256;
    cfg
}

fn trained_system(threads: usize) -> DbAugur {
    let mut sys = DbAugur::new(cfg(threads));
    for minute in 0..120u64 {
        let n = 2 + 5 * u64::from(minute % 10 < 5);
        for q in 0..n {
            sys.ingest_record(minute * 60 + q, "SELECT * FROM t WHERE a = 1");
        }
    }
    sys.train(0, 120 * 60).expect("trains");
    sys
}

/// Zero-error warmup, then a sustained square-wave regime shift long
/// enough that the recent-observation buffer holds a learnable picture
/// of the new regime.
fn shift_regime(sys: &DbAugur, i: usize) {
    let history = sys.config().history;
    let c = &sys.clusters()[i];
    let warm = sys.config().drift.warmup + sys.config().drift.window;
    for _ in 0..warm {
        let f = c.forecast(history);
        c.observe(history, f);
    }
    for k in 0..320 {
        c.observe(history, 50.0 + 15.0 * f64::from(k % 10 < 5));
    }
    assert_eq!(c.drift_state(), DriftState::Quarantined, "the shift must quarantine");
}

fn lenient() -> LifecycleConfig {
    LifecycleConfig {
        min_improvement: 0.01,
        min_eval_windows: 2,
        shadow_folds: 6,
        cooldown_ticks: 3,
        ..LifecycleConfig::default()
    }
}

/// Run the full loop once and return (manager, system) after promotion.
fn recover_from_shift(threads: usize) -> (LifecycleManager, DbAugur) {
    let mut sys = trained_system(threads);
    shift_regime(&sys, 0);
    assert_eq!(
        sys.clusters()[0].try_forecast(sys.config().history),
        Err(ForecastError::Quarantined),
        "full-quality forecasts refused while quarantined"
    );
    let mut mgr = LifecycleManager::new(lenient());
    let rep = mgr.tick(&mut sys, &Deadline::none());
    assert_eq!(rep.flagged, 1, "quarantined cluster flagged: {rep:?}");
    assert_eq!(rep.promoted, vec![0], "challenger promoted: {rep:?} {:?}", mgr.events());
    (mgr, sys)
}

#[test]
fn shifted_cluster_recovers_to_serving_forecasts() {
    let (mgr, sys) = recover_from_shift(2);
    let c = &sys.clusters()[0];
    assert_eq!(c.generation(), 1, "promotion bumps the serving generation");
    assert_eq!(c.drift_state(), DriftState::Warmup, "quarantine cleared on promotion");
    let f = c.try_forecast(sys.config().history).expect("forecasts flow again");
    assert!(f.is_finite());
    // The audit trail shows the decision and both scores.
    let ev = mgr.events().last().expect("promotion audited");
    assert_eq!(ev.kind, PromotionKind::Promoted);
    assert!(ev.challenger_smape.is_finite());
    // The challenger measurably beat the stale champion (or the
    // champion was unscorable); either way accuracy never regressed.
    if ev.champion_smape.is_finite() {
        assert!(
            ev.challenger_smape <= ev.champion_smape,
            "promoted challenger must not be worse: {} vs {}",
            ev.challenger_smape,
            ev.champion_smape
        );
    }
}

#[test]
fn recovery_is_identical_at_one_and_eight_workers() {
    let (mgr1, sys1) = recover_from_shift(1);
    let (mgr8, sys8) = recover_from_shift(8);
    assert_eq!(sys1.clusters()[0].generation(), sys8.clusters()[0].generation());
    let h = sys1.config().history;
    let f1 = sys1.clusters()[0].try_forecast(h).expect("serves");
    let f8 = sys8.clusters()[0].try_forecast(h).expect("serves");
    assert_eq!(
        f1.to_bits(),
        f8.to_bits(),
        "promoted model is bit-identical at 1 vs 8 workers: {f1} vs {f8}"
    );
    let e1 = mgr1.events().last().expect("event");
    let e8 = mgr8.events().last().expect("event");
    assert_eq!(e1.kind, e8.kind);
    assert_eq!(e1.generation, e8.generation);
    assert_eq!(
        e1.challenger_smape.to_bits(),
        e8.challenger_smape.to_bits(),
        "shadow scores are worker-count independent"
    );
}

#[test]
fn losing_challenger_is_rejected_and_incumbent_keeps_serving() {
    let mut sys = trained_system(2);
    shift_regime(&sys, 0);
    // An absurd bar: the challenger must be 99% better, which a
    // one-cluster square wave cannot deliver.
    let mut mgr = LifecycleManager::new(LifecycleConfig {
        min_improvement: 0.99,
        ..lenient()
    });
    let rep = mgr.tick(&mut sys, &Deadline::none());
    assert_eq!(rep.attempted, 1);
    assert_eq!(rep.rejected, vec![0], "the gate holds: {rep:?}");
    assert!(rep.promoted.is_empty());
    // Nothing changed for the serving path: same generation, degraded
    // floor answers still available, no model archived.
    let c = &sys.clusters()[0];
    assert_eq!(c.generation(), 0);
    assert_eq!(c.drift_state(), DriftState::Quarantined);
    let f = sys.forecast_cluster(0).expect("floor still serves");
    assert!(f.is_finite());
    assert_eq!(mgr.registry().generations(0), 0, "rejected challengers are not archived");
    assert_eq!(mgr.events().last().expect("audited").kind, PromotionKind::Rejected);
}
