//! Seeded property tests for the fast compute kernels: the blocked
//! matmul family, the banded DTW inner loop, and batched forecaster
//! inference must be **bitwise-identical** to their naive references
//! across ragged shapes, empty inputs, and degenerate band widths.
//! Every comparison goes through `f64::to_bits`, so "close enough"
//! can never pass.

use dbaugur_dtw::{
    dtw_distance_early_abandon_reference, dtw_distance_early_abandon_scratch, DtwScratch,
};
use dbaugur_models::{Forecaster, MlpForecaster};
use dbaugur_nn::Mat;
use dbaugur_trace::WindowSpec;
use proptest::prelude::*;

/// Deterministic value stream with exact zeros sprinkled in (every 7th
/// element), so the kernels are exercised on the zero entries whose
/// special-casing the old matmul used for its non-finite-masking skip.
fn probe_mat(rows: usize, cols: usize, seed: usize) -> Mat {
    Mat::from_fn(rows, cols, |r, c| {
        let i = r * cols + c + seed;
        if i.is_multiple_of(7) {
            0.0
        } else {
            ((i as f64) * 0.377).sin() * 10.0
        }
    })
}

fn bits(m: &Mat) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn probe_series(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64;
            50.0 + 30.0 * ((i as f64) * 0.07).sin() + 10.0 * noise
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked/AVX2 matmul, t_matmul, and matmul_t match the naive
    /// reference bitwise for arbitrary ragged shapes — including zero
    /// dimensions, shapes smaller than one register tile, and shapes
    /// that straddle tile boundaries.
    #[test]
    fn blocked_matmul_family_matches_reference_bitwise(
        m in 0usize..13,
        k in 0usize..13,
        n in 0usize..13,
        seed in 0usize..1000,
    ) {
        let a = probe_mat(m, k, seed);
        let b = probe_mat(k, n, seed + 1);
        prop_assert_eq!(bits(&a.matmul(&b)), bits(&a.matmul_reference(&b)));

        // t_matmul computes selfᵀ × rhs: self is (k × m), rhs (k × n).
        let at = probe_mat(k, m, seed + 2);
        prop_assert_eq!(bits(&at.t_matmul(&b)), bits(&at.t_matmul_reference(&b)));

        // matmul_t computes self × rhsᵀ: self is (m × k), rhs (n × k).
        let bt = probe_mat(n, k, seed + 3);
        prop_assert_eq!(bits(&a.matmul_t(&bt)), bits(&a.matmul_t_reference(&bt)));
    }

    /// The banded DTW kernel matches the pre-optimization reference
    /// bitwise for ragged lengths (empty series included), band widths
    /// 0 / 1 / huge, and both finite and infinite early-abandon
    /// cutoffs.
    #[test]
    fn banded_dtw_matches_reference_bitwise(
        alen in 0usize..40,
        blen in 0usize..40,
        window in prop::sample::select(vec![0usize, 1, 3, 9, usize::MAX]),
        cutoff in prop::sample::select(vec![f64::INFINITY, 40.0, 5.0, 0.5]),
        seed in 0u64..1000,
    ) {
        let a = probe_series(alen, seed);
        let b = probe_series(blen, seed.wrapping_add(17));
        let mut scratch = DtwScratch::new();
        let fast = dtw_distance_early_abandon_scratch(&a, &b, window, cutoff, &mut scratch);
        let reference = dtw_distance_early_abandon_reference(&a, &b, window, cutoff);
        prop_assert_eq!(fast.to_bits(), reference.to_bits());
        // The scratch buffers are reused across calls in production;
        // a second call on the same scratch must see no stale state.
        let again = dtw_distance_early_abandon_scratch(&a, &b, window, cutoff, &mut scratch);
        prop_assert_eq!(again.to_bits(), reference.to_bits());
    }

    /// Batched MLP inference (one matmul for N windows) returns exactly
    /// what N independent `predict` calls return, for any batch size
    /// and seed.
    #[test]
    fn batched_mlp_predict_matches_looped_bitwise(
        seed in 0u64..30,
        batch in 1usize..8,
    ) {
        let series = probe_series(60, seed);
        let history = 8usize;
        let mut model = MlpForecaster::new(seed).with_epochs(2);
        model.fit(&series, WindowSpec::new(history, 1));
        let windows: Vec<Vec<f64>> = (0..batch)
            .map(|i| probe_series(history, seed.wrapping_add(100 + i as u64)))
            .collect();
        let refs: Vec<&[f64]> = windows.iter().map(Vec::as_slice).collect();
        let batched = model.predict_batch(&refs);
        let looped: Vec<f64> = refs.iter().map(|w| model.predict(w)).collect();
        prop_assert_eq!(
            batched.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            looped.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
