//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, spanning sqlproc, dtw, cluster, and models.

use dbaugur_cluster::{Descender, DescenderParams};
use dbaugur_dtw::{dtw_distance, DtwDistance};
use dbaugur_models::combine_time_sensitive;
use dbaugur_sqlproc::{canonicalize, templatize, TemplateRegistry};
use dbaugur_trace::{Trace, WindowDataset, WindowSpec};
use proptest::prelude::*;

/// Generator for simple but structurally varied SELECT statements.
fn sql_strategy() -> impl Strategy<Value = String> {
    let ident = || prop::sample::select(vec!["alpha", "beta", "gamma", "delta", "t1", "t2"]);
    let cols = prop::collection::vec(ident(), 1..4);
    (cols, ident(), prop::collection::vec((ident(), 0i64..1000), 0..3)).prop_map(
        |(cols, table, preds)| {
            let col_list = cols.join(", ");
            let mut sql = format!("SELECT {col_list} FROM {table}");
            if !preds.is_empty() {
                let conds: Vec<String> =
                    preds.iter().map(|(c, v)| format!("{c} = {v}")).collect();
                sql.push_str(&format!(" WHERE {}", conds.join(" AND ")));
            }
            sql
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonicalization is idempotent: re-canonicalizing the canonical
    /// form is a fixed point.
    #[test]
    fn canonicalize_is_idempotent(sql in sql_strategy()) {
        let once = canonicalize(&sql);
        let twice = canonicalize(&once);
        prop_assert_eq!(once, twice);
    }

    /// Templates are invariant under literal substitution.
    #[test]
    fn template_ignores_literal_values(
        sql in sql_strategy(),
        a in 0i64..100000,
        b in 0i64..100000,
    ) {
        let with_a = sql.replace("= 1", &format!("= {a}"));
        let with_b = sql.replace("= 1", &format!("= {b}"));
        prop_assert_eq!(templatize(&with_a), templatize(&with_b));
    }

    /// SELECT-list permutation never changes the canonical form.
    #[test]
    fn select_list_permutation_is_invisible(
        mut cols in prop::collection::vec(
            prop::sample::select(vec!["a", "b", "c", "d"]), 2..4),
    ) {
        cols.sort();
        cols.dedup();
        prop_assume!(cols.len() >= 2);
        let fwd = format!("SELECT {} FROM t", cols.join(", "));
        cols.reverse();
        let rev = format!("SELECT {} FROM t", cols.join(", "));
        prop_assert_eq!(canonicalize(&fwd), canonicalize(&rev));
    }

    /// Every observation within range lands in exactly one bin: the
    /// binned trace volumes conserve the observation count.
    #[test]
    fn arrival_binning_conserves_counts(
        timestamps in prop::collection::vec(0u64..3600, 1..200),
        interval in 1u64..600,
    ) {
        let mut reg = TemplateRegistry::new();
        for &ts in &timestamps {
            reg.observe("SELECT a FROM t WHERE id = 1", ts);
        }
        let end = 3600 - 3600 % interval; // whole bins only
        let set = reg.arrival_traces(0, end.max(interval), interval);
        let in_range = timestamps.iter().filter(|&&t| t < end.max(interval)).count();
        let binned: f64 = set.traces()[0].volume();
        prop_assert_eq!(binned as usize, in_range);
    }

    /// DTW distance never exceeds the window-free DTW of the reversed
    /// band ordering; and is invariant under argument swap.
    #[test]
    fn dtw_swap_invariance(
        a in prop::collection::vec(-100.0f64..100.0, 2..20),
        b in prop::collection::vec(-100.0f64..100.0, 2..20),
        w in 0usize..12,
    ) {
        let d1 = dtw_distance(&a, &b, w);
        let d2 = dtw_distance(&b, &a, w);
        if d1.is_finite() || d2.is_finite() {
            prop_assert!((d1 - d2).abs() < 1e-9, "{d1} vs {d2}");
        }
    }

    /// Descender is deterministic and total: every trace is either in a
    /// cluster or an outlier, never both.
    #[test]
    fn clustering_is_deterministic_and_total(
        seeds in prop::collection::vec(0u64..50, 2..10),
        rho in 0.5f64..8.0,
    ) {
        let traces: Vec<Trace> = seeds
            .iter()
            .map(|&s| {
                Trace::query(
                    format!("t{s}"),
                    (0..32).map(|i| ((i as f64 * 0.3 + s as f64).sin()) * 5.0).collect(),
                )
            })
            .collect();
        let params = DescenderParams { rho, min_size: 2, normalize: true };
        let c1 = Descender::new(params, DtwDistance::new(4)).cluster(&traces);
        let c2 = Descender::new(params, DtwDistance::new(4)).cluster(&traces);
        prop_assert_eq!(&c1.assignments, &c2.assignments);
        let clustered: usize =
            (0..c1.num_clusters).map(|k| c1.members(k).len()).sum();
        prop_assert_eq!(clustered + c1.outliers().len(), traces.len());
        for a in &c1.assignments {
            if let Some(k) = a {
                prop_assert!(*k < c1.num_clusters);
            }
        }
    }

    /// The time-sensitive combiner is causal: changing future targets
    /// never changes earlier combined predictions.
    #[test]
    fn ensemble_combination_is_causal(
        targets in prop::collection::vec(-10.0f64..10.0, 4..20),
        tail in -10.0f64..10.0,
    ) {
        let n = targets.len();
        let preds = vec![
            targets.iter().map(|t| t + 1.0).collect::<Vec<_>>(),
            targets.iter().map(|t| t - 2.0).collect::<Vec<_>>(),
        ];
        let out1 = combine_time_sensitive(&preds, &targets, 0.9);
        let mut mutated = targets.clone();
        mutated[n - 1] = tail;
        // Member predictions must stay fixed for a pure causality probe.
        let out2 = combine_time_sensitive(&preds, &mutated, 0.9);
        for t in 0..n - 1 {
            prop_assert!((out1[t] - out2[t]).abs() < 1e-12, "step {t} changed");
        }
    }

    /// Window datasets tile the series: reconstructing targets from
    /// window starts matches the raw series.
    #[test]
    fn window_dataset_targets_are_series_values(
        values in prop::collection::vec(-100.0f64..100.0, 6..40),
        history in 1usize..5,
        horizon in 1usize..4,
    ) {
        let spec = WindowSpec::new(history, horizon);
        let ds = WindowDataset::from_values(&values, spec);
        for i in 0..ds.len() {
            prop_assert_eq!(ds.target(i), values[i + history + horizon - 1]);
            prop_assert_eq!(ds.window(i), &values[i..i + history]);
        }
    }

    /// Weights from the combiner always form a convex combination.
    #[test]
    fn combiner_output_is_within_member_hull(
        targets in prop::collection::vec(0.0f64..10.0, 3..15),
    ) {
        let lo: Vec<f64> = targets.iter().map(|_| -1.0).collect();
        let hi: Vec<f64> = targets.iter().map(|_| 11.0).collect();
        let out = combine_time_sensitive(&[lo, hi], &targets, 0.9);
        for v in out {
            prop_assert!((-1.0 - 1e-9..=11.0 + 1e-9).contains(&v));
        }
    }
}
