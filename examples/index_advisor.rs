//! Forecast-driven index selection (a compact version of the paper's
//! Fig. 8 case study).
//!
//! ```text
//! cargo run --release --example index_advisor
//! ```
//!
//! A workload's template mix shifts mid-day. A static AutoAdmin
//! recommendation from historical frequencies serves the old mix well
//! but degrades after the shift; re-advising from forecasted arrival
//! rates keeps latency low.

use dbaugur_dbsim::index::{Predicate, QueryTemplate};
use dbaugur_dbsim::{AutoAdmin, Catalog, CostModel, Workload};
use dbaugur_models::{Forecaster, LinearRegression, MlpForecaster, TimeSensitiveEnsemble};
use dbaugur_trace::WindowSpec;

fn main() {
    // Schema: orders(1M rows) and users(100k rows).
    let mut catalog = Catalog::new();
    let orders = catalog.add_table(1_000_000, vec![1_000_000, 2_000, 500]);
    let users = catalog.add_table(100_000, vec![100_000, 50]);
    let templates = vec![
        QueryTemplate { table: orders, predicates: vec![Predicate::Eq((orders, 0))] }, // by id
        QueryTemplate { table: orders, predicates: vec![Predicate::Eq((orders, 1))] }, // by product
        QueryTemplate { table: users, predicates: vec![Predicate::Eq((users, 0))] },   // by user id
    ];
    let cost = CostModel::default();
    let advisor = AutoAdmin::new(1); // tight budget: the shift must change the pick

    // Per-template arrival traces: 200 periods, mix flips at period 120.
    let n = 200;
    let shift = 120;
    let rate = |t: usize, a: f64, b: f64| if t < shift { a } else { b };
    let traces: Vec<Vec<f64>> = vec![
        (0..n).map(|t| rate(t, 900.0, 80.0) * (1.0 + 0.1 * (t as f64 * 0.3).sin())).collect(),
        (0..n).map(|t| rate(t, 60.0, 1100.0) * (1.0 + 0.1 * (t as f64 * 0.2).cos())).collect(),
        (0..n).map(|_| 300.0).collect(),
    ];

    // Static recommendation from the pre-shift history.
    let hist = Workload::new(
        traces.iter().map(|tr| tr[..shift].iter().sum::<f64>() / shift as f64).collect(),
    );
    let static_idx = advisor.recommend(&catalog, &templates, &hist);
    println!("static indexes (from history): {:?}", static_idx.iter().collect::<Vec<_>>());

    // A small DBAugur-style ensemble forecasts each template 5 periods
    // ahead; the advisor re-runs on the forecasted mix.
    let spec = WindowSpec::new(20, 5);
    let horizon_probe = 150; // a post-shift period
    let mut forecasted_rates = Vec::new();
    for tr in &traces {
        let mut model = TimeSensitiveEnsemble::new(
            "mini",
            vec![
                Box::new(LinearRegression::default()),
                Box::new(MlpForecaster::new(3).with_epochs(20)),
            ],
            0.9,
        );
        model.fit(&tr[..horizon_probe - 5], spec);
        let window = &tr[horizon_probe - 25..horizon_probe - 5];
        forecasted_rates.push(model.predict(window).max(0.0));
    }
    let forecast_wl = Workload::new(forecasted_rates.clone());
    let auto_idx = advisor.recommend(&catalog, &templates, &forecast_wl);
    println!(
        "forecasted rates at t={horizon_probe}: {:?}",
        forecasted_rates.iter().map(|r| r.round()).collect::<Vec<_>>()
    );
    println!("auto indexes (from forecast):  {:?}", auto_idx.iter().collect::<Vec<_>>());

    // Compare expected per-query latency on the actual post-shift mix.
    let actual = Workload::new(traces.iter().map(|tr| tr[horizon_probe]).collect());
    let lat = |idx| cost.workload_cost(&catalog, &templates, &actual, idx) / actual.total();
    let static_lat = lat(&static_idx);
    let auto_lat = lat(&auto_idx);
    println!("\npost-shift mean query cost: static {static_lat:.0} vs auto {auto_lat:.0} work units");
    assert!(
        auto_lat < static_lat,
        "forecast-driven advice should win after the workload shift"
    );
    println!("forecast-driven indexing wins by {:.1}x", static_lat / auto_lat);
}
