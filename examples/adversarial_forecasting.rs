//! WFGAN in isolation: adversarial training on a bursty workload.
//!
//! ```text
//! cargo run --release --example adversarial_forecasting
//! ```
//!
//! Trains the conditional GAN of Sec. V on an Alibaba-like
//! disk-utilization trace, prints the adversarial loss trajectory (the
//! discriminator loss should hover near the 2·ln 2 equilibrium once the
//! generator becomes competitive) and compares test MSE against the LSTM
//! baseline — the setting where the paper reports WFGAN's edge.

use dbaugur_models::eval::rolling_forecast;
use dbaugur_models::{LstmForecaster, Wfgan, WfganConfig};
use dbaugur_trace::{synth, WindowSpec};

fn main() {
    let trace = synth::alibaba_disk(21, 6);
    let split = trace.len() * 7 / 10;
    let spec = WindowSpec::new(30, 6); // one hour ahead

    let mut gan = Wfgan::with_config(WfganConfig {
        epochs: 15,
        max_examples: 600,
        seed: 3,
        ..WfganConfig::default()
    });
    let gan_report =
        rolling_forecast(&mut gan, trace.values(), split, spec).expect("test region");

    println!("adversarial training trajectory (per epoch):");
    println!("epoch   D loss   G adv loss");
    for (e, (d, g)) in gan.loss_history.iter().enumerate() {
        println!("{e:>5}   {d:>6.3}   {g:>10.3}");
    }
    let (final_d, _) = gan.loss_history.last().expect("trained");
    println!("\nequilibrium D loss is 2·ln2 ≈ 1.386; final D loss: {final_d:.3}");

    let mut lstm = LstmForecaster::new(3).with_epochs(15);
    lstm.max_examples = 600;
    let lstm_report =
        rolling_forecast(&mut lstm, trace.values(), split, spec).expect("test region");

    println!("\ntest MSE at 1-hour horizon on the bursty disk trace:");
    println!("  WFGAN: {:.6}", gan_report.mse);
    println!("  LSTM:  {:.6}", lstm_report.mse);

    // Inspect a burst: where the truth jumps the most, print both
    // models' reactions.
    let jumps: Vec<usize> = {
        let t = &gan_report.targets;
        let mut idx: Vec<usize> = (1..t.len()).collect();
        idx.sort_by(|&a, &b| {
            (t[b] - t[b - 1]).abs().total_cmp(&(t[a] - t[a - 1]).abs())
        });
        idx.into_iter().take(3).collect()
    };
    println!("\nlargest bursts in the test region:");
    for j in jumps {
        println!(
            "  t={:>4}: truth {:.3}  wfgan {:.3}  lstm {:.3}",
            gan_report.indices[j],
            gan_report.targets[j],
            gan_report.predictions[j],
            lstm_report.predictions[j]
        );
    }
}
