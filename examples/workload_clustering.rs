//! DTW workload clustering (the paper's Sec. IV machinery in isolation).
//!
//! ```text
//! cargo run --release --example workload_clustering
//! ```
//!
//! Builds the planetarium scenario from the paper's introduction — query
//! traces that are near-identical but shifted by a few minutes — and
//! shows that Descender with DTW groups them while the same clustering
//! with Euclidean distance does not. Then demonstrates online insertion
//! and top-K representative selection.

use dbaugur_cluster::{select_top_k, Descender, DescenderParams, OnlineDescender};
use dbaugur_dtw::{DtwDistance, EuclideanDistance};
use dbaugur_trace::{synth, Trace};

fn main() {
    // "users always look up the number of left tickets and the ticket
    // prices together … even if they have slight time difference".
    let ticket_count = synth::bustracker(5, 2);
    let ticket_price = synth::add_noise(&synth::time_shift(&ticket_count, 2), 6.0, 9);
    let seat_map = synth::add_noise(&synth::time_shift(&ticket_count, -3), 6.0, 10);
    // An unrelated batch job.
    let nightly_etl = synth::alibaba_disk(3, 2);
    let another_etl = synth::add_noise(&nightly_etl, 0.01, 11);

    let traces: Vec<Trace> = vec![
        Trace::query("ticket_count", ticket_count.values().to_vec()),
        Trace::query("ticket_price", ticket_price.values().to_vec()),
        Trace::query("seat_map", seat_map.values().to_vec()),
        Trace::query("nightly_etl", nightly_etl.values().to_vec()),
        Trace::query("another_etl", another_etl.values().to_vec()),
    ];

    let params = DescenderParams { rho: 5.0, min_size: 2, normalize: true };
    let dtw = Descender::new(params, DtwDistance::new(10)).cluster(&traces);
    let euc = Descender::new(params, EuclideanDistance).cluster(&traces);

    println!("trace            DTW cluster   Euclidean cluster");
    for (i, t) in traces.iter().enumerate() {
        println!(
            "{:<16} {:<13} {:?}",
            t.name,
            format!("{:?}", dtw.assignments[i]),
            euc.assignments[i]
        );
    }
    assert_eq!(
        dtw.assignments[0], dtw.assignments[1],
        "DTW must merge the shifted ticket queries"
    );
    assert_eq!(dtw.assignments[0], dtw.assignments[2]);

    // Top-K representative clusters with proportions.
    let top = select_top_k(&traces, &dtw, 2);
    println!("\ntop-{} clusters by volume:", top.len());
    for s in &top {
        let names: Vec<&str> = s.members.iter().map(|&m| traces[m].name.as_str()).collect();
        println!(
            "  cluster {} volume {:.0}: members {:?}, proportions {:?}",
            s.cluster_id,
            s.volume,
            names,
            s.proportions.iter().map(|p| (p * 100.0).round() / 100.0).collect::<Vec<_>>()
        );
    }

    // Online insertion: a new shifted twin joins the ticket cluster.
    let mut online = OnlineDescender::new(params, DtwDistance::new(10));
    for t in &traces {
        online.insert(t);
    }
    let newcomer = Trace::query(
        "refund_lookup",
        synth::add_noise(&synth::time_shift(&traces[0], 4), 6.0, 12).values().to_vec(),
    );
    online.insert(&newcomer);
    let clusters = online.clusters();
    println!("\nafter online insertion: {} clusters", clusters.len());
    let ticket_cluster = clusters
        .iter()
        .find(|c| c.contains(&0))
        .expect("ticket cluster exists");
    assert!(
        ticket_cluster.contains(&5),
        "the online path should route the newcomer into the ticket cluster"
    );
    println!("newcomer joined the ticket cluster: {ticket_cluster:?}");
}
