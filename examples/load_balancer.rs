//! Forecast-guided data-region migration (a compact version of the
//! paper's Fig. 9 case study).
//!
//! ```text
//! cargo run --release --example load_balancer
//! ```
//!
//! Eight regions with rotating hot spots live on four servers. A static
//! assignment balanced on historical averages drifts out of balance as
//! the hot set moves; re-planning hourly from forecasted loads keeps the
//! cluster balanced.

use dbaugur_dbsim::{balance_metric, Cluster, MigrationPlanner};
use dbaugur_models::{Forecaster, LinearRegression};
use dbaugur_trace::{synth, WindowSpec};

const SERVERS: usize = 4;
const REGIONS: usize = 8;
const HISTORY: usize = 24;
const HORIZON: usize = 6;

fn main() {
    // Region loads: staggered daily cycles with uneven amplitudes.
    let days = 4;
    let traces: Vec<Vec<f64>> = (0..REGIONS)
        .map(|r| {
            let t = synth::periodic_workload(r as u64, days, 250.0, 120.0 + 30.0 * r as f64);
            synth::time_shift(&t, (r * 41 % synth::SAMPLES_PER_DAY) as i64)
                .values()
                .to_vec()
        })
        .collect();
    let split = traces[0].len() * 3 / 4;

    // One cheap forecaster per region (LR is enough for this demo; swap
    // in `TimeSensitiveEnsemble::dbaugur` for the full system).
    let spec = WindowSpec::new(HISTORY, HORIZON);
    let models: Vec<LinearRegression> = traces
        .iter()
        .map(|t| {
            let mut m = LinearRegression::default();
            m.fit(&t[..split], spec);
            m
        })
        .collect();

    // Static: one plan from historical averages, then frozen.
    let hist: Vec<f64> =
        traces.iter().map(|t| t[..split].iter().sum::<f64>() / split as f64).collect();
    let planner = MigrationPlanner::new(REGIONS / 2);
    let mut static_cluster = Cluster::new(SERVERS, REGIONS);
    for _ in 0..4 {
        planner.rebalance(&mut static_cluster, &hist);
    }
    let mut auto_cluster = Cluster::new(SERVERS, REGIONS);

    let mut static_metrics = Vec::new();
    let mut auto_metrics = Vec::new();
    let mut t = split;
    while t + HORIZON < traces[0].len() {
        // Auto: plan on the forecast for t+HORIZON.
        let predicted: Vec<f64> = (0..REGIONS)
            .map(|r| models[r].predict(&traces[r][t - HISTORY..t]).max(0.0))
            .collect();
        planner.rebalance(&mut auto_cluster, &predicted);

        let actual: Vec<f64> = (0..REGIONS).map(|r| traces[r][t + HORIZON]).collect();
        static_metrics.push(balance_metric(&static_cluster.server_loads(&actual)));
        auto_metrics.push(balance_metric(&auto_cluster.server_loads(&actual)));
        t += HORIZON;
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let s = mean(&static_metrics);
    let a = mean(&auto_metrics);
    println!("mean load-balance difference over {} rounds:", static_metrics.len());
    println!("  static (historical plan): {s:.4}");
    println!("  auto (forecast-guided):   {a:.4}");
    assert!(a < s, "forecast-guided migration should be better balanced");
    println!("forecast-guided balancing is {:.1}x tighter", s / a);
}
