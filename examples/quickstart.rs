//! Quickstart: the full DBAugur pipeline on a synthetic query log.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a day of timestamped SQL, feeds it through SQL2Template →
//! Descender clustering → the time-sensitive ensemble, and prints
//! next-interval forecasts for the hot templates.

use dbaugur::{DbAugur, DbAugurConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A 2-day log at minute granularity with three application query
    // shapes whose rates follow different daily patterns.
    let mut rng = StdRng::seed_from_u64(1);
    let minutes = 2 * 24 * 60;
    let mut log = String::new();
    for minute in 0..minutes as u64 {
        let tod = (minute % 1440) as f64 / 1440.0;
        let day_peak = (std::f64::consts::TAU * (tod - 0.3)).sin().max(0.0);
        // Bus position lookups: heavy at rush hours.
        let n1 = (2.0 + 20.0 * day_peak + rng.gen_range(0.0..2.0)) as u64;
        for k in 0..n1 {
            log.push_str(&format!(
                "{}\tSELECT lat, lon FROM bus WHERE route = {}\n",
                minute * 60 + k,
                rng.gen_range(1..50)
            ));
        }
        // Ticket queries: the planetarium pattern — two statements that
        // always arrive together (note the swapped SELECT lists: the
        // canonicalizer merges them into one template).
        let n2 = (1.0 + 8.0 * day_peak) as u64;
        for k in 0..n2 {
            log.push_str(&format!(
                "{}\tSELECT price, count FROM tickets WHERE show = {}\n",
                minute * 60 + 10 + k,
                rng.gen_range(1..10)
            ));
            log.push_str(&format!(
                "{}\tSELECT count, price FROM tickets WHERE show = {}\n",
                minute * 60 + 11 + k,
                rng.gen_range(1..10)
            ));
        }
        // Rare admin scan.
        if minute % 360 == 0 {
            log.push_str(&format!("{}\tSELECT * FROM audit_log\n", minute * 60));
        }
    }

    let mut cfg = DbAugurConfig {
        interval_secs: 600, // the paper's 10-minute interval
        history: 24,
        horizon: 1,
        top_k: 3,
        epochs: 8,
        max_examples: 400,
        ..DbAugurConfig::default()
    };
    cfg.clustering.min_size = 1;
    let mut system = DbAugur::new(cfg);

    let ingested = system.ingest_log(&log);
    println!("ingested {ingested} statements → {} templates", system.num_templates());

    let report = system.train(0, minutes as u64 * 60).expect("training succeeds");
    println!(
        "trained {} representative clusters ({} healthy, {} degraded, {} failed)\n",
        system.clusters().len(),
        report.healthy_count(),
        report.degraded_count(),
        report.failed_count()
    );

    for (i, cluster) in system.clusters().iter().enumerate() {
        let forecast = system.forecast_cluster(i).expect("trained cluster");
        println!(
            "cluster {i}: {} member trace(s), volume {:.0}, next-interval forecast {:.1} \
             (ensemble weights {:?})",
            cluster.summary.members.len(),
            cluster.summary.volume,
            forecast,
            cluster
                .weights()
                .iter()
                .map(|w| (w * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }

    let bus = system
        .forecast_template("SELECT lat, lon FROM bus WHERE route = 7")
        .expect("hot template is in a top-K cluster");
    println!("\nforecast, bus-position template: {bus:.1} queries / 10 min");

    let a = system.forecast_template("SELECT price, count FROM tickets WHERE show = 3");
    let b = system.forecast_template("SELECT count, price FROM tickets WHERE show = 8");
    println!("forecast, ticket templates (canonicalized to one): {a:?} == {b:?}");
    assert_eq!(a, b, "semantic equivalence merged the swapped SELECT lists");
}
