//! Re-export shim so workspace-level tests and examples have a lib target.
pub use dbaugur as core_api;
