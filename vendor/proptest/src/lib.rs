//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so the workspace patches
//! `proptest` to this implementation of the subset it uses: the
//! `proptest!` macro, `prop_assert*`/`prop_assume`, range/tuple/vec/
//! select/map strategies, and `ProptestConfig::with_cases`.
//!
//! Instead of shrinking counterexamples, failures report the exact case
//! number and seed; runs are fully deterministic (seed derived from the
//! test name), so a failure reproduces by re-running the test.

/// Strategy: something that can generate values from a seeded RNG.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
    {
        strategy::Map { inner: self, f }
    }

    /// Filter generated values (regenerates until `f` passes, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> strategy::Filter<Self, F>
    where
        Self: Sized,
    {
        strategy::Filter { inner: self, f, whence }
    }
}

/// Test-runner machinery: config and RNG.
pub mod test_runner {
    /// How many cases a `proptest!` test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Maximum rejected (`prop_assume`) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Default::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_global_rejects: 4096 }
        }
    }

    /// Deterministic splitmix64 RNG used for all generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded construction.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Seed derived from a test's name, so every test draws a
        /// distinct but reproducible stream.
        pub fn for_test(name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::new(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift: fine for test-case generation.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Strategy adaptors.
pub mod strategy {
    use super::test_runner::TestRng;
    use super::Strategy;

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 straight cases: {}", self.whence);
        }
    }

    /// Strategy yielding one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub use strategy::Just;

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let (s, e) = (*self.start() as i128, *self.end() as i128);
                assert!(s <= e, "empty range strategy");
                (s + rng.below((e - s + 1) as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                s + (rng.unit_f64() as $t) * (e - s)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Collection strategies.
pub mod collection {
    use super::test_runner::TestRng;
    use super::Strategy;

    /// Length bounds accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi_exclusive, "empty size range");
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::test_runner::TestRng;
    use super::Strategy;

    /// Strategy picking uniformly from a fixed set of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty options");
        Select { options }
    }

    /// Output of [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Primitive `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> f64 {
        // Finite, broad but tame: proptest's default f64 includes
        // specials; tests here only need varied finite values.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> f32 {
        ((rng.unit_f64() - 0.5) * 2e6) as f32
    }
}

/// Strategy for any value of an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Output of [`any`].
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The usual wildcard import surface.
pub mod prelude {
    pub use super::test_runner::ProptestConfig;
    pub use super::{any, Arbitrary, Just, Strategy};
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

// `prop::collection`, `prop::sample` resolve through the crate re-export
// in the prelude (`pub use crate as prop`).

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip a generated case that does not meet a precondition.
///
/// Expands to an early `Err` return from the per-case closure the
/// `proptest!` macro generates, so it must only be used inside
/// `proptest!` bodies.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(());
        }
    };
}

/// Property-test entry macro: runs each body over `cases` generated
/// inputs with a deterministic per-test seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr);
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                #[allow(unused_variables)]
                let strategies = ( $( $strat, )* );
                let mut rejected: u32 = 0;
                for case in 0..config.cases as u64 {
                    #[allow(unused_mut, unused_variables)]
                    let mut rng = $crate::test_runner::TestRng::for_test(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ( $( $pat, )* ) = $crate::__generate_tuple!(strategies, rng, $($pat),*);
                    let outcome = (move || -> ::core::result::Result<(), ()> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if outcome.is_err() {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "too many prop_assume rejections"
                        );
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __generate_tuple {
    ($strategies:ident, $rng:ident, ) => { () };
    ($strategies:ident, $rng:ident, $p0:pat_param) => {
        ( $crate::Strategy::generate(&$strategies.0, &mut $rng), )
    };
    ($strategies:ident, $rng:ident, $p0:pat_param, $p1:pat_param) => {
        (
            $crate::Strategy::generate(&$strategies.0, &mut $rng),
            $crate::Strategy::generate(&$strategies.1, &mut $rng),
        )
    };
    ($strategies:ident, $rng:ident, $p0:pat_param, $p1:pat_param, $p2:pat_param) => {
        (
            $crate::Strategy::generate(&$strategies.0, &mut $rng),
            $crate::Strategy::generate(&$strategies.1, &mut $rng),
            $crate::Strategy::generate(&$strategies.2, &mut $rng),
        )
    };
    ($strategies:ident, $rng:ident, $p0:pat_param, $p1:pat_param, $p2:pat_param, $p3:pat_param) => {
        (
            $crate::Strategy::generate(&$strategies.0, &mut $rng),
            $crate::Strategy::generate(&$strategies.1, &mut $rng),
            $crate::Strategy::generate(&$strategies.2, &mut $rng),
            $crate::Strategy::generate(&$strategies.3, &mut $rng),
        )
    };
    ($strategies:ident, $rng:ident, $p0:pat_param, $p1:pat_param, $p2:pat_param, $p3:pat_param, $p4:pat_param) => {
        (
            $crate::Strategy::generate(&$strategies.0, &mut $rng),
            $crate::Strategy::generate(&$strategies.1, &mut $rng),
            $crate::Strategy::generate(&$strategies.2, &mut $rng),
            $crate::Strategy::generate(&$strategies.3, &mut $rng),
            $crate::Strategy::generate(&$strategies.4, &mut $rng),
        )
    };
    ($strategies:ident, $rng:ident, $p0:pat_param, $p1:pat_param, $p2:pat_param, $p3:pat_param, $p4:pat_param, $p5:pat_param) => {
        (
            $crate::Strategy::generate(&$strategies.0, &mut $rng),
            $crate::Strategy::generate(&$strategies.1, &mut $rng),
            $crate::Strategy::generate(&$strategies.2, &mut $rng),
            $crate::Strategy::generate(&$strategies.3, &mut $rng),
            $crate::Strategy::generate(&$strategies.4, &mut $rng),
            $crate::Strategy::generate(&$strategies.5, &mut $rng),
        )
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            v in prop::collection::vec((0i64..10, -1.0f64..1.0), 2..6),
            s in prop::sample::select(vec!["a", "b"]),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(s == "a" || s == "b");
            for (i, f) in v {
                prop_assert!((0..10).contains(&i));
                prop_assert!((-1.0..1.0).contains(&f));
            }
        }

        #[test]
        fn assume_skips_cases(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn map_transforms(s in (1usize..4).prop_map(|n| "x".repeat(n))) {
            prop_assert!(!s.is_empty() && s.len() < 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t", 1);
        let mut b = crate::test_runner::TestRng::for_test("t", 1);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
