//! Offline stand-in for `criterion`.
//!
//! The build container has no crates.io access, so the workspace patches
//! `criterion` to this minimal harness: the same macro/builder surface
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`), backed by a
//! few timed iterations per benchmark and a one-line mean-time report.
//! There is no statistical analysis; `--test`-style smoke runs and the
//! BENCH_*.json binaries carry the real measurement duties.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>` naming.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{function}/{parameter}") }
    }

    /// Parameter-only naming.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Runs one benchmark body.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Time `f` over a few iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup, then timed iterations.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total = start.elapsed();
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters, total: Duration::ZERO };
    f(&mut b);
    let mean = if iters > 0 { b.total / iters as u32 } else { Duration::ZERO };
    println!("bench {label:<48} {mean:>12.2?}/iter ({iters} iters)");
}

/// Group of related benchmarks (configuration is accepted and ignored
/// where it has no meaning in the stand-in).
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stand-in always runs a fixed small
    /// iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API parity.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API parity.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one named benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.iters, &mut f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.name);
        let mut body = |b: &mut Bencher| f(b, input);
        run_one(&label, self.iters, &mut body);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Throughput annotation (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--test` smoke mode and plain runs behave the same here: a
        // handful of iterations, enough to catch panics and gross
        // regressions without criterion's statistics.
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Accepted for API parity.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for API parity.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API parity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), iters: self.iters, _criterion: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.name, self.iters, &mut f);
        self
    }

    /// Run all registered groups (invoked by `criterion_main!`).
    pub fn final_summary(&mut self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // CLI flags (e.g. `--test`, `--bench`) are accepted and
            // ignored: every mode runs the same smoke pass.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        g.finish();
        c.bench_function("top", |b| b.iter(|| black_box(1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }
}
