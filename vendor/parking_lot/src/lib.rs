//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (locks recover the inner value instead of returning `Err` after a
//! panic). Built because the container has no crates.io access; the
//! semantics the workspace relies on — `read()`/`write()`/`lock()`
//! without `Result`, `get_mut`, `into_inner` — are preserved.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Unwrap the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared lock; never errors.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Exclusive lock; never errors.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Shared lock if immediately available.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive lock if immediately available.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Direct access through an exclusive reference (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Unwrap the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire; never errors.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire if immediately available.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Direct access through an exclusive reference (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let lock = RwLock::new(5u32);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        let mut lock = lock;
        *lock.get_mut() += 1;
        assert_eq!(lock.into_inner(), 7);
    }

    #[test]
    fn locks_survive_a_panicked_holder() {
        let lock = std::sync::Arc::new(Mutex::new(1u32));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.lock(), 1, "non-poisoning: lock still usable");
    }
}
