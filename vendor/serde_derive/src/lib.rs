//! Offline stand-in for `serde_derive`.
//!
//! Emits marker-trait impls for the stub `serde` crate (which has
//! data-model-free `Serialize`/`Deserialize` traits). Generic types get
//! no impl — nothing in this workspace needs one.

use proc_macro::{TokenStream, TokenTree};

/// Find the type name following `struct`/`enum`/`union`, and whether a
/// generic parameter list follows it.
fn type_name(input: &TokenStream) -> Option<(String, bool)> {
    let mut iter = input.clone().into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    let generic = matches!(
                        iter.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return Some((name.to_string(), generic));
                }
                return None;
            }
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_path: &str, lifetimes: &str) -> TokenStream {
    match type_name(&input) {
        Some((name, false)) => format!("impl{lifetimes} {trait_path} for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        _ => TokenStream::new(),
    }
}

/// Stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize", "")
}

/// Stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize<'de>", "<'de>")
}
