//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few trace types
//! but never serializes through serde (all persistence goes through the
//! hand-rolled `dbaugur_trace::wire` codec), so marker traits are all
//! that is needed for the build container, which has no crates.io
//! access.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// `serde::de` namespace parity.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// `serde::ser` namespace parity.
pub mod ser {
    pub use super::Serialize;
}
