//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace patches `rand` to this local implementation of exactly the
//! API subset the codebase uses: `Rng::{gen, gen_range, gen_bool, fill}`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! `StdRng` is xoshiro256++ seeded through splitmix64 — statistically
//! strong and fast, though its output stream differs from upstream
//! `rand`'s ChaCha12-based `StdRng`. Nothing in this workspace pins
//! golden values to the upstream stream; determinism within a build is
//! what matters, and that holds: the same seed always yields the same
//! sequence.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values producible uniformly "at random" without extra parameters —
/// the stand-in for upstream's `Standard` distribution.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges a [`Rng::gen_range`] call can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, n)` without modulo bias (rejection on the top
/// partial stripe).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                let off = uniform_u64_below(rng, span as u64);
                ((start as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                start + u * (end - start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of an inferable type (`rng.gen::<f64>()`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::draw(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Build from a single `u64` seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;

    /// Build from OS entropy — here: from a fixed seed, to keep the
    /// offline stand-in fully deterministic.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce four zero words, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API parity.
    pub type SmallRng = StdRng;
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random order / random pick over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// A deterministic "thread rng" (fixed seed): present for API parity.
pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::seed_from_u64(0x5EED_5EED_5EED_5EED)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = rng.gen_range(0usize..=9);
            assert!(u <= 9);
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
